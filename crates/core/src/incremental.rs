//! The incremental checker — the paper's contribution.
//!
//! Holds only the current database state plus the bounded auxiliary state
//! of [`crate::encode`]. Each [`IncrementalChecker::step`]:
//!
//! 1. applies the update to the current state;
//! 2. advances every temporal node **children-first**: the node's operand
//!    extensions at the *new* state are computed by the shared evaluator
//!    (inner temporal nodes answer from their already-advanced state), then
//!    the node's auxiliary state absorbs them;
//! 3. evaluates the denial body over the new state, answering temporal
//!    subformulas from the auxiliary state (by O(1) membership probes when
//!    the variables are already bound — see [`crate::eval::Oracle`]); any
//!    satisfying assignment is a violation witness.
//!
//! No past state is read at any point — the update is a function of the
//! previous auxiliary state and the new database state only, which is what
//! makes the space bound (experiment T1) and the history-independent step
//! time (experiment F1) hold.
//!
//! The aux machinery lives in [`NodeEngine`] so that a [`crate::ConstraintSet`]
//! can advance several constraints' engines over one shared database.

use std::collections::HashMap;
use std::sync::Arc;

use rtic_history::HistoryError;
use rtic_relation::{Catalog, Database, Tuple, Update};
use rtic_temporal::ast::{Formula, Var};
use rtic_temporal::{Constraint, TimePoint};

use crate::binding::{Bindings, Scratch};
use crate::checker::Checker;
use crate::compile::CompiledConstraint;
use crate::encode::{HistFiniteState, HistInfState, PrevState, StampPolicy, WindowState};
use crate::error::CompileError;
use crate::eval::{eval, Oracle};
use crate::plan::NodePlans;
use crate::report::{SpaceStats, StepReport};

/// Auxiliary state of one temporal node.
#[derive(Clone, Debug)]
pub(crate) enum NodeState {
    Prev(PrevState),
    Once(WindowState),
    Since(WindowState),
    HistFinite(HistFiniteState),
    HistInf(HistInfState),
}

/// A snapshot of one temporal node's auxiliary footprint
/// (see [`IncrementalChecker::node_stats`]).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NodeStat {
    /// The subformula, pretty-printed.
    pub formula: String,
    /// Live keys in the node's auxiliary structure.
    pub keys: usize,
    /// Timestamps/endpoints currently stored.
    pub timestamps: usize,
}

/// Options tuning the encoding (used by the T6 ablation).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EncodingOptions {
    /// Disable the one-timestamp specialisations: every `once`/`since`
    /// node keeps the general pruned deque. Semantics are unchanged; only
    /// space/time differ.
    pub disable_stamp_specialization: bool,
    /// Evaluate through the interpreting [`eval`] instead of the compiled
    /// plans — the reference mode for the differential oracle and for the
    /// plan-vs-interpret benchmarks. Reports are byte-identical either way.
    pub interpret_eval: bool,
    /// Collect per-plan-node profiler counters (wall time, cardinalities,
    /// memo-cache hits) during planned execution. Reports stay
    /// byte-identical; only [`crate::Checker::plan_profile`] gains data.
    /// Ignored under `interpret_eval` (there are no plan nodes to profile).
    pub profile_plans: bool,
    /// Execute through the vectorized (columnar) kernels: single-key
    /// hash joins build over flat column slices, `exists` projections
    /// become column drops on tuple blocks, and database-pure memo
    /// entries are keyed by per-relation generations (with O(|delta|)
    /// refresh of single-atom scans) instead of the global cache stamp.
    /// Reports are byte-identical to scalar execution; the differential
    /// oracle's `*-vec` backends pin it. Ignored under `interpret_eval`.
    pub vectorize: bool,
}

fn sorted_free_vars(f: &Formula) -> Vec<Var> {
    f.free_vars().into_iter().collect()
}

/// One compiled constraint's bounded auxiliary state, advanced against an
/// externally-owned database. [`IncrementalChecker`] pairs an engine with
/// its own database; [`crate::ConstraintSet`] shares one database across
/// many engines.
#[derive(Clone, Debug)]
pub(crate) struct NodeEngine {
    pub(crate) compiled: CompiledConstraint,
    pub(crate) states: Vec<NodeState>,
    /// Cached pre-update extensions for `prev` nodes (`None` for node
    /// kinds whose extension is answered lazily from their state).
    extensions: Vec<Option<Bindings>>,
    pub(crate) last_time: Option<TimePoint>,
    /// Each node's operand extension (`sat_now`) from the last full
    /// [`NodeEngine::advance`] — replayed by [`NodeEngine::advance_time`]
    /// on quiescent steps. Populated only when `fast_eligible`.
    sat_cache: Vec<Option<Bindings>>,
    /// Whether the constraint's *shape* admits the quiescent fast path:
    /// the body is tick-gain-free and every temporal node is a `once` or
    /// `hist` over a non-temporal operand (so the cached operand
    /// extensions stay valid while the constraint's relations are
    /// untouched). Computed once at construction.
    fast_eligible: bool,
    /// The previous step's violations (`None` until a step records them);
    /// the fast path requires them to be empty and returns a clone.
    last_violations: Option<Bindings>,
    /// Evaluate through the interpreter instead of the compiled plans.
    interpret: bool,
    /// Reusable probe-key buffers for the planned join kernels.
    scratch: Scratch,
    /// Each `once` node's operand extension from the previous step. When
    /// the memoized planner hands back the *same* row storage (pointer
    /// equality) and the node's window absorbs idempotently, maintenance
    /// skips the per-key re-recording entirely.
    last_sat: Vec<Option<Bindings>>,
}

impl NodeEngine {
    pub(crate) fn new(compiled: CompiledConstraint, options: EncodingOptions) -> NodeEngine {
        let states: Vec<NodeState> = compiled
            .nodes
            .iter()
            .map(|node| {
                let vars = sorted_free_vars(node);
                match node {
                    Formula::Prev(i, _) => NodeState::Prev(PrevState::new(*i, vars)),
                    Formula::Once(i, _) | Formula::Since(i, _, _) => {
                        // The general deque cannot prune with b = ∞, so the
                        // one-timestamp specialisations are mandatory there
                        // (and exact); the ablation only affects finite b.
                        let policy = if options.disable_stamp_specialization && i.is_bounded() {
                            StampPolicy::Many
                        } else {
                            StampPolicy::for_interval(i)
                        };
                        let w = WindowState::new(*i, vars, policy);
                        if matches!(node, Formula::Once(..)) {
                            NodeState::Once(w)
                        } else {
                            NodeState::Since(w)
                        }
                    }
                    Formula::Hist(i, _) => {
                        if i.is_bounded() {
                            NodeState::HistFinite(HistFiniteState::new(*i, vars))
                        } else {
                            NodeState::HistInf(HistInfState::new(*i, vars))
                        }
                    }
                    other => unreachable!("non-temporal node collected: {other}"),
                }
            })
            .collect();
        let extensions = vec![None; compiled.nodes.len()];
        let sat_cache = vec![None; compiled.nodes.len()];
        let last_sat = vec![None; compiled.nodes.len()];
        let fast_eligible = compiled.tick_gain_free
            && compiled.nodes.iter().all(|n| match n {
                Formula::Once(_, g) | Formula::Hist(_, g) => !g.is_temporal(),
                _ => false,
            });
        NodeEngine {
            compiled,
            states,
            extensions,
            last_time: None,
            sat_cache,
            fast_eligible,
            last_violations: None,
            interpret: options.interpret_eval,
            scratch: {
                let mut s = Scratch::new();
                if options.profile_plans && !options.interpret_eval {
                    s.enable_profiling();
                }
                s.set_vectorize(options.vectorize && !options.interpret_eval);
                s
            },
            last_sat,
        }
    }

    /// The accumulated per-node execution profile, when profiling was
    /// enabled at construction and plans (not the interpreter) execute.
    pub(crate) fn plan_profile(&self) -> Option<crate::plan::PlanProfile> {
        if self.interpret {
            return None;
        }
        let counters = self.scratch.profile_counters()?;
        Some(self.compiled.plans.profile(counters))
    }

    /// Evaluates a node's unit-input operand plan (or interprets, in
    /// reference mode).
    fn operand_extension<O: Oracle>(
        &self,
        idx: usize,
        g: &Formula,
        db: &Database,
        oracle: &O,
        scratch: &mut Scratch,
    ) -> Bindings {
        if self.interpret {
            return eval(g, db, oracle, &Bindings::unit());
        }
        let plan = match &self.compiled.plans.node_ops[idx] {
            NodePlans::Operand(p) => p,
            NodePlans::Since { g, .. } => g,
        };
        plan.execute(db, oracle, &Bindings::unit(), scratch)
    }

    /// Whether `update` touches none of the constraint's relations — the
    /// *quiescence* condition of relevance dispatch: such an update cannot
    /// change any operand's extension, only the clock moves.
    pub(crate) fn is_quiescent(&self, update: &Update) -> bool {
        update
            .inserts()
            .chain(update.deletes())
            .all(|(rel, tuples)| tuples.is_empty() || !self.compiled.relations.contains(&rel))
    }

    /// Advances every node to the new state `(db, t_now)`, children-first,
    /// then records `t_now`.
    pub(crate) fn advance(&mut self, db: &Database, t_now: TimePoint) {
        let mut scratch = std::mem::take(&mut self.scratch);
        for idx in 0..self.compiled.nodes.len() {
            // Inner nodes (indices < idx) are already advanced; the oracle
            // exposes exactly their new extensions.
            let node = self.compiled.nodes[idx].clone();
            match &node {
                Formula::Prev(_, g) => {
                    let sat_now = {
                        let oracle = self.oracle(t_now);
                        self.operand_extension(idx, g, db, &oracle, &mut scratch)
                    };
                    let NodeState::Prev(p) = &mut self.states[idx] else {
                        unreachable!("node/state kind mismatch")
                    };
                    self.extensions[idx] = Some(p.step(sat_now, t_now));
                }
                Formula::Once(_, g) => {
                    let sat_now = {
                        let oracle = self.oracle(t_now);
                        self.operand_extension(idx, g, db, &oracle, &mut scratch)
                    };
                    // Drain any delta-refresh record the vectorized memo
                    // left for the operand's root cache slot this step.
                    let op_slot = if self.interpret {
                        None
                    } else {
                        match &self.compiled.plans.node_ops[idx] {
                            NodePlans::Operand(p) => p.cache_slot(),
                            NodePlans::Since { .. } => None,
                        }
                    };
                    let refreshed = op_slot.and_then(|slot| scratch.take_refresh(slot));
                    let NodeState::Once(w) = &mut self.states[idx] else {
                        unreachable!("node/state kind mismatch")
                    };
                    let unchanged = self.last_sat[idx]
                        .as_ref()
                        .is_some_and(|prev| prev.same_rows(&sat_now));
                    if !(unchanged && w.absorb_is_noop()) {
                        // Window delta maintenance: when the operand was
                        // delta-refreshed from exactly the extension this
                        // window last absorbed, and re-absorbing stored
                        // keys is a no-op, only the refresh's added rows
                        // need recording — O(|delta|) instead of O(N).
                        // (Removed rows are not re-added by the full path
                        // either; their stamps expire lazily.)
                        let delta = refreshed.filter(|r| {
                            w.absorb_is_noop()
                                && self.last_sat[idx]
                                    .as_ref()
                                    .is_some_and(|p| p.same_rows(&r.base))
                        });
                        match delta {
                            Some(r) => {
                                if !r.added.is_empty() {
                                    let small =
                                        Bindings::from_rows(sat_now.vars().to_vec(), r.added);
                                    w.add_and_prune(&small, t_now);
                                }
                            }
                            None => w.add_and_prune(&sat_now, t_now),
                        }
                    }
                    self.last_sat[idx] = Some(sat_now.clone());
                    if self.fast_eligible {
                        self.sat_cache[idx] = Some(sat_now);
                    }
                    // Extension answered lazily by the oracle.
                }
                Formula::Since(_, f, g) => {
                    let (survivors, anchors, vars) = {
                        let NodeState::Since(w) = &self.states[idx] else {
                            unreachable!("node/state kind mismatch")
                        };
                        let keys = w.keys();
                        let vars = w.vars().to_vec();
                        let oracle = self.oracle(t_now);
                        let (survivors, anchors) = if self.interpret {
                            (
                                // `f` filters the existing anchors' keys…
                                eval(f, db, &oracle, &keys).project(&vars),
                                // …while `g` creates fresh anchors.
                                eval(g, db, &oracle, &Bindings::unit()),
                            )
                        } else {
                            let NodePlans::Since { f: fp, g: gp } =
                                &self.compiled.plans.node_ops[idx]
                            else {
                                unreachable!("since node without a since plan")
                            };
                            (
                                fp.execute(db, &oracle, &keys, &mut scratch).project(&vars),
                                gp.execute(db, &oracle, &Bindings::unit(), &mut scratch),
                            )
                        };
                        (survivors, anchors, vars)
                    };
                    debug_assert_eq!(anchors.vars(), vars.as_slice());
                    let NodeState::Since(w) = &mut self.states[idx] else {
                        unreachable!("node/state kind mismatch")
                    };
                    w.retain_keys(&survivors);
                    w.add_and_prune(&anchors, t_now);
                }
                Formula::Hist(_, g) => {
                    let sat_now = {
                        let oracle = self.oracle(t_now);
                        self.operand_extension(idx, g, db, &oracle, &mut scratch)
                    };
                    match &mut self.states[idx] {
                        NodeState::HistFinite(h) => h.step(&sat_now, t_now, self.last_time),
                        NodeState::HistInf(h) => h.step(&sat_now, t_now),
                        _ => unreachable!("node/state kind mismatch"),
                    }
                    if self.fast_eligible {
                        self.sat_cache[idx] = Some(sat_now);
                    }
                    // `hist` is a filter; it has no generator extension.
                }
                other => unreachable!("non-temporal node: {other}"),
            }
        }
        self.scratch = scratch;
        self.last_time = Some(t_now);
    }

    /// Evaluates the denial body at `(db, t_now)` (after [`NodeEngine::advance`])
    /// and records the result for the quiescent fast path.
    pub(crate) fn violations(&mut self, db: &Database, t_now: TimePoint) -> Bindings {
        let mut scratch = std::mem::take(&mut self.scratch);
        let v = {
            let oracle = self.oracle(t_now);
            if self.interpret {
                eval(&self.compiled.body, db, &oracle, &Bindings::unit())
            } else {
                self.compiled
                    .plans
                    .body
                    .execute(db, &oracle, &Bindings::unit(), &mut scratch)
            }
        };
        self.scratch = scratch;
        self.last_violations = Some(v.clone());
        v
    }

    /// Widest probe key the planned join kernels have built so far.
    pub(crate) fn scratch_high_water(&self) -> usize {
        self.scratch.high_water()
    }

    /// The quiescent fast path: absorbs a pure clock tick into the
    /// auxiliary state — window expiry and all — *without* re-evaluating
    /// operands or the denial body, returning the step's violations
    /// (necessarily the previous, empty ones). Returns `None` when any
    /// precondition fails, in which case nothing was mutated and the caller
    /// must take the full [`NodeEngine::advance`] + [`NodeEngine::violations`]
    /// path.
    ///
    /// Soundness: the caller guarantees the update is quiescent
    /// ([`NodeEngine::is_quiescent`]), so every non-temporal operand's
    /// extension equals the cached one and replaying the cached bindings
    /// through the same window/hist transitions leaves the auxiliary state
    /// byte-identical to a full advance. Skipping the body evaluation is
    /// justified by `tick_gain_free` (a tick cannot create violations) plus
    /// the previous step being violation-free; the evaluator's output
    /// schema is structurally determined, so cloning the previous empty
    /// result is byte-identical to re-evaluating.
    pub(crate) fn advance_time(&mut self, t_now: TimePoint) -> Option<Bindings> {
        if !self.fast_eligible {
            return None;
        }
        let last_time = self.last_time?;
        let clear = match &self.last_violations {
            Some(v) if v.is_empty() => v.clone(),
            _ => return None,
        };
        if self.sat_cache.iter().any(Option::is_none) {
            return None;
        }
        for (state, sat) in self.states.iter_mut().zip(&self.sat_cache) {
            let Some(sat) = sat.as_ref() else {
                // Checked above; nothing has been mutated if we ever get here.
                return None;
            };
            match state {
                NodeState::Once(w) => w.add_and_prune(sat, t_now),
                NodeState::HistFinite(h) => h.step(sat, t_now, Some(last_time)),
                NodeState::HistInf(h) => h.step(sat, t_now),
                // `fast_eligible` excludes prev/since nodes.
                NodeState::Prev(_) | NodeState::Since(_) => return None,
            }
        }
        self.last_time = Some(t_now);
        self.last_violations = Some(clear.clone());
        Some(clear)
    }

    fn oracle(&self, t_now: TimePoint) -> IncOracle<'_> {
        IncOracle {
            node_ids: &self.compiled.node_ids,
            states: &self.states,
            extensions: &self.extensions,
            t_now,
        }
    }

    /// Total auxiliary `(keys, timestamps)` across nodes.
    pub(crate) fn aux_space(&self) -> (usize, usize) {
        let mut keys = 0;
        let mut stamps = 0;
        for s in &self.states {
            let (k, t) = match s {
                NodeState::Prev(p) => p.space(),
                NodeState::Once(w) | NodeState::Since(w) => w.space(),
                NodeState::HistFinite(h) => h.space(),
                NodeState::HistInf(h) => h.space(),
            };
            keys += k;
            stamps += t;
        }
        (keys, stamps)
    }
}

/// Online checker with bounded history encoding.
#[derive(Clone, Debug)]
pub struct IncrementalChecker {
    db: Database,
    engine: NodeEngine,
    steps: usize,
}

impl IncrementalChecker {
    /// Compiles and initializes a checker for `constraint`.
    pub fn new(
        constraint: Constraint,
        catalog: Arc<Catalog>,
    ) -> Result<IncrementalChecker, CompileError> {
        Self::with_options(constraint, catalog, EncodingOptions::default())
    }

    /// [`IncrementalChecker::new`] with explicit [`EncodingOptions`].
    pub fn with_options(
        constraint: Constraint,
        catalog: Arc<Catalog>,
        options: EncodingOptions,
    ) -> Result<IncrementalChecker, CompileError> {
        let compiled = CompiledConstraint::compile(constraint, Arc::clone(&catalog))?;
        Ok(Self::from_compiled(compiled, options))
    }

    /// Builds a checker from an already-compiled constraint.
    pub fn from_compiled(
        compiled: CompiledConstraint,
        options: EncodingOptions,
    ) -> IncrementalChecker {
        let db = Database::new(Arc::clone(&compiled.catalog));
        IncrementalChecker {
            db,
            engine: NodeEngine::new(compiled, options),
            steps: 0,
        }
    }

    /// The compiled form (for inspection and for building siblings).
    pub fn compiled(&self) -> &CompiledConstraint {
        &self.engine.compiled
    }

    /// The current database state.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Number of transitions processed.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Timestamp of the last processed transition, if any. After a
    /// checkpoint restore this is the replay cursor: transitions at or
    /// before it have already been absorbed.
    pub fn last_time(&self) -> Option<TimePoint> {
        self.engine.last_time
    }

    pub(crate) fn engine(&self) -> &NodeEngine {
        &self.engine
    }

    /// Per-temporal-node observability: what each auxiliary structure is
    /// holding right now. Ordered children-first (the update order).
    pub fn node_stats(&self) -> Vec<NodeStat> {
        self.engine
            .compiled
            .nodes
            .iter()
            .zip(&self.engine.states)
            .map(|(node, state)| {
                let (keys, timestamps) = match state {
                    NodeState::Prev(p) => p.space(),
                    NodeState::Once(w) | NodeState::Since(w) => w.space(),
                    NodeState::HistFinite(h) => h.space(),
                    NodeState::HistInf(h) => h.space(),
                };
                NodeStat {
                    formula: node.to_string(),
                    keys,
                    timestamps,
                }
            })
            .collect()
    }

    pub(crate) fn parts_mut(&mut self) -> (&mut Database, &mut NodeEngine, &mut usize) {
        (&mut self.db, &mut self.engine, &mut self.steps)
    }
}

impl Checker for IncrementalChecker {
    fn constraint(&self) -> &Constraint {
        &self.engine.compiled.constraint
    }

    fn step(&mut self, time: TimePoint, update: &Update) -> Result<StepReport, HistoryError> {
        if let Some(last) = self.engine.last_time {
            if time <= last {
                return Err(HistoryError::NonMonotonicTime { last, new: time });
            }
        }
        self.db.apply(update)?;
        let fast = if self.engine.is_quiescent(update) {
            self.engine.advance_time(time)
        } else {
            None
        };
        let violations = match fast {
            Some(v) => v,
            None => {
                self.engine.advance(&self.db, time);
                self.engine.violations(&self.db, time)
            }
        };
        self.steps += 1;
        Ok(StepReport {
            constraint: self.engine.compiled.constraint.name,
            time,
            violations,
        })
    }

    fn space(&self) -> SpaceStats {
        let (aux_keys, aux_timestamps) = self.engine.aux_space();
        SpaceStats {
            aux_keys,
            aux_timestamps,
            stored_states: 1,
            stored_tuples: self.db.total_tuples(),
        }
    }

    fn name(&self) -> &'static str {
        "incremental"
    }

    fn plan_stats(&self) -> Option<crate::plan::RuntimePlanStats> {
        if self.engine.interpret {
            return None;
        }
        Some(crate::plan::RuntimePlanStats {
            plan: self.engine.compiled.plans.stats(),
            scratch_high_water: self.engine.scratch_high_water(),
        })
    }

    fn plan_profile(&self) -> Option<crate::plan::PlanProfile> {
        self.engine.plan_profile()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Oracle over the already-advanced node states.
struct IncOracle<'a> {
    node_ids: &'a HashMap<Formula, usize>,
    states: &'a [NodeState],
    extensions: &'a [Option<Bindings>],
    t_now: TimePoint,
}

impl IncOracle<'_> {
    fn idx(&self, node: &Formula) -> usize {
        *self
            .node_ids
            .get(node)
            .unwrap_or_else(|| panic!("unknown temporal node `{node}`"))
    }
}

impl Oracle for IncOracle<'_> {
    fn extension(&self, node: &Formula) -> Bindings {
        let idx = self.idx(node);
        match &self.states[idx] {
            NodeState::Prev(_) => self.extensions[idx]
                .clone()
                .expect("prev extension cached during advance"),
            NodeState::Once(w) | NodeState::Since(w) => w.extension(self.t_now),
            _ => unreachable!("extension query against a hist node"),
        }
    }

    fn contains(&self, node: &Formula, key: &Tuple) -> bool {
        let idx = self.idx(node);
        match &self.states[idx] {
            NodeState::Prev(_) => self.extensions[idx]
                .as_ref()
                .expect("prev extension cached during advance")
                .contains(key),
            NodeState::Once(w) | NodeState::Since(w) => w.satisfied(key, self.t_now),
            _ => unreachable!("containment query against a hist node"),
        }
    }

    fn hist_holds(&self, node: &Formula, key: &Tuple) -> bool {
        let idx = self.idx(node);
        match &self.states[idx] {
            NodeState::HistFinite(h) => h.holds(key, self.t_now),
            NodeState::HistInf(h) => h.holds(key),
            _ => unreachable!("hist query against non-hist node"),
        }
    }

    fn probe_monotone(&self, node: &Formula) -> bool {
        // `since` windows share `WindowState` but drop keys when the
        // maintained formula fails, so only `once` qualifies.
        match &self.states[self.idx(node)] {
            NodeState::Once(w) => w.probe_monotone(),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtic_relation::{tuple, Schema, Sort};
    use rtic_temporal::parser::parse_constraint;

    fn catalog() -> Arc<Catalog> {
        Arc::new(
            Catalog::new()
                .with("reserved", Schema::of(&[("p", Sort::Str)]))
                .unwrap()
                .with("confirmed", Schema::of(&[("p", Sort::Str)]))
                .unwrap(),
        )
    }

    fn checker(src: &str) -> IncrementalChecker {
        IncrementalChecker::new(parse_constraint(src).unwrap(), catalog()).unwrap()
    }

    #[test]
    fn nontemporal_denial() {
        let mut c = checker("deny both: reserved(p) && confirmed(p)");
        let r = c
            .step(
                TimePoint(1),
                &Update::new().with_insert("reserved", tuple!["ann"]),
            )
            .unwrap();
        assert!(r.ok());
        let r = c
            .step(
                TimePoint(2),
                &Update::new().with_insert("confirmed", tuple!["ann"]),
            )
            .unwrap();
        assert_eq!(r.violation_count(), 1);
    }

    #[test]
    fn unconfirmed_reservation_detected_at_deadline() {
        // Violated when a reservation is ≥ 2 old and never confirmed.
        let mut c =
            checker("deny unconfirmed: once[2,*] reserved(p) && reserved(p) && !once confirmed(p)");
        assert!(c
            .step(
                TimePoint(0),
                &Update::new().with_insert("reserved", tuple!["ann"])
            )
            .unwrap()
            .ok());
        assert!(c.step(TimePoint(1), &Update::new()).unwrap().ok());
        let r = c.step(TimePoint(2), &Update::new()).unwrap();
        assert_eq!(r.violation_count(), 1, "deadline passed unconfirmed");
    }

    #[test]
    fn confirmation_prevents_violation() {
        let mut c =
            checker("deny unconfirmed: once[2,*] reserved(p) && reserved(p) && !once confirmed(p)");
        c.step(
            TimePoint(0),
            &Update::new().with_insert("reserved", tuple!["ann"]),
        )
        .unwrap();
        c.step(
            TimePoint(1),
            &Update::new().with_insert("confirmed", tuple!["ann"]),
        )
        .unwrap();
        assert!(c.step(TimePoint(2), &Update::new()).unwrap().ok());
        assert!(c.step(TimePoint(50), &Update::new()).unwrap().ok());
    }

    #[test]
    fn monotonic_time_enforced() {
        let mut c = checker("deny d: reserved(p) && confirmed(p)");
        c.step(TimePoint(5), &Update::new()).unwrap();
        assert!(matches!(
            c.step(TimePoint(5), &Update::new()),
            Err(HistoryError::NonMonotonicTime { .. })
        ));
    }

    #[test]
    fn space_does_not_grow_with_history() {
        let mut c = checker("deny d: reserved(p) && once[0,3] confirmed(p)");
        let mut max_units = 0;
        for t in 0..200u64 {
            let upd = if t % 4 == 0 {
                Update::new()
                    .with_insert("confirmed", tuple!["x"])
                    .with_delete("confirmed", tuple!["x"])
            } else {
                Update::new()
            };
            c.step(TimePoint(t), &upd).unwrap();
            max_units = max_units.max(c.space().retained_units());
        }
        assert!(max_units <= 8, "aux space stayed bounded (got {max_units})");
    }

    #[test]
    fn ablation_option_keeps_semantics() {
        let src = "deny d: reserved(p) && once[0,5] confirmed(p)";
        let mut spec = checker(src);
        let mut plain = IncrementalChecker::with_options(
            parse_constraint(src).unwrap(),
            catalog(),
            EncodingOptions {
                disable_stamp_specialization: true,
                ..Default::default()
            },
        )
        .unwrap();
        for t in 0..40u64 {
            let upd = if t % 7 == 0 {
                Update::new()
                    .with_insert("confirmed", tuple!["k"])
                    .with_insert("reserved", tuple!["k"])
            } else if t % 5 == 0 {
                Update::new().with_delete("confirmed", tuple!["k"])
            } else {
                Update::new()
            };
            let a = spec.step(TimePoint(t), &upd).unwrap();
            let b = plain.step(TimePoint(t), &upd).unwrap();
            assert_eq!(a, b, "ablation changed semantics at t={t}");
        }
    }

    #[test]
    fn failed_step_leaves_checker_usable() {
        let mut c = checker("deny d: reserved(p) && once[0,3] confirmed(p)");
        c.step(
            TimePoint(1),
            &Update::new().with_insert("confirmed", tuple!["a"]),
        )
        .unwrap();
        // A bad update fails atomically: no state change, no time advance.
        assert!(c
            .step(
                TimePoint(2),
                &Update::new().with_insert("nosuchrel", tuple!["a"])
            )
            .is_err());
        assert!(
            c.step(TimePoint(0), &Update::new()).is_err(),
            "non-monotonic after failure still rejected vs t=1"
        );
        // And a good step at t=2 still works, with consistent aux state.
        let r = c
            .step(
                TimePoint(2),
                &Update::new().with_insert("reserved", tuple!["a"]),
            )
            .unwrap();
        assert_eq!(
            r.violation_count(),
            1,
            "confirmation at t=1 is age 1, in window"
        );
    }

    #[test]
    fn node_stats_reflect_aux_content() {
        let mut c = checker("deny d: reserved(p) && once[0,4] confirmed(p)");
        assert_eq!(c.node_stats().len(), 1);
        assert_eq!(c.node_stats()[0].keys, 0);
        c.step(
            TimePoint(1),
            &Update::new().with_insert("confirmed", tuple!["a"]),
        )
        .unwrap();
        let stats = c.node_stats();
        assert_eq!(stats[0].keys, 1);
        assert_eq!(stats[0].timestamps, 1);
        assert!(stats[0].formula.contains("once[0,4]"));
    }

    #[test]
    fn fast_path_absorbs_ticks_identically() {
        // Differential over gain-free shapes covering once, hist[∞), and
        // finite hist nodes: one checker sees the real (often quiescent)
        // updates and takes the fast path on ticks; the other sees the
        // same db changes plus a no-op insert+delete of an absent tuple,
        // which forces the full path every step.
        for src in [
            "deny d: reserved(p) && once[0,3] confirmed(p)",
            "deny d: reserved(p) && !once[0,*] confirmed(p)",
            "deny d: reserved(p) && hist[3,*] reserved(p)",
            "deny d: reserved(p) && !hist[0,2] confirmed(p)",
        ] {
            let mut fast = checker(src);
            let mut slow = checker(src);
            assert!(fast.engine.fast_eligible, "{src} should be fast-eligible");
            for t in 0..40u64 {
                let upd = if t % 9 == 0 {
                    Update::new().with_insert("reserved", tuple!["a"])
                } else if t % 13 == 0 {
                    Update::new().with_delete("reserved", tuple!["a"])
                } else if t % 17 == 0 {
                    Update::new().with_insert("confirmed", tuple!["a"])
                } else {
                    Update::new()
                };
                // Deleting an absent tuple changes nothing in the db but
                // marks the update non-quiescent.
                let forced = upd.clone().with_delete("confirmed", tuple!["ghost"]);
                let a = fast.step(TimePoint(t), &upd).unwrap();
                let b = slow.step(TimePoint(t), &forced).unwrap();
                assert_eq!(a, b, "{src}: fast path diverged at t={t}");
                assert_eq!(
                    fast.engine.aux_space(),
                    slow.engine.aux_space(),
                    "{src}: aux state diverged at t={t}"
                );
            }
        }
    }

    #[test]
    fn fast_path_keeps_window_expiry() {
        // The once[0,3] witness must still expire during pure ticks.
        let mut c = checker("deny d: reserved(p) && once[0,3] confirmed(p)");
        assert!(c.engine.fast_eligible);
        c.step(
            TimePoint(0),
            &Update::new().with_insert("confirmed", tuple!["a"]),
        )
        .unwrap();
        // Remove the fact so later steps add no fresh witnesses; the t=0
        // stamp keeps the key alive until it ages past the bound.
        c.step(
            TimePoint(1),
            &Update::new().with_delete("confirmed", tuple!["a"]),
        )
        .unwrap();
        assert_eq!(c.engine.aux_space().0, 1, "one live key");
        // Pure ticks from here: the fast path must still run pruning.
        c.step(TimePoint(2), &Update::new()).unwrap();
        c.step(TimePoint(3), &Update::new()).unwrap();
        assert_eq!(c.engine.aux_space().0, 1, "age 3 is still in [0,3]");
        c.step(TimePoint(4), &Update::new()).unwrap();
        assert_eq!(c.engine.aux_space().0, 0, "witness expired during ticks");
    }

    #[test]
    fn ineligible_shapes_take_the_full_path() {
        // prev, since, and delayed-once shapes must not be fast-eligible.
        for src in [
            "deny d: reserved(p) && prev[0,2] confirmed(p)",
            "deny d: reserved(p) since[0,4] confirmed(p)",
            "deny d: reserved(p) && once[2,5] confirmed(p)",
            "deny d: reserved(p) && once[0,*] once[0,2] confirmed(p)",
        ] {
            let c = checker(src);
            assert!(!c.engine.fast_eligible, "{src} wrongly fast-eligible");
        }
    }

    #[test]
    fn vectorized_matches_scalar_byte_for_byte() {
        // Differential: one checker runs the columnar kernels with the
        // per-relation-generation memo (and its atom delta refresh +
        // window delta maintenance), the other the scalar path. Reports
        // and aux state must agree at every step, and the rendered
        // violations must be byte-identical.
        for src in [
            "deny d: reserved(p) && confirmed(p)",
            "deny d: reserved(p) && once[0,3] confirmed(p)",
            "deny d: reserved(p) && !once[0,*] confirmed(p)",
            "deny u: once[2,*] reserved(p) && reserved(p) && !once confirmed(p)",
            "deny d: reserved(p) && hist[3,*] reserved(p)",
            "deny d: reserved(p) since[0,4] confirmed(p)",
            "deny d: confirmed(p) && (exists q . reserved(q))",
            "deny d: reserved(p) && prev[0,2] confirmed(p)",
        ] {
            let mut vectorized = IncrementalChecker::with_options(
                parse_constraint(src).unwrap(),
                catalog(),
                EncodingOptions {
                    vectorize: true,
                    ..Default::default()
                },
            )
            .unwrap();
            let mut scalar = checker(src);
            let names = ["ann", "bob", "cal", "dee"];
            for t in 0..70u64 {
                let i = t as usize;
                let upd = match t % 7 {
                    0 => Update::new().with_insert("reserved", tuple![names[i % 4]]),
                    1 => Update::new().with_insert("confirmed", tuple![names[i % 4]]),
                    2 => Update::new().with_delete("confirmed", tuple![names[(i + 1) % 4]]),
                    3 => Update::new(),
                    4 => Update::new()
                        .with_insert("reserved", tuple!["eve"])
                        .with_insert("confirmed", tuple!["eve"]),
                    5 => Update::new().with_delete("reserved", tuple!["eve"]),
                    _ => Update::new()
                        .with_insert("confirmed", tuple![names[i % 4]])
                        .with_delete("confirmed", tuple![names[(i + 2) % 4]]),
                };
                let a = vectorized.step(TimePoint(t), &upd).unwrap();
                let b = scalar.step(TimePoint(t), &upd).unwrap();
                assert_eq!(a, b, "{src}: vectorized diverged at t={t}");
                assert_eq!(
                    a.violations.to_string(),
                    b.violations.to_string(),
                    "{src}: rendering diverged at t={t}"
                );
                assert_eq!(
                    vectorized.engine.aux_space(),
                    scalar.engine.aux_space(),
                    "{src}: aux state diverged at t={t}"
                );
            }
        }
    }

    #[test]
    fn monotone_probe_partitions_survive_adversarial_deltas() {
        // The vectorized path caches a passed/failed partition for
        // unbounded-once probes and advances it from row deltas. Stress
        // the delta bookkeeping with the cases that historically break
        // partition caches: deleting a row that already passed the
        // probe, inserting and deleting the same row within one step,
        // deleting and re-inserting an initially present row, and a
        // probe input that churns every step. Bounded windows
        // (`once[1,3]`) and `since` must fall back to per-row probing;
        // both flavours run against the scalar path byte-for-byte.
        for src in [
            // Unbounded probes: partition cache engages.
            "deny u: once[2,*] reserved(p) && reserved(p) && !once confirmed(p)",
            "deny d: reserved(p) && once[0,*] confirmed(p)",
            // Bounded / since: verdicts can revoke, cache must not engage.
            "deny d: reserved(p) && once[1,3] confirmed(p)",
            "deny d: reserved(p) since[0,4] confirmed(p)",
        ] {
            let mut vectorized = IncrementalChecker::with_options(
                parse_constraint(src).unwrap(),
                catalog(),
                EncodingOptions {
                    vectorize: true,
                    ..Default::default()
                },
            )
            .unwrap();
            let mut scalar = checker(src);
            let names = ["ann", "bob", "cal"];
            for t in 0..60u64 {
                let i = t as usize;
                let upd = match t % 6 {
                    // Row enters the probe input, then (two steps later,
                    // after its probe verdict may have flipped to pass)
                    // leaves again: a passed row must move out of the
                    // partition without surfacing as a flip.
                    0 => Update::new().with_insert("reserved", tuple![names[i % 3]]),
                    1 => Update::new().with_insert("confirmed", tuple![names[i % 3]]),
                    2 => Update::new().with_delete("reserved", tuple![names[i % 3]]),
                    // Insert + delete of the same row in one step: the
                    // net delta must be empty for that row.
                    3 => Update::new()
                        .with_insert("reserved", tuple!["eve"])
                        .with_delete("reserved", tuple!["eve"]),
                    // Delete then re-insert an initially present row.
                    4 => Update::new()
                        .with_delete("reserved", tuple![names[(i + 1) % 3]])
                        .with_insert("reserved", tuple![names[(i + 1) % 3]]),
                    _ => Update::new(),
                };
                let a = vectorized.step(TimePoint(t), &upd).unwrap();
                let b = scalar.step(TimePoint(t), &upd).unwrap();
                assert_eq!(a, b, "{src}: vectorized diverged at t={t}");
                assert_eq!(
                    a.violations.to_string(),
                    b.violations.to_string(),
                    "{src}: rendering diverged at t={t}"
                );
            }
        }
    }

    #[test]
    fn probe_monotone_only_for_unbounded_once() {
        // Only `once[l,*]` states may certify monotone probes; bounded
        // windows prune stamps and `since` drops keys, so a cached
        // "passed" verdict could go stale.
        let cases = [
            ("deny d: reserved(p) && once[2,*] confirmed(p)", true),
            ("deny d: reserved(p) && once[0,3] confirmed(p)", false),
            ("deny d: reserved(p) since[0,4] confirmed(p)", false),
        ];
        for (src, expect) in cases {
            let c = checker(src);
            let oracle = c.engine.oracle(TimePoint(0));
            let any_monotone = c
                .engine
                .compiled
                .nodes
                .iter()
                .any(|n| oracle.probe_monotone(n));
            assert_eq!(any_monotone, expect, "{src}");
        }
    }

    #[test]
    fn vectorized_quiescent_steps_replay_the_memo() {
        // A pure tick leaves every relation generation alone, so the
        // vectorized memo replays (cache hit) instead of rescanning; an
        // update to an *unrelated* relation must also keep the entry.
        let src = "deny d: reserved(p) && !once[0,*] confirmed(p)";
        let mut c = IncrementalChecker::with_options(
            parse_constraint(src).unwrap(),
            catalog(),
            EncodingOptions {
                vectorize: true,
                profile_plans: true,
                ..Default::default()
            },
        )
        .unwrap();
        c.step(
            TimePoint(0),
            &Update::new().with_insert("reserved", tuple!["ann"]),
        )
        .unwrap();
        // Force the full path with a no-op non-quiescent update: the body
        // re-executes, and its db-pure subtrees must hit the memo.
        c.step(
            TimePoint(1),
            &Update::new().with_delete("confirmed", tuple!["ghost"]),
        )
        .unwrap();
        let profile = c.engine.plan_profile().expect("profiling enabled");
        let hits: u64 = profile.nodes.iter().map(|n| n.counts.cache_hits).sum();
        assert!(
            hits > 0,
            "per-relation-generation memo never replayed: {profile:?}"
        );
    }

    #[test]
    fn steps_counter_advances() {
        let mut c = checker("deny d: reserved(p) && confirmed(p)");
        assert_eq!(c.steps(), 0);
        c.step(TimePoint(1), &Update::new()).unwrap();
        c.step(TimePoint(2), &Update::new()).unwrap();
        assert_eq!(c.steps(), 2);
    }
}
