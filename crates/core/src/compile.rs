//! Constraint compilation: normalization, renaming, static checks, and the
//! temporal-subformula DAG shared by every checker.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

use rtic_relation::{Catalog, Symbol};
use rtic_temporal::ast::{Formula, Term, Var};
use rtic_temporal::normalize::rename_apart;
use rtic_temporal::optimize::optimize;
use rtic_temporal::{analysis, safety, typecheck, Constraint, Horizon};

use crate::error::CompileError;
use crate::plan::EvalPlans;

/// A constraint compiled into checkable form: the normalized,
/// variables-renamed-apart denial body, plus its temporal subformulas in
/// children-first order.
#[derive(Clone, Debug)]
pub struct CompiledConstraint {
    /// The source constraint.
    pub constraint: Constraint,
    /// The catalog the constraint was compiled against.
    pub catalog: Arc<Catalog>,
    /// Normalized, alpha-renamed denial body; its satisfying assignments
    /// are the violation witnesses.
    pub body: Formula,
    /// Distinct temporal subformulas of `body` in post-order (every node's
    /// operands' temporal subformulas precede it) — the update order of the
    /// bounded encoding.
    pub nodes: Vec<Formula>,
    /// `nodes` index by subformula.
    pub node_ids: HashMap<Formula, usize>,
    /// The body's lookback horizon.
    pub horizon: Horizon,
    /// Relations the body reads — an update touching none of them cannot
    /// change the body's extension (relevance dispatch).
    pub relations: BTreeSet<Symbol>,
    /// True when a pure clock tick (update touching none of `relations`)
    /// cannot create new violations — the soundness condition for skipping
    /// body re-evaluation on quiescent, previously-clean steps.
    pub tick_gain_free: bool,
    /// Compiled evaluation plans: the body and every temporal node's
    /// operands lowered once, so stepping never re-derives conjunct orders,
    /// variable lists, or join shapes (see [`crate::plan`]).
    pub plans: EvalPlans,
    /// The entity key the body partitions on, when one exists: a variable
    /// occurring in **every** atom at a consistent column per relation.
    /// Such a body never joins across key values, so its evaluation
    /// decomposes into one independent shard per key (see
    /// [`crate::shard`]).
    pub shard_key: Option<ShardKey>,
}

/// A partitioning key detected by compile-time analysis: restricting the
/// database to tuples whose key column equals `v` and evaluating the body
/// there yields exactly the global violations with key `v`, for every `v`
/// independently. Holds because each atom carries the key, so range
/// restriction pins every satisfying assignment to a single key value and
/// the global extension is the disjoint union of the per-key ones — through
/// temporal operators too, whose state is pointwise in the assignment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardKey {
    /// The shared entity-key variable.
    pub var: Var,
    /// The argument position the key occupies in each relation the body
    /// reads (consistent across all of that relation's atoms).
    pub columns: BTreeMap<Symbol, usize>,
}

/// Detects the entity key of a normalized body, if any. Conservative:
/// bodies containing `count` aggregates or universal quantifiers are never
/// sharded (their truth can depend on assignments outside a single key
/// partition), and every atom must mention one common variable at a column
/// that is consistent per relation. Among several candidate variables the
/// lexicographically smallest wins, for determinism.
fn shard_key(body: &Formula) -> Option<ShardKey> {
    let mut atoms: Vec<(Symbol, &[Term])> = Vec::new();
    if !collect_atoms(body, &mut atoms) || atoms.is_empty() {
        return None;
    }
    let mut candidates: Option<BTreeSet<Var>> = None;
    for (_, terms) in &atoms {
        let vars: BTreeSet<Var> = terms
            .iter()
            .filter_map(|t| match t {
                Term::Var(v) => Some(*v),
                Term::Const(_) => None,
            })
            .collect();
        candidates = Some(match candidates {
            None => vars,
            Some(prev) => prev.intersection(&vars).copied().collect(),
        });
    }
    candidates?
        .into_iter()
        .find_map(|var| column_map(&atoms, var).map(|columns| ShardKey { var, columns }))
}

/// The per-relation key column for `var`, or `None` when some relation
/// mentions the key at irreconcilable positions (e.g. `peer(x,y) &&
/// peer(y,x)` — no single column carries the key in both atoms).
fn column_map(atoms: &[(Symbol, &[Term])], var: Var) -> Option<BTreeMap<Symbol, usize>> {
    let mut columns: BTreeMap<Symbol, BTreeSet<usize>> = BTreeMap::new();
    for (rel, terms) in atoms {
        let positions: BTreeSet<usize> = terms
            .iter()
            .enumerate()
            .filter_map(|(i, t)| (*t == Term::Var(var)).then_some(i))
            .collect();
        match columns.get_mut(rel) {
            None => {
                columns.insert(*rel, positions);
            }
            Some(prev) => *prev = prev.intersection(&positions).copied().collect(),
        }
    }
    columns
        .into_iter()
        .map(|(rel, ps)| ps.first().copied().map(|p| (rel, p)))
        .collect()
}

/// Appends every atom of `f` to `atoms`; returns `false` when `f` contains
/// a construct that disqualifies sharding outright.
fn collect_atoms<'f>(f: &'f Formula, atoms: &mut Vec<(Symbol, &'f [Term])>) -> bool {
    match f {
        Formula::True | Formula::False | Formula::Cmp(..) => true,
        Formula::Atom { relation, terms } => {
            atoms.push((*relation, terms.as_slice()));
            true
        }
        Formula::Not(g)
        | Formula::Exists(_, g)
        | Formula::Prev(_, g)
        | Formula::Once(_, g)
        | Formula::Hist(_, g) => collect_atoms(g, atoms),
        Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) => {
            collect_atoms(a, atoms) && collect_atoms(b, atoms)
        }
        Formula::Since(_, a, b) => collect_atoms(a, atoms) && collect_atoms(b, atoms),
        Formula::Forall(..) | Formula::CountCmp { .. } => false,
    }
}

impl CompiledConstraint {
    /// Compiles `constraint` against `catalog`: normalizes the denial body,
    /// renames quantified variables apart, applies the gap-safe peephole
    /// rewrites, sort-checks, runs the safety analysis, and extracts the
    /// temporal DAG.
    pub fn compile(
        constraint: Constraint,
        catalog: Arc<Catalog>,
    ) -> Result<CompiledConstraint, CompileError> {
        Self::compile_with(constraint, catalog, true)
    }

    /// [`CompiledConstraint::compile`] with the peephole optimizer
    /// switched off — used by the optimizer-equivalence property tests.
    pub fn compile_unoptimized(
        constraint: Constraint,
        catalog: Arc<Catalog>,
    ) -> Result<CompiledConstraint, CompileError> {
        Self::compile_with(constraint, catalog, false)
    }

    fn compile_with(
        constraint: Constraint,
        catalog: Arc<Catalog>,
        peephole: bool,
    ) -> Result<CompiledConstraint, CompileError> {
        let mut body = rename_apart(&constraint.denial_body());
        if peephole {
            body = optimize(&body);
        }
        typecheck::typecheck(&body, &catalog)?;
        safety::check(&body)?;
        let mut nodes = Vec::new();
        let mut node_ids = HashMap::new();
        collect_temporal_postorder(&body, &mut nodes, &mut node_ids);
        let horizon = analysis::horizon(&body);
        let relations = analysis::touched_relations(&body);
        let tick_gain_free = analysis::tick_stability(&body).gain_free;
        let plans = EvalPlans::build(&body, &nodes);
        let shard_key = shard_key(&body);
        Ok(CompiledConstraint {
            constraint,
            catalog,
            body,
            nodes,
            node_ids,
            horizon,
            relations,
            tick_gain_free,
            plans,
            shard_key,
        })
    }
}

/// Appends `f`'s temporal subformulas to `nodes` in post-order, deduplicating
/// structurally equal nodes (equal subformulas share auxiliary state).
fn collect_temporal_postorder(
    f: &Formula,
    nodes: &mut Vec<Formula>,
    ids: &mut HashMap<Formula, usize>,
) {
    match f {
        Formula::True | Formula::False | Formula::Atom { .. } | Formula::Cmp(..) => {}
        Formula::Not(g) | Formula::Exists(_, g) | Formula::Forall(_, g) => {
            collect_temporal_postorder(g, nodes, ids)
        }
        Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) => {
            collect_temporal_postorder(a, nodes, ids);
            collect_temporal_postorder(b, nodes, ids);
        }
        Formula::Prev(_, g) | Formula::Once(_, g) | Formula::Hist(_, g) => {
            collect_temporal_postorder(g, nodes, ids);
            insert_node(f, nodes, ids);
        }
        Formula::Since(_, a, b) => {
            collect_temporal_postorder(a, nodes, ids);
            collect_temporal_postorder(b, nodes, ids);
            insert_node(f, nodes, ids);
        }
        Formula::CountCmp { body, .. } => collect_temporal_postorder(body, nodes, ids),
    }
}

fn insert_node(f: &Formula, nodes: &mut Vec<Formula>, ids: &mut HashMap<Formula, usize>) {
    if !ids.contains_key(f) {
        ids.insert(f.clone(), nodes.len());
        nodes.push(f.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtic_relation::{Schema, Sort};
    use rtic_temporal::parser::parse_constraint;
    use rtic_temporal::Interval;

    fn catalog() -> Arc<Catalog> {
        Arc::new(
            Catalog::new()
                .with(
                    "reserved",
                    Schema::of(&[("p", Sort::Str), ("f", Sort::Int)]),
                )
                .unwrap()
                .with(
                    "confirmed",
                    Schema::of(&[("p", Sort::Str), ("f", Sort::Int)]),
                )
                .unwrap(),
        )
    }

    fn compile(src: &str) -> Result<CompiledConstraint, CompileError> {
        CompiledConstraint::compile(parse_constraint(src).unwrap(), catalog())
    }

    #[test]
    fn compiles_the_motivating_constraint() {
        let c = compile(
            "deny unconfirmed: once[2,*] reserved(p, f) && reserved(p, f) \
             && !once[0,*] confirmed(p, f)",
        )
        .unwrap();
        assert_eq!(c.nodes.len(), 2);
        assert_eq!(c.horizon, Horizon::Unbounded);
        assert_eq!(c.relations.len(), 2);
        assert!(c.relations.contains(&Symbol::from("reserved")));
        assert!(c.relations.contains(&Symbol::from("confirmed")));
        // once[2,*] can fire purely by aging: a tick can create violations.
        assert!(!c.tick_gain_free);
    }

    #[test]
    fn gain_free_body_is_detected() {
        let c = compile("deny g: reserved(p, f) && !once[0,*] confirmed(p, f)").unwrap();
        assert!(c.tick_gain_free);
    }

    #[test]
    fn nodes_are_postorder() {
        let c = compile("deny nested: once[0,2] once[0,3] reserved(p, f)").unwrap();
        assert_eq!(c.nodes.len(), 2);
        // Inner node (smaller) first.
        assert!(c.nodes[0].size() < c.nodes[1].size());
        if let Formula::Once(i, inner) = &c.nodes[1] {
            assert_eq!(*i, Interval::up_to(2));
            assert_eq!(**inner, c.nodes[0]);
        } else {
            panic!("expected once at the root node");
        }
    }

    #[test]
    fn duplicate_subformulas_share_a_node() {
        let c = compile("deny dup: once[0,2] reserved(p, f) && once[0,2] reserved(p, f)").unwrap();
        assert_eq!(c.nodes.len(), 1);
    }

    #[test]
    fn type_errors_surface() {
        let e = compile("deny bad: reserved(p)").unwrap_err();
        assert!(matches!(e, CompileError::Type(_)));
    }

    #[test]
    fn safety_errors_surface() {
        let e = compile("deny bad: !reserved(p, f)").unwrap_err();
        assert!(matches!(e, CompileError::Safety(_)));
    }

    #[test]
    fn assert_mode_checks_the_negation() {
        // assert reserved->confirmed == deny reserved && !confirmed.
        let c = compile("assert conf: reserved(p, f) -> once confirmed(p, f)").unwrap();
        assert_eq!(c.nodes.len(), 1);
        safety::check(&c.body).unwrap();
    }

    #[test]
    fn motivating_constraint_shards_on_the_passenger() {
        let c = compile(
            "deny unconfirmed: once[2,*] reserved(p, f) && reserved(p, f) \
             && !once[0,*] confirmed(p, f)",
        )
        .unwrap();
        // Both `p` and `f` reach every atom; the lexicographically
        // smallest candidate wins deterministically.
        let key = c.shard_key.expect("per-entity body has a key");
        assert_eq!(key.var.to_string(), "f");
        assert_eq!(key.columns.len(), 2);
        assert_eq!(key.columns[&Symbol::from("reserved")], 1);
        assert_eq!(key.columns[&Symbol::from("confirmed")], 1);
    }

    #[test]
    fn cross_entity_join_has_no_shard_key() {
        // `f` is shared, but `p`/`q` are not and neither is `f`… check a
        // body where truly no variable reaches every atom.
        let cat = Arc::new(
            Catalog::new()
                .with(
                    "reserved",
                    Schema::of(&[("p", Sort::Str), ("f", Sort::Int)]),
                )
                .unwrap()
                .with(
                    "confirmed",
                    Schema::of(&[("q", Sort::Str), ("g", Sort::Int)]),
                )
                .unwrap(),
        );
        let c = CompiledConstraint::compile(
            parse_constraint("deny x: reserved(p, f) && confirmed(q, g)").unwrap(),
            cat,
        )
        .unwrap();
        assert_eq!(c.shard_key, None);
    }

    #[test]
    fn shared_flight_column_is_a_key_too() {
        let c = compile("deny clash: reserved(p, f) && confirmed(q, f)").unwrap();
        let key = c.shard_key.expect("flight is shared by every atom");
        assert_eq!(key.var.to_string(), "f");
        assert_eq!(key.columns[&Symbol::from("reserved")], 1);
        assert_eq!(key.columns[&Symbol::from("confirmed")], 1);
    }

    #[test]
    fn count_aggregates_disable_sharding() {
        let c = compile("deny busy: reserved(p, f) && count k . (reserved(p, k)) > 1").unwrap();
        assert_eq!(c.shard_key, None);
    }

    #[test]
    fn inconsistent_key_columns_disable_sharding() {
        let cat = Arc::new(
            Catalog::new()
                .with("peer", Schema::of(&[("a", Sort::Str), ("b", Sort::Str)]))
                .unwrap(),
        );
        let c = CompiledConstraint::compile(
            parse_constraint("deny m: peer(x, y) && peer(y, x)").unwrap(),
            cat,
        )
        .unwrap();
        assert_eq!(c.shard_key, None, "no single column carries either var");
    }

    #[test]
    fn since_node_collected_with_operand_children() {
        let c = compile("deny s: (once[0,1] reserved(p, f)) since[0,9] confirmed(p, f)").unwrap();
        assert_eq!(c.nodes.len(), 2);
        assert!(matches!(c.nodes[0], Formula::Once(..)));
        assert!(matches!(c.nodes[1], Formula::Since(..)));
    }
}
