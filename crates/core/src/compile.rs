//! Constraint compilation: normalization, renaming, static checks, and the
//! temporal-subformula DAG shared by every checker.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use rtic_relation::{Catalog, Symbol};
use rtic_temporal::ast::Formula;
use rtic_temporal::normalize::rename_apart;
use rtic_temporal::optimize::optimize;
use rtic_temporal::{analysis, safety, typecheck, Constraint, Horizon};

use crate::error::CompileError;
use crate::plan::EvalPlans;

/// A constraint compiled into checkable form: the normalized,
/// variables-renamed-apart denial body, plus its temporal subformulas in
/// children-first order.
#[derive(Clone, Debug)]
pub struct CompiledConstraint {
    /// The source constraint.
    pub constraint: Constraint,
    /// The catalog the constraint was compiled against.
    pub catalog: Arc<Catalog>,
    /// Normalized, alpha-renamed denial body; its satisfying assignments
    /// are the violation witnesses.
    pub body: Formula,
    /// Distinct temporal subformulas of `body` in post-order (every node's
    /// operands' temporal subformulas precede it) — the update order of the
    /// bounded encoding.
    pub nodes: Vec<Formula>,
    /// `nodes` index by subformula.
    pub node_ids: HashMap<Formula, usize>,
    /// The body's lookback horizon.
    pub horizon: Horizon,
    /// Relations the body reads — an update touching none of them cannot
    /// change the body's extension (relevance dispatch).
    pub relations: BTreeSet<Symbol>,
    /// True when a pure clock tick (update touching none of `relations`)
    /// cannot create new violations — the soundness condition for skipping
    /// body re-evaluation on quiescent, previously-clean steps.
    pub tick_gain_free: bool,
    /// Compiled evaluation plans: the body and every temporal node's
    /// operands lowered once, so stepping never re-derives conjunct orders,
    /// variable lists, or join shapes (see [`crate::plan`]).
    pub plans: EvalPlans,
}

impl CompiledConstraint {
    /// Compiles `constraint` against `catalog`: normalizes the denial body,
    /// renames quantified variables apart, applies the gap-safe peephole
    /// rewrites, sort-checks, runs the safety analysis, and extracts the
    /// temporal DAG.
    pub fn compile(
        constraint: Constraint,
        catalog: Arc<Catalog>,
    ) -> Result<CompiledConstraint, CompileError> {
        Self::compile_with(constraint, catalog, true)
    }

    /// [`CompiledConstraint::compile`] with the peephole optimizer
    /// switched off — used by the optimizer-equivalence property tests.
    pub fn compile_unoptimized(
        constraint: Constraint,
        catalog: Arc<Catalog>,
    ) -> Result<CompiledConstraint, CompileError> {
        Self::compile_with(constraint, catalog, false)
    }

    fn compile_with(
        constraint: Constraint,
        catalog: Arc<Catalog>,
        peephole: bool,
    ) -> Result<CompiledConstraint, CompileError> {
        let mut body = rename_apart(&constraint.denial_body());
        if peephole {
            body = optimize(&body);
        }
        typecheck::typecheck(&body, &catalog)?;
        safety::check(&body)?;
        let mut nodes = Vec::new();
        let mut node_ids = HashMap::new();
        collect_temporal_postorder(&body, &mut nodes, &mut node_ids);
        let horizon = analysis::horizon(&body);
        let relations = analysis::touched_relations(&body);
        let tick_gain_free = analysis::tick_stability(&body).gain_free;
        let plans = EvalPlans::build(&body, &nodes);
        Ok(CompiledConstraint {
            constraint,
            catalog,
            body,
            nodes,
            node_ids,
            horizon,
            relations,
            tick_gain_free,
            plans,
        })
    }
}

/// Appends `f`'s temporal subformulas to `nodes` in post-order, deduplicating
/// structurally equal nodes (equal subformulas share auxiliary state).
fn collect_temporal_postorder(
    f: &Formula,
    nodes: &mut Vec<Formula>,
    ids: &mut HashMap<Formula, usize>,
) {
    match f {
        Formula::True | Formula::False | Formula::Atom { .. } | Formula::Cmp(..) => {}
        Formula::Not(g) | Formula::Exists(_, g) | Formula::Forall(_, g) => {
            collect_temporal_postorder(g, nodes, ids)
        }
        Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) => {
            collect_temporal_postorder(a, nodes, ids);
            collect_temporal_postorder(b, nodes, ids);
        }
        Formula::Prev(_, g) | Formula::Once(_, g) | Formula::Hist(_, g) => {
            collect_temporal_postorder(g, nodes, ids);
            insert_node(f, nodes, ids);
        }
        Formula::Since(_, a, b) => {
            collect_temporal_postorder(a, nodes, ids);
            collect_temporal_postorder(b, nodes, ids);
            insert_node(f, nodes, ids);
        }
        Formula::CountCmp { body, .. } => collect_temporal_postorder(body, nodes, ids),
    }
}

fn insert_node(f: &Formula, nodes: &mut Vec<Formula>, ids: &mut HashMap<Formula, usize>) {
    if !ids.contains_key(f) {
        ids.insert(f.clone(), nodes.len());
        nodes.push(f.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtic_relation::{Schema, Sort};
    use rtic_temporal::parser::parse_constraint;
    use rtic_temporal::Interval;

    fn catalog() -> Arc<Catalog> {
        Arc::new(
            Catalog::new()
                .with(
                    "reserved",
                    Schema::of(&[("p", Sort::Str), ("f", Sort::Int)]),
                )
                .unwrap()
                .with(
                    "confirmed",
                    Schema::of(&[("p", Sort::Str), ("f", Sort::Int)]),
                )
                .unwrap(),
        )
    }

    fn compile(src: &str) -> Result<CompiledConstraint, CompileError> {
        CompiledConstraint::compile(parse_constraint(src).unwrap(), catalog())
    }

    #[test]
    fn compiles_the_motivating_constraint() {
        let c = compile(
            "deny unconfirmed: once[2,*] reserved(p, f) && reserved(p, f) \
             && !once[0,*] confirmed(p, f)",
        )
        .unwrap();
        assert_eq!(c.nodes.len(), 2);
        assert_eq!(c.horizon, Horizon::Unbounded);
        assert_eq!(c.relations.len(), 2);
        assert!(c.relations.contains(&Symbol::from("reserved")));
        assert!(c.relations.contains(&Symbol::from("confirmed")));
        // once[2,*] can fire purely by aging: a tick can create violations.
        assert!(!c.tick_gain_free);
    }

    #[test]
    fn gain_free_body_is_detected() {
        let c = compile("deny g: reserved(p, f) && !once[0,*] confirmed(p, f)").unwrap();
        assert!(c.tick_gain_free);
    }

    #[test]
    fn nodes_are_postorder() {
        let c = compile("deny nested: once[0,2] once[0,3] reserved(p, f)").unwrap();
        assert_eq!(c.nodes.len(), 2);
        // Inner node (smaller) first.
        assert!(c.nodes[0].size() < c.nodes[1].size());
        if let Formula::Once(i, inner) = &c.nodes[1] {
            assert_eq!(*i, Interval::up_to(2));
            assert_eq!(**inner, c.nodes[0]);
        } else {
            panic!("expected once at the root node");
        }
    }

    #[test]
    fn duplicate_subformulas_share_a_node() {
        let c = compile("deny dup: once[0,2] reserved(p, f) && once[0,2] reserved(p, f)").unwrap();
        assert_eq!(c.nodes.len(), 1);
    }

    #[test]
    fn type_errors_surface() {
        let e = compile("deny bad: reserved(p)").unwrap_err();
        assert!(matches!(e, CompileError::Type(_)));
    }

    #[test]
    fn safety_errors_surface() {
        let e = compile("deny bad: !reserved(p, f)").unwrap_err();
        assert!(matches!(e, CompileError::Safety(_)));
    }

    #[test]
    fn assert_mode_checks_the_negation() {
        // assert reserved->confirmed == deny reserved && !confirmed.
        let c = compile("assert conf: reserved(p, f) -> once confirmed(p, f)").unwrap();
        assert_eq!(c.nodes.len(), 1);
        safety::check(&c.body).unwrap();
    }

    #[test]
    fn since_node_collected_with_operand_children() {
        let c = compile("deny s: (once[0,1] reserved(p, f)) since[0,9] confirmed(p, f)").unwrap();
        assert_eq!(c.nodes.len(), 2);
        assert!(matches!(c.nodes[0], Formula::Once(..)));
        assert!(matches!(c.nodes[1], Formula::Since(..)));
    }
}
