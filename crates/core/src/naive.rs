//! The naive baseline checker: store the whole history, re-evaluate the
//! temporal formula from scratch at every state.
//!
//! This is the semantics-defining implementation: temporal operators are
//! evaluated by direct recursion over stored past states, transliterating
//! the satisfaction relation from the paper (see [`rtic_temporal::ast`]).
//! Its space grows linearly with history length and its step time grows
//! with it too — the comparison point for experiments T1/F1.

use std::sync::Arc;

use rtic_history::{History, HistoryError};
use rtic_relation::{Catalog, Tuple, Update};
use rtic_temporal::ast::{Formula, Var};
use rtic_temporal::{Constraint, TimePoint};

use crate::binding::{Bindings, Scratch};
use crate::checker::Checker;
use crate::compile::CompiledConstraint;
use crate::error::CompileError;
use crate::eval::{eval, Oracle};
use crate::report::{SpaceStats, StepReport};

/// Full-history, recompute-everything checker.
#[derive(Clone, Debug)]
pub struct NaiveChecker {
    compiled: CompiledConstraint,
    history: History,
    /// Evaluate the body through the interpreter instead of the compiled
    /// plan — the reference mode for the differential oracle.
    interpret: bool,
    scratch: Scratch,
}

impl NaiveChecker {
    /// Compiles and initializes a checker for `constraint`.
    pub fn new(
        constraint: Constraint,
        catalog: Arc<Catalog>,
    ) -> Result<NaiveChecker, CompileError> {
        let compiled = CompiledConstraint::compile(constraint, Arc::clone(&catalog))?;
        Ok(Self::from_compiled(compiled))
    }

    /// [`NaiveChecker::new`], evaluating the body through the interpreting
    /// [`eval`] instead of the compiled plan. This is the reference
    /// executor the differential oracle compares every planned backend
    /// against; reports are byte-identical either way.
    pub fn new_interpreted(
        constraint: Constraint,
        catalog: Arc<Catalog>,
    ) -> Result<NaiveChecker, CompileError> {
        let compiled = CompiledConstraint::compile(constraint, Arc::clone(&catalog))?;
        Ok(Self::from_compiled_interpreted(compiled))
    }

    /// Builds a checker from an already-compiled constraint.
    pub fn from_compiled(compiled: CompiledConstraint) -> NaiveChecker {
        let history = History::new(Arc::clone(&compiled.catalog));
        NaiveChecker {
            compiled,
            history,
            interpret: false,
            scratch: Scratch::new(),
        }
    }

    /// [`NaiveChecker::from_compiled`] in interpreting reference mode.
    pub fn from_compiled_interpreted(compiled: CompiledConstraint) -> NaiveChecker {
        NaiveChecker {
            interpret: true,
            ..Self::from_compiled(compiled)
        }
    }

    /// The stored history (grows without bound).
    pub fn history(&self) -> &History {
        &self.history
    }
}

impl Checker for NaiveChecker {
    fn constraint(&self) -> &Constraint {
        &self.compiled.constraint
    }

    fn step(&mut self, time: TimePoint, update: &Update) -> Result<StepReport, HistoryError> {
        self.history.append(time, update)?;
        let i = self.history.len() - 1;
        let violations = if self.interpret {
            eval_at(&self.history, i, &self.compiled.body)
        } else {
            eval_at_planned(&self.history, i, &self.compiled, &mut self.scratch)
        };
        Ok(StepReport {
            constraint: self.compiled.constraint.name,
            time,
            violations,
        })
    }

    fn space(&self) -> SpaceStats {
        SpaceStats {
            aux_keys: 0,
            aux_timestamps: self.history.len(), // one timestamp per stored state
            stored_states: self.history.len(),
            stored_tuples: self.history.total_stored_tuples(),
        }
    }

    fn name(&self) -> &'static str {
        "naive"
    }

    fn plan_stats(&self) -> Option<crate::plan::RuntimePlanStats> {
        if self.interpret {
            return None;
        }
        // Only the body plan runs here; the temporal recursion stays
        // interpreted, so node-operand plans are not counted.
        Some(crate::plan::RuntimePlanStats {
            plan: self.compiled.plans.body.stats(),
            scratch_high_water: self.scratch.high_water(),
        })
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Evaluates `f` at position `i` of `history` by recursion, returning the
/// satisfying assignments over `f`'s free variables.
pub fn eval_at(history: &History, i: usize, f: &Formula) -> Bindings {
    let oracle = NaiveOracle::new(history, i);
    eval(f, history.state(i), &oracle, &Bindings::unit())
}

/// Evaluates `f` at position `i` under candidate assignments `input`.
pub fn eval_at_with(history: &History, i: usize, f: &Formula, input: &Bindings) -> Bindings {
    let oracle = NaiveOracle::new(history, i);
    eval(f, history.state(i), &oracle, input)
}

/// Evaluates `compiled`'s body at position `i` through its compiled plan.
/// Temporal subformulas are still answered by the interpreting recursion
/// (the oracle below) — the plan only replaces the per-step first-order
/// work, exactly as in the other checkers.
pub fn eval_at_planned(
    history: &History,
    i: usize,
    compiled: &CompiledConstraint,
    scratch: &mut Scratch,
) -> Bindings {
    let oracle = NaiveOracle::new(history, i);
    compiled
        .plans
        .body
        .execute(history.state(i), &oracle, &Bindings::unit(), scratch)
}

struct NaiveOracle<'h> {
    history: &'h History,
    i: usize,
    /// Per-evaluation memo of node extensions, so the semijoin-pushdown
    /// `contains` probes don't recompute the (expensive, history-scanning)
    /// extension once per candidate row.
    ext_cache: std::cell::RefCell<std::collections::HashMap<Formula, Bindings>>,
}

impl<'h> NaiveOracle<'h> {
    fn new(history: &'h History, i: usize) -> NaiveOracle<'h> {
        NaiveOracle {
            history,
            i,
            ext_cache: Default::default(),
        }
    }

    fn cached_extension(&self, node: &Formula) -> Bindings {
        if let Some(b) = self.ext_cache.borrow().get(node) {
            return b.clone();
        }
        let b = self.compute_extension(node);
        self.ext_cache.borrow_mut().insert(node.clone(), b.clone());
        b
    }
}

fn sorted_free_vars(f: &Formula) -> Vec<Var> {
    f.free_vars().into_iter().collect()
}

impl Oracle for NaiveOracle<'_> {
    fn extension(&self, node: &Formula) -> Bindings {
        self.cached_extension(node)
    }

    fn contains(&self, node: &Formula, key: &Tuple) -> bool {
        // Probe through the cache WITHOUT cloning the extension per row.
        if let Some(b) = self.ext_cache.borrow().get(node) {
            return b.contains(key);
        }
        let b = self.compute_extension(node);
        let hit = b.contains(key);
        self.ext_cache.borrow_mut().insert(node.clone(), b);
        hit
    }

    fn hist_holds(&self, node: &Formula, key: &Tuple) -> bool {
        let Formula::Hist(interval, g) = node else {
            panic!("hist query for non-hist node `{node}`")
        };
        let h = self.history;
        let t_i = h.time(self.i);
        let vars = sorted_free_vars(node);
        for j in (0..=self.i).rev() {
            let age = t_i.age_of(h.time(j));
            if !interval.hi().admits(age) {
                break;
            }
            if age >= interval.lo() {
                let sat = eval_at(h, j, g).project(&vars);
                if !sat.contains(key) {
                    return false;
                }
            }
        }
        true
    }
}

impl NaiveOracle<'_> {
    fn compute_extension(&self, node: &Formula) -> Bindings {
        let h = self.history;
        let t_i = h.time(self.i);
        match node {
            Formula::Prev(interval, g) => {
                if self.i == 0 {
                    return Bindings::none(sorted_free_vars(node));
                }
                let age = t_i.age_of(h.time(self.i - 1));
                if interval.contains(age) {
                    eval_at(h, self.i - 1, g)
                } else {
                    Bindings::none(sorted_free_vars(node))
                }
            }
            Formula::Once(interval, g) => {
                let mut result = Bindings::none(sorted_free_vars(node));
                for j in (0..=self.i).rev() {
                    let age = t_i.age_of(h.time(j));
                    if !interval.hi().admits(age) {
                        break; // even older states only get older
                    }
                    if age >= interval.lo() {
                        result.union_in_place(&eval_at(h, j, g));
                    }
                }
                result
            }
            Formula::Since(interval, f, g) => {
                // ∃ j ≤ i: age(j) ∈ I, g at j, and f at every k with
                // j < k ≤ i — transliterated directly (quadratic, which is
                // the point of this baseline).
                let vars = sorted_free_vars(node);
                let mut result = Bindings::none(vars.clone());
                for j in (0..=self.i).rev() {
                    let age = t_i.age_of(h.time(j));
                    if !interval.hi().admits(age) {
                        break; // older anchors only get older
                    }
                    if age < interval.lo() {
                        continue; // too recent to anchor, but keep scanning
                    }
                    let mut anchors = eval_at(h, j, g).project(&vars);
                    for k in (j + 1)..=self.i {
                        if anchors.is_empty() {
                            break;
                        }
                        anchors = eval_at_with(h, k, f, &anchors).project(&vars);
                    }
                    result.union_in_place(&anchors);
                }
                result
            }
            other => panic!("extension query for non-generator node `{other}`"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtic_relation::{tuple, Schema, Sort};
    use rtic_temporal::parser::parse_constraint;

    fn catalog() -> Arc<Catalog> {
        Arc::new(
            Catalog::new()
                .with("p", Schema::of(&[("x", Sort::Str)]))
                .unwrap()
                .with("q", Schema::of(&[("x", Sort::Str)]))
                .unwrap(),
        )
    }

    fn checker(src: &str) -> NaiveChecker {
        NaiveChecker::new(parse_constraint(src).unwrap(), catalog()).unwrap()
    }

    #[test]
    fn once_window_semantics() {
        let mut c = checker("deny d: p(x) && once[2,3] q(x)");
        c.step(TimePoint(0), &Update::new().with_insert("q", tuple!["a"]))
            .unwrap();
        c.step(
            TimePoint(1),
            &Update::new()
                .with_insert("p", tuple!["a"])
                .with_delete("q", tuple!["a"]),
        )
        .unwrap();
        // age of q-witness = 1: not yet in [2,3].
        assert!(
            c.step(TimePoint(1).0.into(), &Update::new()).is_err(),
            "monotonic"
        );
        let r = c.step(TimePoint(2), &Update::new()).unwrap();
        assert_eq!(r.violation_count(), 1, "age 2 hits the window");
        let r = c.step(TimePoint(3), &Update::new()).unwrap();
        assert_eq!(r.violation_count(), 1, "age 3 still in window");
        let r = c.step(TimePoint(4), &Update::new()).unwrap();
        assert!(r.ok(), "age 4 out of window");
    }

    #[test]
    fn since_requires_continuity() {
        let mut c = checker("deny d: p(x) since q(x)");
        // t0: q(a) anchors.
        let r = c
            .step(TimePoint(0), &Update::new().with_insert("q", tuple!["a"]))
            .unwrap();
        assert_eq!(
            r.violation_count(),
            1,
            "anchor state itself satisfies since"
        );
        // t1: p(a) holds → still satisfied.
        let r = c
            .step(
                TimePoint(1),
                &Update::new()
                    .with_insert("p", tuple!["a"])
                    .with_delete("q", tuple!["a"]),
            )
            .unwrap();
        assert_eq!(r.violation_count(), 1);
        // t2: p(a) gone → broken.
        let r = c
            .step(TimePoint(2), &Update::new().with_delete("p", tuple!["a"]))
            .unwrap();
        assert!(r.ok());
    }

    #[test]
    fn hist_filter_semantics() {
        // Tuples persist across states, so breaking hist requires deleting q.
        let mut c = checker("deny d: p(x) && hist[0,1] q(x)");
        c.step(TimePoint(0), &Update::new().with_insert("q", tuple!["a"]))
            .unwrap();
        let r = c
            .step(
                TimePoint(1),
                &Update::new()
                    .with_insert("p", tuple!["a"])
                    .with_delete("q", tuple!["a"]),
            )
            .unwrap();
        assert!(r.ok(), "q(a) failed at t=1 (age 0 in window)");
        let mut c2 = checker("deny d: p(x) && hist[0,1] q(x)");
        c2.step(TimePoint(0), &Update::new().with_insert("q", tuple!["a"]))
            .unwrap();
        let r = c2
            .step(TimePoint(1), &Update::new().with_insert("p", tuple!["a"]))
            .unwrap();
        assert_eq!(r.violation_count(), 1, "q covered both states in window");
    }

    #[test]
    fn space_grows_with_history() {
        let mut c = checker("deny d: p(x) && q(x)");
        c.step(TimePoint(0), &Update::new().with_insert("p", tuple!["a"]))
            .unwrap();
        let s1 = c.space();
        for t in 1..10u64 {
            c.step(TimePoint(t), &Update::new()).unwrap();
        }
        let s2 = c.space();
        assert!(s2.stored_states > s1.stored_states);
        assert!(s2.stored_tuples > s1.stored_tuples);
    }
}
