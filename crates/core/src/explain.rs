//! Human-readable compilation reports ("explain plans") for constraints.
//!
//! Shows what the checker will actually do: the normalized denial body,
//! the violation-witness schema, the lookback horizon, the auxiliary
//! strategy chosen per temporal subformula (with the paper's per-key space
//! bound), and the conjunct evaluation order with generator/filter roles.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use rtic_temporal::analysis::per_key_timestamp_bound;
use rtic_temporal::ast::{Formula, Var};
use rtic_temporal::time::UpperBound;
use rtic_temporal::typecheck::typecheck;
use rtic_temporal::{safety, Horizon};

use crate::compile::CompiledConstraint;
use crate::encode::StampPolicy;
use crate::plan::PlanProfile;

fn vars_of(f: &Formula) -> String {
    let vs: Vec<String> = f.free_vars().iter().map(|v| v.to_string()).collect();
    if vs.is_empty() {
        "∅".into()
    } else {
        vs.join(", ")
    }
}

/// Renders the explain plan for a compiled constraint.
pub fn explain(compiled: &CompiledConstraint) -> String {
    let mut out = String::new();
    let c = &compiled.constraint;
    let _ = writeln!(out, "constraint : {c}");
    let _ = writeln!(out, "denial body: {}", compiled.body);
    // Witness schema.
    let sorts =
        typecheck(&compiled.body, &compiled.catalog).expect("compiled constraints typecheck");
    let witness: Vec<String> = compiled
        .body
        .free_vars()
        .iter()
        .map(|v| match sorts.get(v) {
            Some(s) => format!("{v}: {s}"),
            None => v.to_string(),
        })
        .collect();
    let _ = writeln!(
        out,
        "witnesses  : ({})",
        if witness.is_empty() {
            "closed — yes/no".into()
        } else {
            witness.join(", ")
        }
    );
    let _ = writeln!(
        out,
        "horizon    : {}",
        match compiled.horizon {
            Horizon::Finite(d) => format!("{d} ticks (windowed checking is exact)"),
            Horizon::Unbounded => "unbounded (aux space bounded by the active domain)".into(),
        }
    );
    // Temporal nodes.
    if compiled.nodes.is_empty() {
        let _ = writeln!(out, "aux state  : none (first-order constraint)");
    } else {
        let _ = writeln!(
            out,
            "aux state  : {} temporal node(s)",
            compiled.nodes.len()
        );
        for (i, node) in compiled.nodes.iter().enumerate() {
            let strategy = match node {
                Formula::Prev(iv, _) => {
                    format!("previous-state rows, age gate {iv}")
                }
                Formula::Once(iv, _) | Formula::Since(iv, _, _) => {
                    let what = if matches!(node, Formula::Once(..)) {
                        "witness"
                    } else {
                        "anchor"
                    };
                    match StampPolicy::for_interval(iv) {
                        StampPolicy::Latest => {
                            format!("latest {what} timestamp per key (a = 0 specialization)")
                        }
                        StampPolicy::Earliest => {
                            format!("earliest {what} timestamp per key (b = ∞ specialization)")
                        }
                        StampPolicy::Many => {
                            let bound = match iv.hi() {
                                UpperBound::Finite(b) => format!("≤ {} stamps/key", b.0 + 1),
                                UpperBound::Infinite => unreachable!("Many needs finite b"),
                            };
                            format!("pruned {what}-timestamp deque per key ({bound})")
                        }
                    }
                }
                Formula::Hist(iv, _) if iv.is_bounded() => {
                    "satisfaction runs per key + shared recent-state times (filter)".into()
                }
                Formula::Hist(..) => "unbroken-prefix end per key (filter)".into(),
                other => unreachable!("non-temporal node `{other}`"),
            };
            let _ = writeln!(out, "  [{i}] {node}");
            let _ = writeln!(out, "      keys({}); {strategy}", vars_of(node));
        }
        let _ = writeln!(
            out,
            "per-key stamp bound: {}",
            match per_key_timestamp_bound(&compiled.body) {
                UpperBound::Finite(d) => format!("{d}"),
                UpperBound::Infinite => "unbounded".into(),
            }
        );
    }
    // Conjunct plan of the top-level body — read straight off the compiled
    // evaluation plan, so the report shows exactly the order the planned
    // executor runs (no separate re-derivation that could drift).
    let conjuncts = safety::flatten_and(&compiled.body);
    if conjuncts.len() > 1 {
        let order = compiled
            .plans
            .body
            .root_conjunct_order()
            .expect("a multi-conjunct body compiles to a conjunction plan");
        let _ = writeln!(out, "evaluation plan:");
        let mut bound: BTreeSet<Var> = BTreeSet::new();
        for (step, &i) in order.iter().enumerate() {
            let f = conjuncts[i];
            let fresh: Vec<String> = f
                .free_vars()
                .difference(&bound)
                .map(|v| v.to_string())
                .collect();
            let role = if fresh.is_empty() {
                "filter".to_string()
            } else {
                format!("generates {}", fresh.join(", "))
            };
            let _ = writeln!(out, "  {}. {f}  — {role}", step + 1);
            bound.extend(f.free_vars());
        }
    }
    out
}

/// Pretty nanoseconds: picks the unit a human would.
fn fmt_ns(ns: u64) -> String {
    let v = ns as f64;
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", v / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", v / 1e6)
    } else {
        format!("{:.2}s", v / 1e9)
    }
}

/// Renders a [`PlanProfile`] as an EXPLAIN-ANALYZE-style table: one row
/// per plan node in pre-order, indented by tree depth, with inclusive wall
/// time, share of total plan time, cardinalities, and memo-cache touches.
pub fn render_profile(profile: &PlanProfile) -> String {
    let total = profile.total_time_ns();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "plan profile ({} node(s), total {}):",
        profile.nodes.len(),
        fmt_ns(total)
    );
    let _ = writeln!(
        out,
        "  {:>9}  {:>6}  {:>8}  {:>9}  {:>9}  {:>9}  node",
        "time", "%", "calls", "rows in", "rows out", "cache h/m"
    );
    for row in &profile.nodes {
        let c = row.counts;
        let pct = if total == 0 {
            0.0
        } else {
            100.0 * c.time_ns as f64 / total as f64
        };
        let cache = if c.cache_hits + c.cache_misses == 0 {
            "-".to_string()
        } else {
            format!("{}/{}", c.cache_hits, c.cache_misses)
        };
        let memo = if row.desc.memoized { "*" } else { "" };
        let _ = writeln!(
            out,
            "  {:>9}  {:>5.1}%  {:>8}  {:>9}  {:>9}  {:>9}  {:indent$}{label}{memo}  [{path}]",
            fmt_ns(c.time_ns),
            pct,
            c.calls,
            c.rows_in,
            c.rows_out,
            cache,
            "",
            indent = row.desc.depth * 2,
            label = row.desc.label,
            path = row.desc.path,
        );
    }
    out.push_str("  (* = memoized database-pure subtree; times include children)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtic_relation::{Catalog, Schema, Sort};
    use rtic_temporal::parser::parse_constraint;
    use std::sync::Arc;

    fn compiled(src: &str) -> CompiledConstraint {
        let catalog = Arc::new(
            Catalog::new()
                .with(
                    "reserved",
                    Schema::of(&[("p", Sort::Str), ("f", Sort::Int)]),
                )
                .unwrap()
                .with(
                    "confirmed",
                    Schema::of(&[("p", Sort::Str), ("f", Sort::Int)]),
                )
                .unwrap(),
        );
        CompiledConstraint::compile(parse_constraint(src).unwrap(), catalog).unwrap()
    }

    #[test]
    fn explains_the_motivating_constraint() {
        let text = explain(&compiled(
            "deny unconfirmed: reserved(p, f) && once[2,*] reserved(p, f) \
             && !once confirmed(p, f)",
        ));
        assert!(text.contains("unbounded"), "horizon note: {text}");
        assert!(text.contains("b = ∞ specialization"), "{text}");
        assert!(text.contains("a = 0 specialization"), "{text}");
        assert!(text.contains("evaluation plan"), "{text}");
        assert!(text.contains("generates"), "{text}");
        assert!(text.contains("filter"), "{text}");
        assert!(text.contains("p: str"), "witness sorts: {text}");
    }

    #[test]
    fn explains_general_window_and_hist() {
        let text = explain(&compiled(
            "deny d: reserved(p, f) && once[2,9] confirmed(p, f) \
             && hist[0,4] reserved(p, f)",
        ));
        assert!(text.contains("≤ 10 stamps/key"), "{text}");
        assert!(text.contains("satisfaction runs"), "{text}");
        assert!(text.contains("9 ticks"), "finite horizon: {text}");
    }

    #[test]
    fn first_order_constraint_has_no_aux() {
        let text = explain(&compiled("deny d: reserved(p, f) && confirmed(p, f)"));
        assert!(text.contains("none (first-order constraint)"), "{text}");
    }

    #[test]
    fn renders_a_profile_table() {
        use crate::{Checker, IncrementalChecker};
        use rtic_relation::{tuple, Update};
        use rtic_temporal::TimePoint;

        let c = compiled(
            "deny unconfirmed: reserved(p, f) && once[2,*] reserved(p, f) \
             && !once confirmed(p, f)",
        );
        let mut checker = IncrementalChecker::from_compiled(
            c,
            crate::EncodingOptions {
                profile_plans: true,
                ..Default::default()
            },
        );
        for t in 1..=5u64 {
            checker
                .step(
                    TimePoint(t),
                    &Update::new().with_insert("reserved", tuple!["ann", 7]),
                )
                .unwrap();
        }
        let profile = checker.plan_profile().expect("profiling enabled");
        let text = render_profile(&profile);
        assert!(text.contains("plan profile"), "{text}");
        assert!(text.contains("atom(reserved)"), "{text}");
        assert!(text.contains("probe("), "probe node rendered: {text}");
        assert!(text.contains("[body"), "node paths rendered: {text}");
        assert!(text.contains('%'), "{text}");
    }

    #[test]
    fn closed_constraint_notes_yes_no() {
        let text = explain(&compiled(
            "deny d: exists p, f . reserved(p, f) && confirmed(p, f)",
        ));
        assert!(text.contains("closed — yes/no"), "{text}");
    }
}
