//! The windowed baseline checker: store only the formula's lookback
//! horizon worth of states, evaluate naively over the window.
//!
//! The intermediate point between the naive checker and the bounded
//! encoding: space is bounded (by the horizon, when finite) but each step
//! still re-evaluates the temporal formula over every stored state. When
//! the constraint contains an unbounded interval the horizon is infinite
//! and this checker degenerates into the naive one (documented fallback —
//! no pruning is sound then).

use std::sync::Arc;

use rtic_history::{History, HistoryError};
use rtic_relation::{Catalog, Update};
use rtic_temporal::{Constraint, Horizon, TimePoint};

use crate::binding::Scratch;
use crate::checker::Checker;
use crate::compile::CompiledConstraint;
use crate::error::CompileError;
use crate::naive::eval_at_planned;
use crate::report::{SpaceStats, StepReport};

/// Horizon-window checker.
#[derive(Clone, Debug)]
pub struct WindowedChecker {
    compiled: CompiledConstraint,
    history: History,
    scratch: Scratch,
}

impl WindowedChecker {
    /// Compiles and initializes a checker for `constraint`.
    pub fn new(
        constraint: Constraint,
        catalog: Arc<Catalog>,
    ) -> Result<WindowedChecker, CompileError> {
        let compiled = CompiledConstraint::compile(constraint, Arc::clone(&catalog))?;
        Ok(Self::from_compiled(compiled))
    }

    /// Builds a checker from an already-compiled constraint.
    pub fn from_compiled(compiled: CompiledConstraint) -> WindowedChecker {
        let history = History::new(Arc::clone(&compiled.catalog));
        WindowedChecker {
            compiled,
            history,
            scratch: Scratch::new(),
        }
    }

    /// The lookback horizon governing pruning.
    pub fn horizon(&self) -> Horizon {
        self.compiled.horizon
    }

    /// The currently retained window.
    pub fn window(&self) -> &History {
        &self.history
    }
}

impl Checker for WindowedChecker {
    fn constraint(&self) -> &Constraint {
        &self.compiled.constraint
    }

    fn step(&mut self, time: TimePoint, update: &Update) -> Result<StepReport, HistoryError> {
        self.history.append(time, update)?;
        if let Horizon::Finite(h) = self.compiled.horizon {
            // Keep states with age ≤ h: drop those with t < time − h. The
            // naive evaluation over the pruned window is exact because no
            // temporal operator can look past the horizon (and a pruned
            // `prev`-predecessor would have been age-gated out anyway).
            if let Some(cutoff) = time.minus(h) {
                self.history.prune_before(cutoff);
            }
        }
        let i = self.history.len() - 1;
        let violations = eval_at_planned(&self.history, i, &self.compiled, &mut self.scratch);
        Ok(StepReport {
            constraint: self.compiled.constraint.name,
            time,
            violations,
        })
    }

    fn space(&self) -> SpaceStats {
        SpaceStats {
            aux_keys: 0,
            aux_timestamps: self.history.len(),
            stored_states: self.history.len(),
            stored_tuples: self.history.total_stored_tuples(),
        }
    }

    fn name(&self) -> &'static str {
        "windowed"
    }

    fn plan_stats(&self) -> Option<crate::plan::RuntimePlanStats> {
        // Only the body plan runs over the window; the temporal recursion
        // stays interpreted.
        Some(crate::plan::RuntimePlanStats {
            plan: self.compiled.plans.body.stats(),
            scratch_high_water: self.scratch.high_water(),
        })
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtic_relation::{tuple, Schema, Sort};
    use rtic_temporal::parser::parse_constraint;
    use rtic_temporal::Duration;

    fn catalog() -> Arc<Catalog> {
        Arc::new(
            Catalog::new()
                .with("p", Schema::of(&[("x", Sort::Str)]))
                .unwrap()
                .with("q", Schema::of(&[("x", Sort::Str)]))
                .unwrap(),
        )
    }

    fn checker(src: &str) -> WindowedChecker {
        WindowedChecker::new(parse_constraint(src).unwrap(), catalog()).unwrap()
    }

    #[test]
    fn window_stays_bounded_for_finite_horizon() {
        let mut c = checker("deny d: p(x) && once[0,3] q(x)");
        assert_eq!(c.horizon(), Horizon::Finite(Duration(3)));
        for t in 0..100u64 {
            c.step(TimePoint(t), &Update::new()).unwrap();
            assert!(
                c.space().stored_states <= 4,
                "window of span 3 keeps ≤ 4 states"
            );
        }
    }

    #[test]
    fn unbounded_horizon_degenerates_to_naive() {
        let mut c = checker("deny d: p(x) && once[2,*] q(x)");
        assert_eq!(c.horizon(), Horizon::Unbounded);
        for t in 0..20u64 {
            c.step(TimePoint(t), &Update::new()).unwrap();
        }
        assert_eq!(c.space().stored_states, 20);
    }

    #[test]
    fn pruning_preserves_answers() {
        // once[0,2] q: a q-witness matters for exactly 2 ticks.
        let mut c = checker("deny d: p(x) && once[0,2] q(x)");
        c.step(TimePoint(0), &Update::new().with_insert("q", tuple!["a"]))
            .unwrap();
        c.step(
            TimePoint(1),
            &Update::new()
                .with_insert("p", tuple!["a"])
                .with_delete("q", tuple!["a"]),
        )
        .unwrap();
        let r = c.step(TimePoint(2), &Update::new()).unwrap();
        assert_eq!(r.violation_count(), 1, "age 2 in window");
        let r = c.step(TimePoint(3), &Update::new()).unwrap();
        assert!(r.ok(), "witness expired with the window");
    }

    #[test]
    fn nested_horizons_add() {
        let c = checker("deny d: p(x) && once[0,2] once[0,3] q(x)");
        assert_eq!(c.horizon(), Horizon::Finite(Duration(5)));
    }
}
