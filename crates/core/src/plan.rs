//! Compiled evaluation plans: plan once, execute many.
//!
//! The interpreting evaluator ([`crate::eval::eval`]) re-derives everything
//! from the formula on every step: it re-runs `flatten_and` +
//! `conjunct_order` on each `And`, re-collects and re-sorts free-variable
//! lists, and re-computes column/projection maps inside every join. None of
//! that depends on the data — [`Bindings`] schemas are canonically sorted,
//! so every position is a function of the formula and the input schema
//! alone. Following the query-compilation tradition (Neumann, VLDB 2011),
//! [`Plan::compile`] lowers a normalized body into a tree of plan nodes at
//! constraint-compile time, precomputing:
//!
//! * the conjunct evaluation order (by calling the *same*
//!   [`safety::conjunct_order`] the interpreter uses, so the planned order
//!   is provably identical);
//! * sorted output-variable lists for every node;
//! * join column-source maps and atom index-column shapes
//!   ([`crate::binding`]'s `JoinShape`/`AtomShape`);
//! * the bound-vs-generating decision for temporal and count nodes
//!   (semijoin-pushdown probe vs. extension join) — static because the
//!   input schema is static.
//!
//! [`Plan::execute`] then mirrors the interpreter arm for arm over the same
//! [`Bindings`] kernels, threading a reusable [`Scratch`] buffer through
//! the shaped join paths. Planned execution is byte-identical to
//! interpretation by construction; the differential oracle and the
//! `plan_props` property test pin it.

use std::collections::BTreeSet;

use rtic_relation::{Database, Symbol, Value};
use rtic_temporal::ast::{CmpOp, Formula, Term, Var};
use rtic_temporal::safety;

use crate::binding::{
    AtomShape, Bindings, JoinShape, ProbePartition, RowDelta, Scratch, VecCacheEntry,
};
use crate::eval::Oracle;

/// Where a comparison operand's value comes from at execution time.
#[derive(Clone, Copy, Debug)]
enum ValueSrc {
    /// A literal from the formula.
    Const(Value),
    /// The input row's column at this position.
    Col(usize),
}

impl ValueSrc {
    fn read(self, row: &rtic_relation::Tuple) -> Value {
        match self {
            ValueSrc::Const(c) => c,
            ValueSrc::Col(i) => row[i],
        }
    }
}

/// One lowered plan node. Every variant stores exactly what its
/// interpreter twin recomputes per call.
#[derive(Clone, Debug)]
enum Kind {
    /// `true`: pass the input through.
    True,
    /// `false`: empty output over the input schema.
    False,
    /// Atom join through a precomputed index shape.
    Atom { relation: Symbol, shape: AtomShape },
    /// Comparison with both sides bound: a filter.
    CmpFilter { op: CmpOp, a: ValueSrc, b: ValueSrc },
    /// Equality with one unbound side: extends each row with `v`.
    CmpExtend { v: Var, src: ValueSrc },
    /// Negation: project to the operand's variables, evaluate, antijoin.
    Not { gvars: Vec<Var>, inner: Box<Plan> },
    /// Flattened conjunction in precomputed evaluation order.
    AndChain { order: Vec<usize>, steps: Vec<Plan> },
    /// Disjunction of two same-schema branches.
    Or { a: Box<Plan>, b: Box<Plan> },
    /// Existential: evaluate, then drop the quantified variables.
    Exists { drop: Vec<Var>, inner: Box<Plan> },
    /// `prev`/`once`/`since` with all node variables already bound:
    /// per-candidate membership probe (semijoin pushdown).
    TemporalProbe { node: Formula, proj: Vec<usize> },
    /// `prev`/`once`/`since` generating fresh variables: join the
    /// oracle's materialized extension through a precomputed shape.
    TemporalJoin { node: Formula, shape: JoinShape },
    /// `hist`: always a per-candidate probe (safety guarantees bound vars).
    HistProbe { node: Formula, proj: Vec<usize> },
    /// Count aggregate whose predicate admits zero: a filter over already
    /// bound outer variables.
    CountFilter {
        body: Box<Plan>,
        outer_pos_ext: Vec<usize>,
        pos_in: Vec<usize>,
        op: CmpOp,
        threshold: i64,
    },
    /// Count aggregate that generates: join the qualifying groups.
    CountJoin {
        body: Box<Plan>,
        outer: Vec<Var>,
        outer_pos_ext: Vec<usize>,
        shape: JoinShape,
        op: CmpOp,
        threshold: i64,
    },
}

/// A compiled evaluation plan for one formula against a fixed input schema.
///
/// Execution requires the input's variable list to equal the schema the
/// plan was compiled for (checkers guarantee this structurally: bodies and
/// node operands run from [`Bindings::unit`], `since` continuations from
/// the node's key schema).
#[derive(Clone, Debug)]
pub struct Plan {
    kind: Kind,
    in_vars: Vec<Var>,
    out_vars: Vec<Var>,
    /// When set, this node is database-pure with a unit input: its result
    /// is a function of the database contents alone, so execution memoizes
    /// it in [`Scratch`] keyed by the database's cache stamp. Assigned by
    /// [`EvalPlans::build`]; plans compiled standalone never memoize.
    cache_slot: Option<usize>,
    /// The relations this subtree reads, recorded when a cache slot is
    /// assigned (empty otherwise). Vectorized execution keys the memo on
    /// these relations' per-relation generations instead of the global
    /// stamp, so updates to unrelated relations keep the entry valid.
    cache_rels: Vec<Symbol>,
    /// Stable pre-order index used to attribute profiler counters to this
    /// node. Assigned by [`EvalPlans::build`]; standalone plans keep
    /// [`UNTRACKED`] and record nothing even when profiling is enabled.
    node_id: usize,
}

/// Node id of plans compiled outside [`EvalPlans::build`]: the profiler
/// skips them rather than guessing an attribution.
const UNTRACKED: usize = usize::MAX;

/// How one [`Plan::execute`] call interacted with the memo cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum CacheTouch {
    /// Node has no cache slot (or the input bypassed the memo).
    Untouched,
    /// Replayed a stored result for the current database stamp.
    Hit,
    /// Computed and stored a fresh result.
    Miss,
}

/// Profiler counters for one plan node, accumulated across every
/// [`Plan::execute`] call while profiling is enabled on the [`Scratch`].
/// Wall time is inclusive (a node's time contains its children's), matching
/// how `EXPLAIN ANALYZE`-style output is conventionally read.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeCounters {
    /// Times this node executed.
    pub calls: u64,
    /// Inclusive wall-clock nanoseconds across all calls.
    pub time_ns: u64,
    /// Total input rows across all calls.
    pub rows_in: u64,
    /// Total output rows across all calls.
    pub rows_out: u64,
    /// Memo-cache replays (database-pure subtree, unchanged stamp).
    pub cache_hits: u64,
    /// Memo-cache fills (stamp changed or first execution).
    pub cache_misses: u64,
    /// Column blocks streamed by vectorized kernels in this subtree
    /// (inclusive, like `time_ns`). Zero under scalar execution.
    pub blocks: u64,
    /// Total rows across those blocks; `block_rows / blocks` is the mean
    /// rows-per-block this node's kernels processed.
    pub block_rows: u64,
}

impl NodeCounters {
    /// Merges another node's counters into this one (times add up).
    pub fn absorb(&mut self, other: NodeCounters) {
        self.calls += other.calls;
        self.time_ns += other.time_ns;
        self.rows_in += other.rows_in;
        self.rows_out += other.rows_out;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.blocks += other.blocks;
        self.block_rows += other.block_rows;
    }

    /// Mean rows-per-block across this node's vectorized kernel calls,
    /// when any block was streamed.
    pub fn rows_per_block(&self) -> Option<f64> {
        if self.blocks == 0 {
            None
        } else {
            #[allow(clippy::cast_precision_loss)]
            Some(self.block_rows as f64 / self.blocks as f64)
        }
    }

    /// Fraction of memo-cache touches that were replays, when the node
    /// touched the cache at all.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let touches = self.cache_hits + self.cache_misses;
        if touches == 0 {
            None
        } else {
            #[allow(clippy::cast_precision_loss)]
            Some(self.cache_hits as f64 / touches as f64)
        }
    }
}

/// Static description of one plan node, produced by [`EvalPlans::describe`]
/// in the same pre-order the profiler numbers nodes in.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeDesc {
    /// Pre-order node id (index into the profiler's counter table).
    pub id: usize,
    /// Tree depth within this node's plan (roots are 0).
    pub depth: usize,
    /// Slash-separated position, e.g. `body/and[1]/not`.
    pub path: String,
    /// Operator label, e.g. `atom(reserved)` or `probe(once confirmed(p, f))`.
    pub label: String,
    /// Whether this subtree is memoized (database-pure, unit input).
    pub memoized: bool,
    /// Semijoin-pushdown probe (temporal/hist membership test per row).
    pub probe: bool,
    /// Materializing join (temporal extension or qualifying count groups).
    pub materialize: bool,
}

/// One plan node's static description zipped with its runtime counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfiledNode {
    /// Where the node sits and what it does.
    pub desc: NodeDesc,
    /// What it cost at runtime.
    pub counts: NodeCounters,
}

/// A per-node execution profile of one constraint's compiled plans, keyed
/// by node path. Rows are in pre-order (parents before children), so a
/// renderer can indent by [`NodeDesc::depth`] directly.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PlanProfile {
    /// All plan nodes with their accumulated counters.
    pub nodes: Vec<ProfiledNode>,
}

impl PlanProfile {
    /// Total inclusive wall time, counted once per plan root (nested node
    /// times are already contained in their root's).
    pub fn total_time_ns(&self) -> u64 {
        self.nodes
            .iter()
            .filter(|n| n.desc.depth == 0)
            .map(|n| n.counts.time_ns)
            .sum()
    }

    /// The `limit` most expensive nodes by inclusive wall time, hottest
    /// first; ties broken by node id so the order is deterministic.
    pub fn hot(&self, limit: usize) -> Vec<&ProfiledNode> {
        let mut rows: Vec<&ProfiledNode> = self.nodes.iter().collect();
        rows.sort_by(|a, b| {
            b.counts
                .time_ns
                .cmp(&a.counts.time_ns)
                .then(a.desc.id.cmp(&b.desc.id))
        });
        rows.truncate(limit);
        rows
    }
}

/// Static statistics of a compiled plan (satellite observability: what
/// planning bought). Scratch high-water marks are runtime numbers reported
/// separately by the checkers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Total plan nodes.
    pub nodes: usize,
    /// Precomputed atom index shapes ([`crate::binding`]'s `AtomShape`).
    pub atom_shapes: usize,
    /// Precomputed natural-join column maps (`JoinShape`).
    pub join_shapes: usize,
    /// Temporal/hist nodes lowered to semijoin-pushdown probes.
    pub probe_nodes: usize,
    /// Database-pure unit-input subtrees marked for memoized execution.
    pub cached_nodes: usize,
}

impl PlanStats {
    /// Accumulates another plan's statistics into this one.
    pub fn absorb(&mut self, other: PlanStats) {
        self.nodes += other.nodes;
        self.atom_shapes += other.atom_shapes;
        self.join_shapes += other.join_shapes;
        self.probe_nodes += other.probe_nodes;
        self.cached_nodes += other.cached_nodes;
    }
}

/// What a running checker can report about its planned execution: the
/// static plan shape it compiled plus the scratch high-water mark its join
/// kernels have accumulated so far (see [`crate::Checker::plan_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RuntimePlanStats {
    /// Static statistics of the plans this checker executes.
    pub plan: PlanStats,
    /// Widest probe key, in columns, the reusable scratch buffers have
    /// held across all planned joins so far.
    pub scratch_high_water: usize,
}

impl RuntimePlanStats {
    /// Accumulates another checker's runtime plan statistics: plan shapes
    /// add up, the scratch high-water mark takes the maximum.
    pub fn absorb(&mut self, other: RuntimePlanStats) {
        self.plan.absorb(other.plan);
        self.scratch_high_water = self.scratch_high_water.max(other.scratch_high_water);
    }
}

fn sorted_free_vars(f: &Formula) -> Vec<Var> {
    f.free_vars().into_iter().collect()
}

fn insert_sorted(vars: &[Var], v: Var) -> Vec<Var> {
    let mut out = vars.to_vec();
    let at = out.partition_point(|&u| u < v);
    out.insert(at, v);
    out
}

impl Plan {
    /// Lowers `f` against a sorted input variable list.
    ///
    /// # Panics
    /// Panics on un-normalized (`Implies`/`Forall`) or unsafe formulas —
    /// the same contract as the interpreter; callers compile only bodies
    /// that already passed [`safety::check`].
    pub fn compile(f: &Formula, input_vars: &[Var]) -> Plan {
        let src = |t: &Term| match t {
            Term::Const(c) => ValueSrc::Const(*c),
            Term::Var(v) => ValueSrc::Col(
                input_vars
                    .binary_search(v)
                    .unwrap_or_else(|_| panic!("unbound variable `{v}` (safety analysis bug)")),
            ),
        };
        let bound = |t: &Term| match t {
            Term::Const(_) => true,
            Term::Var(v) => input_vars.binary_search(v).is_ok(),
        };
        let (kind, out_vars) = match f {
            Formula::True => (Kind::True, input_vars.to_vec()),
            Formula::False => (Kind::False, input_vars.to_vec()),
            Formula::Atom { relation, terms } => {
                let shape = AtomShape::compute(input_vars, terms);
                let out = shape.vars.clone();
                (
                    Kind::Atom {
                        relation: *relation,
                        shape,
                    },
                    out,
                )
            }
            Formula::Cmp(op, a, b) => match (bound(a), bound(b)) {
                (true, true) => (
                    Kind::CmpFilter {
                        op: *op,
                        a: src(a),
                        b: src(b),
                    },
                    input_vars.to_vec(),
                ),
                (true, false) => {
                    let Term::Var(v) = b else {
                        unreachable!("constants are always bound")
                    };
                    assert_eq!(
                        *op,
                        CmpOp::Eq,
                        "non-equality with unbound side (safety bug)"
                    );
                    (
                        Kind::CmpExtend { v: *v, src: src(a) },
                        insert_sorted(input_vars, *v),
                    )
                }
                (false, true) => {
                    let Term::Var(v) = a else {
                        unreachable!("constants are always bound")
                    };
                    assert_eq!(
                        *op,
                        CmpOp::Eq,
                        "non-equality with unbound side (safety bug)"
                    );
                    (
                        Kind::CmpExtend { v: *v, src: src(b) },
                        insert_sorted(input_vars, *v),
                    )
                }
                (false, false) => panic!("comparison with two unbound sides (safety bug)"),
            },
            Formula::Not(g) => {
                let gvars = sorted_free_vars(g);
                let inner = Box::new(Plan::compile(g, &gvars));
                (Kind::Not { gvars, inner }, input_vars.to_vec())
            }
            Formula::And(..) => {
                let conjuncts = safety::flatten_and(f);
                let pre: BTreeSet<Var> = input_vars.iter().copied().collect();
                let order = safety::conjunct_order(&conjuncts, &pre)
                    .expect("unsafe conjunction (safety-analysis bug)");
                let mut acc = input_vars.to_vec();
                let steps: Vec<Plan> = order
                    .iter()
                    .map(|&i| {
                        let step = Plan::compile(conjuncts[i], &acc);
                        acc = step.out_vars.clone();
                        step
                    })
                    .collect();
                (Kind::AndChain { order, steps }, acc)
            }
            Formula::Or(a, b) => {
                let pa = Plan::compile(a, input_vars);
                let pb = Plan::compile(b, input_vars);
                assert_eq!(
                    pa.out_vars, pb.out_vars,
                    "disjunction branches bind different variables (safety bug)"
                );
                let out = pa.out_vars.clone();
                (
                    Kind::Or {
                        a: Box::new(pa),
                        b: Box::new(pb),
                    },
                    out,
                )
            }
            Formula::Exists(vs, g) => {
                let inner = Box::new(Plan::compile(g, input_vars));
                let mut drop = vs.clone();
                drop.sort_unstable();
                let out: Vec<Var> = inner
                    .out_vars
                    .iter()
                    .copied()
                    .filter(|v| drop.binary_search(v).is_err())
                    .collect();
                (
                    Kind::Exists {
                        drop: vs.clone(),
                        inner,
                    },
                    out,
                )
            }
            Formula::Prev(..) | Formula::Once(..) | Formula::Since(..) => {
                let node_vars = sorted_free_vars(f);
                let positions: Option<Vec<usize>> = node_vars
                    .iter()
                    .map(|v| input_vars.binary_search(v).ok())
                    .collect();
                match positions {
                    // All node variables already bound: probe per candidate
                    // (semijoin pushdown) instead of materializing.
                    Some(proj) => (
                        Kind::TemporalProbe {
                            node: f.clone(),
                            proj,
                        },
                        input_vars.to_vec(),
                    ),
                    // The node generates fresh variables: join the extension.
                    None => {
                        let shape = JoinShape::compute(input_vars, &node_vars);
                        let out = shape.vars.clone();
                        (
                            Kind::TemporalJoin {
                                node: f.clone(),
                                shape,
                            },
                            out,
                        )
                    }
                }
            }
            Formula::Hist(..) => {
                let node_vars = sorted_free_vars(f);
                let proj: Vec<usize> = node_vars
                    .iter()
                    .map(|v| {
                        input_vars
                            .binary_search(v)
                            .unwrap_or_else(|_| panic!("unguarded hist (safety bug)"))
                    })
                    .collect();
                (
                    Kind::HistProbe {
                        node: f.clone(),
                        proj,
                    },
                    input_vars.to_vec(),
                )
            }
            Formula::CountCmp {
                vars: _, // counted vars are implicit in the grouping
                body,
                op,
                threshold,
            } => {
                let bplan = Box::new(Plan::compile(body, &[]));
                let outer = sorted_free_vars(f);
                let outer_pos_ext: Vec<usize> = outer
                    .iter()
                    .map(|v| {
                        bplan
                            .out_vars
                            .binary_search(v)
                            .unwrap_or_else(|_| panic!("outer vars are free in the body"))
                    })
                    .collect();
                let zero_ok = op.eval(Value::Int(0), Value::Int(*threshold));
                if zero_ok {
                    // Filter: unseen groups (count 0) qualify, so the outer
                    // variables must already be bound (safety guarantees it).
                    let pos_in: Vec<usize> = outer
                        .iter()
                        .map(|v| {
                            input_vars
                                .binary_search(v)
                                .unwrap_or_else(|_| panic!("unguarded count (safety bug)"))
                        })
                        .collect();
                    (
                        Kind::CountFilter {
                            body: bplan,
                            outer_pos_ext,
                            pos_in,
                            op: *op,
                            threshold: *threshold,
                        },
                        input_vars.to_vec(),
                    )
                } else {
                    // Generator: only groups present in the extension qualify.
                    let shape = JoinShape::compute(input_vars, &outer);
                    let out = shape.vars.clone();
                    (
                        Kind::CountJoin {
                            body: bplan,
                            outer,
                            outer_pos_ext,
                            shape,
                            op: *op,
                            threshold: *threshold,
                        },
                        out,
                    )
                }
            }
            Formula::Implies(..) | Formula::Forall(..) => {
                panic!("un-normalized formula reached the planner (compile bug)")
            }
        };
        Plan {
            kind,
            in_vars: input_vars.to_vec(),
            out_vars,
            cache_slot: None,
            cache_rels: Vec::new(),
            node_id: UNTRACKED,
        }
    }

    /// Collects every relation this subtree's atoms read.
    fn collect_relations(&self, out: &mut BTreeSet<Symbol>) {
        match &self.kind {
            Kind::True | Kind::False | Kind::CmpFilter { .. } | Kind::CmpExtend { .. } => {}
            Kind::Atom { relation, .. } => {
                out.insert(*relation);
            }
            Kind::Not { inner, .. } | Kind::Exists { inner, .. } => inner.collect_relations(out),
            Kind::AndChain { steps, .. } => {
                for step in steps {
                    step.collect_relations(out);
                }
            }
            Kind::Or { a, b } => {
                a.collect_relations(out);
                b.collect_relations(out);
            }
            Kind::TemporalProbe { .. } | Kind::TemporalJoin { .. } | Kind::HistProbe { .. } => {}
            Kind::CountFilter { body, .. } | Kind::CountJoin { body, .. } => {
                body.collect_relations(out);
            }
        }
    }

    /// Whether this subtree reads only the database — no temporal or hist
    /// node, so no [`Oracle`] call — making its unit-input result a pure
    /// function of the database contents.
    fn is_db_pure(&self) -> bool {
        match &self.kind {
            Kind::True | Kind::False | Kind::CmpFilter { .. } | Kind::CmpExtend { .. } => true,
            Kind::Atom { .. } => true,
            Kind::Not { inner, .. } | Kind::Exists { inner, .. } => inner.is_db_pure(),
            Kind::AndChain { steps, .. } => steps.iter().all(Plan::is_db_pure),
            Kind::Or { a, b } => a.is_db_pure() && b.is_db_pure(),
            Kind::TemporalProbe { .. } | Kind::TemporalJoin { .. } | Kind::HistProbe { .. } => {
                false
            }
            Kind::CountFilter { body, .. } | Kind::CountJoin { body, .. } => body.is_db_pure(),
        }
    }

    /// Marks the largest database-pure, unit-input subtrees for memoized
    /// execution, handing out slots from `next`. Trivial nodes (pass-through,
    /// comparisons) are not worth a memo entry and stay uncached.
    pub(crate) fn assign_cache_slots(&mut self, next: &mut usize) {
        let trivial = matches!(
            self.kind,
            Kind::True | Kind::False | Kind::CmpFilter { .. } | Kind::CmpExtend { .. }
        );
        if self.in_vars.is_empty() && !trivial && self.is_db_pure() {
            self.cache_slot = Some(*next);
            *next += 1;
            let mut rels = BTreeSet::new();
            self.collect_relations(&mut rels);
            self.cache_rels = rels.into_iter().collect();
            return;
        }
        match &mut self.kind {
            Kind::True
            | Kind::False
            | Kind::CmpFilter { .. }
            | Kind::CmpExtend { .. }
            | Kind::Atom { .. }
            | Kind::TemporalProbe { .. }
            | Kind::TemporalJoin { .. }
            | Kind::HistProbe { .. } => {}
            Kind::Not { inner, .. } | Kind::Exists { inner, .. } => {
                inner.assign_cache_slots(next);
            }
            Kind::AndChain { steps, .. } => {
                for step in steps {
                    step.assign_cache_slots(next);
                }
            }
            Kind::Or { a, b } => {
                a.assign_cache_slots(next);
                b.assign_cache_slots(next);
            }
            Kind::CountFilter { body, .. } | Kind::CountJoin { body, .. } => {
                // The aggregate body always runs from the unit input.
                body.assign_cache_slots(next);
            }
        }
    }

    /// Numbers this subtree in pre-order, handing out ids from `next` — the
    /// same walk [`Plan::describe_into`] takes, so counter slot `i` always
    /// belongs to description row `i`.
    pub(crate) fn assign_node_ids(&mut self, next: &mut usize) {
        self.node_id = *next;
        *next += 1;
        match &mut self.kind {
            Kind::True
            | Kind::False
            | Kind::CmpFilter { .. }
            | Kind::CmpExtend { .. }
            | Kind::Atom { .. }
            | Kind::TemporalProbe { .. }
            | Kind::TemporalJoin { .. }
            | Kind::HistProbe { .. } => {}
            Kind::Not { inner, .. } | Kind::Exists { inner, .. } => inner.assign_node_ids(next),
            Kind::AndChain { steps, .. } => {
                for step in steps {
                    step.assign_node_ids(next);
                }
            }
            Kind::Or { a, b } => {
                a.assign_node_ids(next);
                b.assign_node_ids(next);
            }
            Kind::CountFilter { body, .. } | Kind::CountJoin { body, .. } => {
                body.assign_node_ids(next);
            }
        }
    }

    /// Operator label for profile rendering.
    fn label(&self) -> String {
        match &self.kind {
            Kind::True => "true".to_string(),
            Kind::False => "false".to_string(),
            Kind::Atom { relation, .. } => format!("atom({relation})"),
            Kind::CmpFilter { op, .. } => format!("filter({op})"),
            Kind::CmpExtend { v, .. } => format!("extend({v})"),
            Kind::Not { .. } => "antijoin(!)".to_string(),
            Kind::AndChain { .. } => "and-chain".to_string(),
            Kind::Or { .. } => "union(||)".to_string(),
            Kind::Exists { .. } => "project(exists)".to_string(),
            Kind::TemporalProbe { node, .. } => format!("probe({node})"),
            Kind::TemporalJoin { node, .. } => format!("join({node})"),
            Kind::HistProbe { node, .. } => format!("probe({node})"),
            Kind::CountFilter { op, threshold, .. } => format!("count-filter({op} {threshold})"),
            Kind::CountJoin { op, threshold, .. } => format!("count-join({op} {threshold})"),
        }
    }

    /// Appends this subtree's node descriptions in the profiler's pre-order.
    fn describe_into(&self, path: &str, depth: usize, out: &mut Vec<NodeDesc>) {
        out.push(NodeDesc {
            id: self.node_id,
            depth,
            path: path.to_string(),
            label: self.label(),
            memoized: self.cache_slot.is_some(),
            probe: matches!(
                self.kind,
                Kind::TemporalProbe { .. } | Kind::HistProbe { .. }
            ),
            materialize: matches!(
                self.kind,
                Kind::TemporalJoin { .. } | Kind::CountJoin { .. }
            ),
        });
        match &self.kind {
            Kind::True
            | Kind::False
            | Kind::CmpFilter { .. }
            | Kind::CmpExtend { .. }
            | Kind::Atom { .. }
            | Kind::TemporalProbe { .. }
            | Kind::TemporalJoin { .. }
            | Kind::HistProbe { .. } => {}
            Kind::Not { inner, .. } => {
                inner.describe_into(&format!("{path}/not"), depth + 1, out);
            }
            Kind::Exists { inner, .. } => {
                inner.describe_into(&format!("{path}/exists"), depth + 1, out);
            }
            Kind::AndChain { steps, .. } => {
                for (i, step) in steps.iter().enumerate() {
                    step.describe_into(&format!("{path}/and[{i}]"), depth + 1, out);
                }
            }
            Kind::Or { a, b } => {
                a.describe_into(&format!("{path}/or[0]"), depth + 1, out);
                b.describe_into(&format!("{path}/or[1]"), depth + 1, out);
            }
            Kind::CountFilter { body, .. } | Kind::CountJoin { body, .. } => {
                body.describe_into(&format!("{path}/count"), depth + 1, out);
            }
        }
    }

    /// The output schema (sorted) — what execution's result will carry.
    pub fn out_vars(&self) -> &[Var] {
        &self.out_vars
    }

    /// The memo slot this node was assigned by [`EvalPlans::build`], if
    /// any. The incremental engine uses it to look up delta-refresh records
    /// the vectorized cache left behind for window maintenance.
    pub(crate) fn cache_slot(&self) -> Option<usize> {
        self.cache_slot
    }

    /// The execution order of the root conjunction, as indices into
    /// [`safety::flatten_and`] of the planned formula; `None` when the root
    /// is not a conjunction. This is what `explain` renders, so the
    /// displayed plan provably matches what executes.
    pub fn root_conjunct_order(&self) -> Option<&[usize]> {
        match &self.kind {
            Kind::AndChain { order, .. } => Some(order),
            _ => None,
        }
    }

    /// Executes against one database state, answering temporal subformulas
    /// through `oracle` — mirrors [`crate::eval::eval`] arm for arm.
    pub fn execute<O: Oracle + ?Sized>(
        &self,
        db: &Database,
        oracle: &O,
        input: &Bindings,
        scratch: &mut Scratch,
    ) -> Bindings {
        debug_assert_eq!(
            input.vars(),
            self.in_vars.as_slice(),
            "input schema differs from the planned schema"
        );
        // Profiled path: one branch on an `Option` discriminant when
        // disabled; timers and counter writes only exist behind it.
        if scratch.profiling() {
            let start = std::time::Instant::now();
            let rows_in = input.len() as u64;
            let (b0, br0) = scratch.block_counts();
            let mut cache = CacheTouch::Untouched;
            let result = self.execute_memo(db, oracle, input, scratch, &mut cache);
            let time_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let (b1, br1) = scratch.block_counts();
            scratch.profile_record(
                self.node_id,
                time_ns,
                rows_in,
                result.len() as u64,
                cache,
                b1 - b0,
                br1 - br0,
            );
            return result;
        }
        let mut cache = CacheTouch::Untouched;
        self.execute_memo(db, oracle, input, scratch, &mut cache)
    }

    /// Memoized path: a database-pure subtree fed the one-row unit input
    /// is a function of the database contents alone, so quiescent steps
    /// replay the stored result instead of re-scanning relations. An
    /// empty same-schema input (a projection that produced no candidate
    /// rows) bypasses the memo — its result is legitimately different.
    fn execute_memo<O: Oracle + ?Sized>(
        &self,
        db: &Database,
        oracle: &O,
        input: &Bindings,
        scratch: &mut Scratch,
        cache: &mut CacheTouch,
    ) -> Bindings {
        if let Some(slot) = self.cache_slot {
            if input.len() == 1 {
                if scratch.vectorize() {
                    return self.execute_memo_vec(slot, db, oracle, input, scratch, cache);
                }
                let stamp = db.cache_stamp();
                if let Some(hit) = scratch.cached_ext(slot, stamp) {
                    *cache = CacheTouch::Hit;
                    return hit.clone();
                }
                let result = self.execute_kind(db, oracle, input, scratch);
                scratch.store_ext(slot, stamp, result.clone());
                *cache = CacheTouch::Miss;
                return result;
            }
        }
        self.execute_kind(db, oracle, input, scratch)
    }

    /// Vectorized memo path: keyed by the subtree's per-relation
    /// generations rather than the global cache stamp, so updates touching
    /// unrelated relations replay the stored result (preserving its `Arc`
    /// identity — the incremental engine's window-maintenance skip depends
    /// on that). A single-atom subtree whose relation moved exactly one
    /// generation is *delta-refreshed*: the recorded tuple events replay
    /// onto the cached rows in O(|delta|) instead of a full rescan, and the
    /// added rows are left behind for the engine's window maintenance.
    fn execute_memo_vec<O: Oracle + ?Sized>(
        &self,
        slot: usize,
        db: &Database,
        oracle: &O,
        input: &Bindings,
        scratch: &mut Scratch,
        cache: &mut CacheTouch,
    ) -> Bindings {
        let db_id = db.instance_id();
        if let Some(e) = scratch.cached_ext_vec(slot) {
            if e.db_id == db_id && e.gens.iter().all(|&(r, g)| db.rel_gen(r) == g) {
                *cache = CacheTouch::Hit;
                return e.rows.clone();
            }
        }
        if let Kind::Atom { relation, shape } = &self.kind {
            if shape.bound_positions.is_empty() {
                if let Some(e) = scratch.take_ext_vec(slot) {
                    if e.db_id == db_id && e.gens.len() == 1 && e.gens[0].0 == *relation {
                        if let Some(delta) = db.rel_delta(*relation) {
                            if delta.generation == e.gens[0].1 + 1
                                && delta.generation == db.rel_gen(*relation)
                            {
                                let (rows, added, removed) =
                                    e.rows.apply_atom_delta(shape, &delta.events);
                                scratch.note_block(rows.len() as u64);
                                if self.node_id != UNTRACKED {
                                    scratch.note_delta(
                                        self.node_id,
                                        RowDelta {
                                            from: e.rows.clone(),
                                            to: rows.clone(),
                                            added: added.clone(),
                                            removed,
                                        },
                                    );
                                }
                                scratch.note_refresh(slot, e.rows, added);
                                scratch.store_ext_vec(
                                    slot,
                                    VecCacheEntry {
                                        db_id,
                                        gens: vec![(*relation, delta.generation)],
                                        rows: rows.clone(),
                                    },
                                );
                                *cache = CacheTouch::Miss;
                                return rows;
                            }
                        }
                    }
                }
            }
        }
        let result = self.execute_kind(db, oracle, input, scratch);
        scratch.store_ext_vec(
            slot,
            VecCacheEntry {
                db_id,
                gens: self
                    .cache_rels
                    .iter()
                    .map(|&r| (r, db.rel_gen(r)))
                    .collect(),
                rows: result.clone(),
            },
        );
        *cache = CacheTouch::Miss;
        result
    }

    /// Probe against a **monotone** window (see [`Oracle::probe_monotone`])
    /// with a cached passed/failed partition of the input.
    ///
    /// Monotonicity means a row that passed once passes at every later
    /// state, so only the failed rows and the input's net delta need fresh
    /// probes — O(|failed| + |delta|) per step instead of O(|input|). The
    /// input delta comes from the producer's [`RowDelta`] record (an atom
    /// delta-refresh or an upstream incremental probe); when no record
    /// matches, the partition is rebuilt with a full scan, so correctness
    /// never depends on the delta chain being intact. The node publishes
    /// its own output transition for the next probe downstream.
    fn execute_probe_monotone<O: Oracle + ?Sized>(
        &self,
        node: &Formula,
        proj: &[usize],
        oracle: &O,
        input: &Bindings,
        scratch: &mut Scratch,
    ) -> Bindings {
        let advanced = scratch
            .take_probe_partition(self.node_id)
            .and_then(|cache| {
                if cache.input.same_rows(input) {
                    return Some((cache, Vec::new(), Vec::new()));
                }
                let delta = scratch
                    .delta_into(input)
                    .filter(|d| d.from.same_rows(&cache.input))
                    .map(|d| (d.added.clone(), d.removed.clone()));
                delta.map(|(added, removed)| (cache, added, removed))
            });
        let (part, out_delta) = match advanced {
            Some((cache, added, removed)) => {
                let processed = (cache.failed.len() + added.len() + removed.len()) as u64;
                scratch.note_block(processed);
                let old_passed = cache.passed.clone();
                let (part, passed_added, passed_removed) =
                    cache.advance(input, &added, &removed, |row| {
                        oracle.contains(node, &row.project(proj))
                    });
                (part, Some((old_passed, passed_added, passed_removed)))
            }
            None => {
                scratch.note_block(input.len() as u64);
                let part =
                    ProbePartition::full(input, |row| oracle.contains(node, &row.project(proj)));
                (part, None)
            }
        };
        if let Some((from, added, removed)) = out_delta {
            scratch.note_delta(
                self.node_id,
                RowDelta {
                    from,
                    to: part.passed.clone(),
                    added,
                    removed,
                },
            );
        }
        let result = part.passed.clone();
        scratch.store_probe_partition(self.node_id, part);
        result
    }

    fn execute_kind<O: Oracle + ?Sized>(
        &self,
        db: &Database,
        oracle: &O,
        input: &Bindings,
        scratch: &mut Scratch,
    ) -> Bindings {
        match &self.kind {
            Kind::True => input.clone(),
            Kind::False => Bindings::none(self.in_vars.iter().copied()),
            Kind::Atom { relation, shape } => {
                let rel = db
                    .relation(*relation)
                    .expect("atom over undeclared relation (typecheck bug)");
                input.join_atom_shaped(rel, shape, scratch)
            }
            Kind::CmpFilter { op, a, b } => input.filter(|row| op.eval(a.read(row), b.read(row))),
            Kind::CmpExtend { v, src } => input.extend_with(*v, |row| src.read(row)),
            Kind::Not { gvars, inner } => {
                let candidates = input.project(gvars);
                let sat = inner.execute(db, oracle, &candidates, scratch);
                // When the projection was the identity and the inner probe
                // just partitioned exactly this input, the antijoin *is*
                // the partition's failed side — reuse it instead of
                // re-hashing every input row.
                if scratch.vectorize() && candidates.same_rows(input) {
                    if let Some(p) = scratch.probe_partition(inner.node_id) {
                        if p.input.same_rows(&candidates) && p.passed.same_rows(&sat) {
                            return p.failed.clone();
                        }
                    }
                }
                input.antijoin(&sat)
            }
            Kind::AndChain { steps, .. } => {
                let mut acc = input.clone();
                for step in steps {
                    acc = step.execute(db, oracle, &acc, scratch);
                }
                acc
            }
            Kind::Or { a, b } => {
                let ra = a.execute(db, oracle, input, scratch);
                let rb = b.execute(db, oracle, input, scratch);
                ra.union(&rb)
            }
            Kind::Exists { drop, inner } => {
                let r = inner.execute(db, oracle, input, scratch);
                r.project_away_vec(drop, scratch)
            }
            Kind::TemporalProbe { node, proj } => {
                if scratch.vectorize() && self.node_id != UNTRACKED && oracle.probe_monotone(node) {
                    self.execute_probe_monotone(node, proj, oracle, input, scratch)
                } else {
                    input.filter(|row| oracle.contains(node, &row.project(proj)))
                }
            }
            Kind::TemporalJoin { node, shape } => {
                input.natural_join_shaped(&oracle.extension(node), shape, scratch)
            }
            Kind::HistProbe { node, proj } => {
                input.filter(|row| oracle.hist_holds(node, &row.project(proj)))
            }
            Kind::CountFilter {
                body,
                outer_pos_ext,
                pos_in,
                op,
                threshold,
            } => {
                let counts = count_groups(body, outer_pos_ext, db, oracle, scratch);
                let threshold = Value::Int(*threshold);
                input.filter(|row| {
                    let n = counts.get(&row.project(pos_in)).copied().unwrap_or(0);
                    op.eval(Value::Int(n), threshold)
                })
            }
            Kind::CountJoin {
                body,
                outer,
                outer_pos_ext,
                shape,
                op,
                threshold,
            } => {
                let counts = count_groups(body, outer_pos_ext, db, oracle, scratch);
                let threshold = Value::Int(*threshold);
                let rows = counts
                    .into_iter()
                    .filter(|&(_, n)| op.eval(Value::Int(n), threshold))
                    .map(|(k, _)| k);
                let groups = Bindings::from_rows(outer.clone(), rows);
                input.natural_join_shaped(&groups, shape, scratch)
            }
        }
    }

    /// Static plan statistics, aggregated over the whole tree.
    pub fn stats(&self) -> PlanStats {
        let mut s = PlanStats {
            nodes: 1,
            cached_nodes: usize::from(self.cache_slot.is_some()),
            ..PlanStats::default()
        };
        match &self.kind {
            Kind::True | Kind::False | Kind::CmpFilter { .. } | Kind::CmpExtend { .. } => {}
            Kind::Atom { .. } => s.atom_shapes += 1,
            Kind::Not { inner, .. } | Kind::Exists { inner, .. } => s.absorb(inner.stats()),
            Kind::AndChain { steps, .. } => {
                for step in steps {
                    s.absorb(step.stats());
                }
            }
            Kind::Or { a, b } => {
                s.absorb(a.stats());
                s.absorb(b.stats());
            }
            Kind::TemporalProbe { .. } | Kind::HistProbe { .. } => s.probe_nodes += 1,
            Kind::TemporalJoin { .. } => s.join_shapes += 1,
            Kind::CountFilter { body, .. } => s.absorb(body.stats()),
            Kind::CountJoin { body, .. } => {
                s.join_shapes += 1;
                s.absorb(body.stats());
            }
        }
        s
    }
}

/// Evaluates the aggregate body from the unit input and groups its rows by
/// the outer-variable positions (shared by both count arms).
fn count_groups<O: Oracle + ?Sized>(
    body: &Plan,
    outer_pos_ext: &[usize],
    db: &Database,
    oracle: &O,
    scratch: &mut Scratch,
) -> std::collections::HashMap<rtic_relation::Tuple, i64> {
    let ext = body.execute(db, oracle, &Bindings::unit(), scratch);
    let mut counts = std::collections::HashMap::new();
    for row in ext.rows() {
        *counts.entry(row.project(outer_pos_ext)).or_insert(0) += 1;
    }
    counts
}

/// All plans a compiled constraint needs: the denial body from the unit
/// input, plus per-temporal-node operand plans matching each checker's
/// evaluation sites (operands from unit; `since` continuations from the
/// node's key schema).
#[derive(Clone, Debug)]
pub struct EvalPlans {
    /// The denial body, planned from the empty (unit) input schema.
    pub body: Plan,
    /// Operand plans parallel to `CompiledConstraint::nodes`.
    pub node_ops: Vec<NodePlans>,
}

/// Operand plans for one temporal node.
#[derive(Clone, Debug)]
pub enum NodePlans {
    /// `prev`/`once`/`hist`: the single operand, planned from unit.
    Operand(Plan),
    /// `since`: the anchor operand `g` from unit, and the continuation
    /// operand `f` planned against the node's sorted key variables.
    Since {
        /// Continuation operand over the node's key schema (boxed to keep
        /// the variant the same size class as `Operand`).
        f: Box<Plan>,
        /// Anchor operand from unit.
        g: Plan,
    },
}

impl EvalPlans {
    /// Builds the body plan plus one operand plan per temporal node, then
    /// marks every database-pure unit-input subtree for memoized execution
    /// (slots are unique across the whole constraint, matching the one
    /// [`Scratch`] each checker threads through its plans).
    pub fn build(body: &Formula, nodes: &[Formula]) -> EvalPlans {
        let mut node_ops: Vec<NodePlans> = nodes
            .iter()
            .map(|node| match node {
                Formula::Prev(_, g) | Formula::Once(_, g) | Formula::Hist(_, g) => {
                    NodePlans::Operand(Plan::compile(g, &[]))
                }
                Formula::Since(_, f, g) => {
                    let keys = sorted_free_vars(node);
                    NodePlans::Since {
                        f: Box::new(Plan::compile(f, &keys)),
                        g: Plan::compile(g, &[]),
                    }
                }
                other => unreachable!("non-temporal node collected: {other}"),
            })
            .collect();
        let mut body = Plan::compile(body, &[]);
        let mut next_slot = 0;
        body.assign_cache_slots(&mut next_slot);
        for op in &mut node_ops {
            match op {
                NodePlans::Operand(g) => g.assign_cache_slots(&mut next_slot),
                NodePlans::Since { f, g } => {
                    f.assign_cache_slots(&mut next_slot);
                    g.assign_cache_slots(&mut next_slot);
                }
            }
        }
        let mut next_id = 0;
        body.assign_node_ids(&mut next_id);
        for op in &mut node_ops {
            match op {
                NodePlans::Operand(g) => g.assign_node_ids(&mut next_id),
                NodePlans::Since { f, g } => {
                    f.assign_node_ids(&mut next_id);
                    g.assign_node_ids(&mut next_id);
                }
            }
        }
        EvalPlans { body, node_ops }
    }

    /// Total profilable nodes across the body and all operand plans.
    pub fn node_count(&self) -> usize {
        self.stats().nodes
    }

    /// Static descriptions of every node in profiler id order: row `i`
    /// describes the node whose counters live in slot `i`.
    pub fn describe(&self) -> Vec<NodeDesc> {
        let mut out = Vec::new();
        self.body.describe_into("body", 0, &mut out);
        for (i, op) in self.node_ops.iter().enumerate() {
            match op {
                NodePlans::Operand(g) => g.describe_into(&format!("node[{i}]"), 0, &mut out),
                NodePlans::Since { f, g } => {
                    f.describe_into(&format!("node[{i}]/f"), 0, &mut out);
                    g.describe_into(&format!("node[{i}]/g"), 0, &mut out);
                }
            }
        }
        out
    }

    /// Zips node descriptions with a profiler's counter table into a
    /// renderable [`PlanProfile`]. Nodes the run never executed keep
    /// zeroed counters.
    pub fn profile(&self, counters: &[NodeCounters]) -> PlanProfile {
        let nodes = self
            .describe()
            .into_iter()
            .map(|desc| ProfiledNode {
                counts: counters.get(desc.id).copied().unwrap_or_default(),
                desc,
            })
            .collect();
        PlanProfile { nodes }
    }

    /// Aggregated static statistics across the body and all operand plans.
    pub fn stats(&self) -> PlanStats {
        let mut s = self.body.stats();
        for op in &self.node_ops {
            match op {
                NodePlans::Operand(g) => s.absorb(g.stats()),
                NodePlans::Since { f, g } => {
                    s.absorb(f.stats());
                    s.absorb(g.stats());
                }
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval, NoTemporal};
    use rtic_relation::{tuple, Catalog, Schema, Sort, Update};
    use rtic_temporal::normalize::normalize;
    use std::sync::Arc;

    fn db() -> Database {
        let catalog = Arc::new(
            Catalog::new()
                .with(
                    "emp",
                    Schema::of(&[("name", Sort::Str), ("dept", Sort::Str)]),
                )
                .unwrap()
                .with(
                    "mgr",
                    Schema::of(&[("dept", Sort::Str), ("boss", Sort::Str)]),
                )
                .unwrap()
                .with(
                    "sal",
                    Schema::of(&[("name", Sort::Str), ("amt", Sort::Int)]),
                )
                .unwrap(),
        );
        let mut db = Database::new(catalog);
        db.apply(
            &Update::new()
                .with_insert("emp", tuple!["ann", "eng"])
                .with_insert("emp", tuple!["bob", "eng"])
                .with_insert("emp", tuple!["cal", "ops"])
                .with_insert("mgr", tuple!["eng", "dot"])
                .with_insert("sal", tuple!["ann", 90])
                .with_insert("sal", tuple!["bob", 70])
                .with_insert("sal", tuple!["cal", 80]),
        )
        .unwrap();
        db
    }

    fn parse(src: &str) -> Formula {
        let f = normalize(&rtic_temporal::parser::parse_formula(src).unwrap());
        rtic_temporal::safety::check(&f).unwrap();
        f
    }

    #[test]
    fn planned_matches_interpreted_on_first_order_formulas() {
        let db = db();
        for src in [
            "emp(n, d)",
            "emp(n, d) && mgr(d, b)",
            "emp(n, d) && !mgr(d, b) && b = \"dot\"",
            "exists n . emp(n, d)",
            "sal(n, a) && a >= 80",
            "sal(n, a) && m = a && m > 85",
            "emp(n, \"ops\") || sal(n, 90) && true",
            "emp(n, d) && false",
            "emp(n, d) && !(exists m . sal(m, 1000))",
            "emp(n, d) && count m . (emp(m, d)) >= 2",
            "emp(n, d) && count m . (exists a . emp(m, d) && sal(m, a) && a >= 100) = 0",
            "emp(n, d) && mgr(d, b) && n = b",
        ] {
            let f = parse(src);
            let plan = Plan::compile(&f, &[]);
            let mut scratch = Scratch::new();
            let planned = plan.execute(&db, &NoTemporal, &Bindings::unit(), &mut scratch);
            let interpreted = eval(&f, &db, &NoTemporal, &Bindings::unit());
            assert_eq!(planned, interpreted, "{src}");
            assert_eq!(
                planned.to_string(),
                interpreted.to_string(),
                "display must be byte-identical: {src}"
            );
            assert_eq!(plan.out_vars(), interpreted.vars(), "{src}");
        }
    }

    #[test]
    fn root_conjunct_order_matches_the_interpreter() {
        let f = parse("emp(n, d) && mgr(d, b) && b = \"dot\"");
        let plan = Plan::compile(&f, &[]);
        let conjuncts = safety::flatten_and(&f);
        let expected = safety::conjunct_order(&conjuncts, &BTreeSet::new()).unwrap();
        assert_eq!(plan.root_conjunct_order(), Some(expected.as_slice()));
        let atom = parse("emp(n, d)");
        assert_eq!(Plan::compile(&atom, &[]).root_conjunct_order(), None);
    }

    #[test]
    fn profiling_counts_without_changing_results() {
        let db = db();
        let f = parse("emp(n, d) && mgr(d, b)");
        let plans = EvalPlans::build(&f, &[]);
        let mut plain = Scratch::new();
        let baseline = plans
            .body
            .execute(&db, &NoTemporal, &Bindings::unit(), &mut plain);
        let mut prof = Scratch::new();
        prof.enable_profiling();
        let profiled = plans
            .body
            .execute(&db, &NoTemporal, &Bindings::unit(), &mut prof);
        assert_eq!(baseline, profiled);
        assert_eq!(
            baseline.to_string(),
            profiled.to_string(),
            "profiling must not change rendering"
        );
        // First execution fills the memo (the body is database-pure), the
        // second replays it; the profiler sees both.
        let again = plans
            .body
            .execute(&db, &NoTemporal, &Bindings::unit(), &mut prof);
        assert_eq!(again, baseline);
        let profile = plans.profile(prof.profile_counters().expect("profiling enabled"));
        assert_eq!(profile.nodes.len(), plans.node_count());
        let root = &profile.nodes[0];
        assert_eq!(root.desc.path, "body");
        assert!(root.desc.memoized, "pure unit-input body is memoized");
        assert_eq!(root.counts.calls, 2);
        assert_eq!(root.counts.cache_misses, 1);
        assert_eq!(root.counts.cache_hits, 1);
        assert_eq!(root.counts.rows_out, 2 * baseline.len() as u64);
        assert_eq!(root.counts.cache_hit_rate(), Some(0.5));
        assert!(profile.total_time_ns() >= root.counts.time_ns);
        assert_eq!(profile.hot(1)[0].desc.id, root.desc.id);
    }

    #[test]
    fn describe_ids_are_preorder_indices() {
        let f = parse("emp(n, d) && !mgr(d, b) && b = \"dot\" || emp(n, d) && false");
        let plans = EvalPlans::build(&f, &[]);
        let descs = plans.describe();
        assert_eq!(descs.len(), plans.node_count());
        for (i, d) in descs.iter().enumerate() {
            assert_eq!(d.id, i, "pre-order id mismatch at {}", d.path);
        }
        assert_eq!(descs[0].depth, 0);
        assert!(descs.iter().any(|d| d.label.starts_with("atom(")));
    }

    #[test]
    fn standalone_plans_record_nothing() {
        let db = db();
        let f = parse("emp(n, d)");
        // Compiled outside EvalPlans::build: no node ids assigned.
        let plan = Plan::compile(&f, &[]);
        let mut scratch = Scratch::new();
        scratch.enable_profiling();
        let _ = plan.execute(&db, &NoTemporal, &Bindings::unit(), &mut scratch);
        assert_eq!(
            scratch.profile_counters().map(<[_]>::len),
            Some(0),
            "untracked nodes must not allocate counter slots"
        );
    }

    #[test]
    fn stats_count_shapes() {
        let f = parse("emp(n, d) && mgr(d, b)");
        let s = Plan::compile(&f, &[]).stats();
        assert_eq!(s.atom_shapes, 2);
        assert!(s.nodes >= 3, "chain plus two atoms");
        assert_eq!(s.join_shapes, 0);
        assert_eq!(s.probe_nodes, 0);
    }
}
