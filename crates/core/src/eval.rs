//! The shared first-order evaluator.
//!
//! Evaluates a normalized, safe-range formula against one database state,
//! delegating every *temporal* subformula to an [`Oracle`]. The naive
//! checker's oracle recurses over the stored history; the incremental
//! checker's oracle reads the bounded auxiliary state. Sharing this
//! evaluator is what makes the equivalence property tests meaningful: the
//! two checkers differ *only* in how they answer temporal questions.

use rtic_relation::{Database, Tuple};
use rtic_temporal::ast::{CmpOp, Formula, Term, Var};
use rtic_temporal::safety;

use crate::binding::Bindings;

/// Answers temporal subformula queries at the evaluator's current state.
pub trait Oracle {
    /// The finite extension (rows over the node's sorted free variables) of
    /// a `prev`/`once`/`since` node at the current state.
    fn extension(&self, node: &Formula) -> Bindings;

    /// Whether a `hist` node holds for `key` (the candidate's values for
    /// the node's sorted free variables) at the current state.
    fn hist_holds(&self, node: &Formula, key: &Tuple) -> bool;

    /// Membership probe into a generator node's extension — the *semijoin
    /// pushdown* path: when a node's variables are already bound by earlier
    /// conjuncts, the evaluator asks per candidate instead of materializing
    /// the whole extension, keeping step time independent of how many keys
    /// the auxiliary state has accumulated (crucial for unbounded
    /// intervals, whose aux relations grow with the active domain).
    ///
    /// The default materializes; implementations should override with an
    /// O(1)/O(log) probe.
    fn contains(&self, node: &Formula, key: &Tuple) -> bool {
        self.extension(node).contains(key)
    }

    /// Whether `node`'s [`Oracle::contains`] verdicts are **monotone**
    /// across states: once a key is in the extension it stays in it at
    /// every later state. Holds for `once[l,∞)` windows (stamps are never
    /// pruned and the admissible window only widens as time advances), and
    /// lets vectorized probe nodes cache their passed rows instead of
    /// re-probing the whole input each step. The conservative default is
    /// `false` — correctness never depends on answering `true`.
    fn probe_monotone(&self, _node: &Formula) -> bool {
        false
    }
}

/// Evaluates `f` at `db`, extending `input` (candidate assignments for the
/// already-bound variables) with `f`'s remaining free variables.
///
/// Requires `f` normalized and safe under `input.vars()` (checked at
/// constraint-compile time); violations of that contract panic, they are
/// compiler bugs rather than user errors.
pub fn eval<O: Oracle + ?Sized>(
    f: &Formula,
    db: &Database,
    oracle: &O,
    input: &Bindings,
) -> Bindings {
    match f {
        Formula::True => input.clone(),
        Formula::False => Bindings::none(input.vars().iter().copied()),
        Formula::Atom { relation, terms } => {
            let rel = db
                .relation(*relation)
                .expect("atom over undeclared relation (typecheck bug)");
            input.join_atom(rel, terms)
        }
        Formula::Cmp(op, a, b) => eval_cmp(*op, a, b, input),
        Formula::Not(g) => {
            let gvars: Vec<Var> = g.free_vars().into_iter().collect();
            let candidates = input.project(&gvars);
            let sat = eval(g, db, oracle, &candidates);
            input.antijoin(&sat)
        }
        Formula::And(..) => {
            let conjuncts = safety::flatten_and(f);
            let pre = input.vars().iter().copied().collect();
            let order = safety::conjunct_order(&conjuncts, &pre)
                .expect("unsafe conjunction (safety-analysis bug)");
            let mut acc = input.clone();
            for i in order {
                acc = eval(conjuncts[i], db, oracle, &acc);
            }
            acc
        }
        Formula::Or(a, b) => {
            let ra = eval(a, db, oracle, input);
            let rb = eval(b, db, oracle, input);
            ra.union(&rb)
        }
        Formula::Exists(vs, g) => {
            // Compilation renames quantified variables apart, so `vs` never
            // collides with `input`'s variables.
            let inner = eval(g, db, oracle, input);
            inner.project_away(vs)
        }
        Formula::Prev(..) | Formula::Once(..) | Formula::Since(..) => {
            let node_vars: Vec<Var> = f.free_vars().into_iter().collect();
            let positions: Option<Vec<usize>> =
                node_vars.iter().map(|v| input.position(*v)).collect();
            match positions {
                // All node variables already bound: probe per candidate
                // (semijoin pushdown) instead of materializing.
                Some(pos) => input.filter(|row| oracle.contains(f, &row.project(&pos))),
                // The node generates fresh variables: join the extension.
                None => input.natural_join(&oracle.extension(f)),
            }
        }
        Formula::Hist(..) => {
            let node_vars: Vec<Var> = f.free_vars().into_iter().collect();
            let pos: Vec<usize> = node_vars
                .iter()
                .map(|v| input.position(*v).expect("unguarded hist (safety bug)"))
                .collect();
            input.filter(|row| oracle.hist_holds(f, &row.project(&pos)))
        }
        Formula::CountCmp {
            vars,
            body,
            op,
            threshold,
        } => {
            // Group the body's current extension by the aggregate's free
            // (outer) variables; each group's row count is the number of
            // distinct counted-variable assignments (rows are sets).
            let ext = eval(body, db, oracle, &Bindings::unit());
            let outer: Vec<Var> = f.free_vars().into_iter().collect();
            let outer_pos: Vec<usize> = outer
                .iter()
                .map(|v| ext.position(*v).expect("outer vars are free in the body"))
                .collect();
            let mut counts: std::collections::HashMap<Tuple, i64> =
                std::collections::HashMap::new();
            for row in ext.rows() {
                *counts.entry(row.project(&outer_pos)).or_insert(0) += 1;
            }
            let threshold = rtic_relation::Value::Int(*threshold);
            let sat = |n: i64| op.eval(rtic_relation::Value::Int(n), threshold);
            let _ = vars; // counted vars are implicit in the grouping
            if sat(0) {
                // Filter: unseen groups (count 0) qualify, so the outer
                // variables must already be bound (safety guarantees it).
                let pos: Vec<usize> = outer
                    .iter()
                    .map(|v| input.position(*v).expect("unguarded count (safety bug)"))
                    .collect();
                input.filter(|row| sat(counts.get(&row.project(&pos)).copied().unwrap_or(0)))
            } else {
                // Generator: only groups present in the extension qualify.
                let rows = counts.into_iter().filter(|&(_, n)| sat(n)).map(|(k, _)| k);
                input.natural_join(&Bindings::from_rows(outer, rows))
            }
        }
        Formula::Implies(..) | Formula::Forall(..) => {
            panic!("un-normalized formula reached the evaluator (compile bug)")
        }
    }
}

fn eval_cmp(op: CmpOp, a: &Term, b: &Term, input: &Bindings) -> Bindings {
    let bound = |t: &Term| match t {
        Term::Const(_) => true,
        Term::Var(v) => input.position(*v).is_some(),
    };
    match (bound(a), bound(b)) {
        (true, true) => {
            input.filter(|row| op.eval(input.term_value(row, a), input.term_value(row, b)))
        }
        (true, false) => {
            let v = a_or_b_var(b);
            assert_eq!(op, CmpOp::Eq, "non-equality with unbound side (safety bug)");
            input.extend_with(v, |row| input.term_value(row, a))
        }
        (false, true) => {
            let v = a_or_b_var(a);
            assert_eq!(op, CmpOp::Eq, "non-equality with unbound side (safety bug)");
            input.extend_with(v, |row| input.term_value(row, b))
        }
        (false, false) => panic!("comparison with two unbound sides (safety bug)"),
    }
}

fn a_or_b_var(t: &Term) -> Var {
    match t {
        Term::Var(v) => *v,
        Term::Const(_) => unreachable!("constants are always bound"),
    }
}

/// An oracle for formulas with no temporal operators (errors on any
/// temporal query). Used for plain first-order evaluation and in tests.
pub struct NoTemporal;

impl Oracle for NoTemporal {
    fn extension(&self, node: &Formula) -> Bindings {
        panic!("temporal subformula `{node}` under the non-temporal oracle")
    }

    fn hist_holds(&self, node: &Formula, _key: &Tuple) -> bool {
        panic!("temporal subformula `{node}` under the non-temporal oracle")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtic_relation::{tuple, Catalog, Schema, Sort, Update};

    use rtic_temporal::normalize::normalize;
    use std::sync::Arc;

    fn db() -> Database {
        let catalog = Arc::new(
            Catalog::new()
                .with(
                    "emp",
                    Schema::of(&[("name", Sort::Str), ("dept", Sort::Str)]),
                )
                .unwrap()
                .with(
                    "mgr",
                    Schema::of(&[("dept", Sort::Str), ("boss", Sort::Str)]),
                )
                .unwrap()
                .with(
                    "sal",
                    Schema::of(&[("name", Sort::Str), ("amt", Sort::Int)]),
                )
                .unwrap(),
        );
        let mut db = Database::new(catalog);
        db.apply(
            &Update::new()
                .with_insert("emp", tuple!["ann", "eng"])
                .with_insert("emp", tuple!["bob", "eng"])
                .with_insert("emp", tuple!["cal", "ops"])
                .with_insert("mgr", tuple!["eng", "dot"])
                .with_insert("sal", tuple!["ann", 90])
                .with_insert("sal", tuple!["bob", 70])
                .with_insert("sal", tuple!["cal", 80]),
        )
        .unwrap();
        db
    }

    fn run(src: &str) -> Bindings {
        let f = normalize(&rtic_temporal::parser::parse_formula(src).unwrap());
        rtic_temporal::safety::check(&f).unwrap();
        eval(&f, &db(), &NoTemporal, &Bindings::unit())
    }

    #[test]
    fn atom_enumerates() {
        let r = run("emp(n, d)");
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn join_through_shared_var() {
        let r = run("emp(n, d) && mgr(d, b)");
        assert_eq!(r.len(), 2, "only eng has a manager");
    }

    #[test]
    fn negation_filters() {
        let r = run("emp(n, d) && !mgr(d, b) && b = \"dot\"");
        // !mgr(d, "dot"-bound b): ops has no manager.
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn exists_projects() {
        let r = run("exists n . emp(n, d)");
        assert_eq!(r.vars().len(), 1);
        assert_eq!(r.len(), 2, "two departments");
    }

    #[test]
    fn comparison_as_filter_and_generator() {
        let r = run("sal(n, a) && a >= 80");
        assert_eq!(r.len(), 2);
        let r = run("sal(n, a) && m = a && m > 85");
        assert_eq!(r.len(), 1, "m generated by equality then filtered");
    }

    #[test]
    fn disjunction_unions() {
        let r = run("emp(n, \"ops\") || sal(n, 90) && true");
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn false_and_true_behave() {
        assert!(run("emp(n, d) && false").is_empty());
        assert_eq!(run("emp(n, d) && true").len(), 3);
    }

    #[test]
    fn closed_negation() {
        // No employee earns 1000.
        let r = run("emp(n, d) && !(exists m . sal(m, 1000))");
        assert_eq!(r.len(), 3);
        let r = run("emp(n, d) && !(exists m . sal(m, 90))");
        assert!(r.is_empty());
    }

    #[test]
    fn count_aggregate_generates_and_filters() {
        // Employees in departments with at least 2 members.
        let r = run("emp(n, d) && count m . (emp(m, d)) >= 2");
        assert_eq!(r.len(), 2, "ann and bob share eng");
        // Departments where nobody earns ≥ 100 (count = 0 qualifies → filter).
        let r = run("emp(n, d) && count m . (exists a . emp(m, d) && sal(m, a) && a >= 100) = 0");
        assert_eq!(r.len(), 3, "no one earns 100 anywhere");
        let r = run("emp(n, d) && count m . (exists a . emp(m, d) && sal(m, a) && a >= 80) = 0");
        assert_eq!(r.len(), 0, "every department has someone at 80+");
        // Closed count.
        let r = run("emp(n, d) && count m, e . (emp(m, e)) = 3");
        assert_eq!(r.len(), 3);
        let r = run("emp(n, d) && count m, e . (emp(m, e)) > 3");
        assert!(r.is_empty());
    }

    #[test]
    fn nullary_atoms_gate_like_booleans() {
        // A 0-ary relation acts as a boolean flag: empty = false.
        let catalog = Arc::new(
            Catalog::new()
                .with("alarm", Schema::empty())
                .unwrap()
                .with("p", Schema::of(&[("x", Sort::Str)]))
                .unwrap(),
        );
        let mut db = Database::new(catalog);
        db.apply(&Update::new().with_insert("p", tuple!["a"]))
            .unwrap();
        let f = normalize(&rtic_temporal::parser::parse_formula("p(x) && alarm()").unwrap());
        rtic_temporal::safety::check(&f).unwrap();
        let off = eval(&f, &db, &NoTemporal, &Bindings::unit());
        assert!(off.is_empty(), "alarm unset gates everything out");
        db.apply(&Update::new().with_insert("alarm", rtic_relation::Tuple::empty()))
            .unwrap();
        let on = eval(&f, &db, &NoTemporal, &Bindings::unit());
        assert_eq!(on.len(), 1);
    }

    #[test]
    fn empty_relation_atom_yields_empty() {
        let r = run("emp(n, d) && mgr(\"never\", b)");
        assert!(r.is_empty());
    }

    #[test]
    fn variable_to_variable_equality() {
        let r = run("emp(n, d) && mgr(d, b) && n = b");
        assert!(r.is_empty());
        let r = run("emp(n, d) && b = n && emp(b, d2)");
        assert_eq!(r.len(), 3);
    }
}
