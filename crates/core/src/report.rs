//! Step reports: what a checker says after each transition.

use std::fmt;

use rtic_relation::Symbol;
use rtic_temporal::TimePoint;

use crate::binding::Bindings;

/// The outcome of checking one transition.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StepReport {
    /// The constraint this report is about.
    pub constraint: Symbol,
    /// The timestamp of the new state.
    pub time: TimePoint,
    /// Assignments (over the denial body's free variables) witnessing a
    /// violation at this state. Empty means the constraint holds here.
    pub violations: Bindings,
}

impl StepReport {
    /// Whether the constraint holds at this state.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Number of violation witnesses.
    pub fn violation_count(&self) -> usize {
        self.violations.len()
    }
}

impl fmt::Display for StepReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ok() {
            write!(f, "{} ok {}", self.time, self.constraint)
        } else {
            write!(
                f,
                "{} VIOLATION {} x{}: {}",
                self.time,
                self.constraint,
                self.violations.len(),
                self.violations
            )
        }
    }
}

/// Space accounting, comparable across checker implementations.
///
/// The paper's claim (reproduced by experiment T1) is that for the bounded
/// encoding `aux_keys`/`aux_timestamps` do not grow with history length,
/// while the naive checker's `stored_states`/`stored_tuples` grow linearly.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SpaceStats {
    /// Keys across all auxiliary relations (bounded encoding only).
    pub aux_keys: usize,
    /// Timestamps/endpoints stored across all auxiliary relations.
    pub aux_timestamps: usize,
    /// Database states retained (1 for the encoding; the whole history for
    /// the naive checker; the horizon window for the windowed checker).
    pub stored_states: usize,
    /// Tuples across all retained states.
    pub stored_tuples: usize,
}

impl SpaceStats {
    /// A single size figure for plotting: everything a checker holds beyond
    /// the current state.
    pub fn retained_units(&self) -> usize {
        self.aux_keys + self.aux_timestamps + self.stored_tuples
    }
}

impl fmt::Display for SpaceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "aux_keys={} aux_ts={} states={} stored_tuples={}",
            self.aux_keys, self.aux_timestamps, self.stored_states, self.stored_tuples
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtic_relation::tuple;
    use rtic_temporal::var;

    #[test]
    fn ok_and_violations() {
        let ok = StepReport {
            constraint: Symbol::intern("c"),
            time: TimePoint(3),
            violations: Bindings::none([var("x")]),
        };
        assert!(ok.ok());
        assert!(ok.to_string().contains("ok"));
        let bad = StepReport {
            constraint: Symbol::intern("c"),
            time: TimePoint(3),
            violations: Bindings::from_rows(vec![var("x")], [tuple!["a"]]),
        };
        assert!(!bad.ok());
        assert_eq!(bad.violation_count(), 1);
        assert!(bad.to_string().contains("VIOLATION"));
    }

    #[test]
    fn retained_units_sums() {
        let s = SpaceStats {
            aux_keys: 2,
            aux_timestamps: 5,
            stored_states: 1,
            stored_tuples: 7,
        };
        assert_eq!(s.retained_units(), 14);
    }
}
