//! Sets of variable assignments ("binding relations").
//!
//! The first-order evaluator works over [`Bindings`]: a set of rows, each
//! assigning a value to every variable of a *canonically sorted* variable
//! list. Keeping columns sorted by variable makes every operation's output
//! schema deterministic and lets disjunction branches and aux-relation
//! extensions union without reordering logic at call sites.

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use rtic_relation::{Relation, Tuple, Value};
use rtic_temporal::ast::{Term, Var};

/// A finite set of assignments over a sorted variable list.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Bindings {
    vars: Vec<Var>,
    rows: BTreeSet<Tuple>,
}

impl Bindings {
    /// The unit: no variables, one (empty) row. Identity for joins;
    /// represents "true".
    pub fn unit() -> Bindings {
        let mut rows = BTreeSet::new();
        rows.insert(Tuple::empty());
        Bindings {
            vars: Vec::new(),
            rows,
        }
    }

    /// No rows over the given variables; represents "false".
    pub fn none(vars: impl IntoIterator<Item = Var>) -> Bindings {
        let mut vars: Vec<Var> = vars.into_iter().collect();
        vars.sort_unstable();
        vars.dedup();
        Bindings {
            vars,
            rows: BTreeSet::new(),
        }
    }

    /// Builds from rows whose columns follow `vars` (any order; columns are
    /// canonicalized).
    ///
    /// # Panics
    /// Panics if `vars` contains duplicates or a row's arity mismatches.
    pub fn from_rows(vars: Vec<Var>, rows: impl IntoIterator<Item = Tuple>) -> Bindings {
        let mut order: Vec<usize> = (0..vars.len()).collect();
        order.sort_unstable_by_key(|&i| vars[i]);
        let sorted_vars: Vec<Var> = order.iter().map(|&i| vars[i]).collect();
        assert!(
            sorted_vars.windows(2).all(|w| w[0] != w[1]),
            "duplicate variable in Bindings::from_rows"
        );
        let rows = rows
            .into_iter()
            .map(|t| {
                assert_eq!(t.arity(), vars.len(), "row arity mismatch");
                t.project(&order)
            })
            .collect();
        Bindings {
            vars: sorted_vars,
            rows,
        }
    }

    /// The sorted variable list.
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterates rows in deterministic order.
    pub fn rows(&self) -> impl Iterator<Item = &Tuple> {
        self.rows.iter()
    }

    /// Membership test for a row in this binding set's column order.
    pub fn contains(&self, row: &Tuple) -> bool {
        self.rows.contains(row)
    }

    /// Position of `v` in the column order.
    pub fn position(&self, v: Var) -> Option<usize> {
        self.vars.binary_search(&v).ok()
    }

    /// The value a row assigns to a term: the constant itself, or the row's
    /// value for the variable.
    ///
    /// # Panics
    /// Panics when the term is an unbound variable — the safety analysis
    /// guarantees evaluators never ask for one.
    pub fn term_value(&self, row: &Tuple, term: &Term) -> Value {
        match term {
            Term::Const(c) => *c,
            Term::Var(v) => {
                let i = self
                    .position(*v)
                    .unwrap_or_else(|| panic!("unbound variable `{v}` (safety analysis bug)"));
                row[i]
            }
        }
    }

    /// Keeps only rows satisfying `pred`.
    pub fn filter(&self, mut pred: impl FnMut(&Tuple) -> bool) -> Bindings {
        Bindings {
            vars: self.vars.clone(),
            rows: self.rows.iter().filter(|r| pred(r)).cloned().collect(),
        }
    }

    /// Union; both sides must have the same variables.
    pub fn union(&self, other: &Bindings) -> Bindings {
        assert_eq!(self.vars, other.vars, "union over different variable sets");
        Bindings {
            vars: self.vars.clone(),
            rows: self.rows.union(&other.rows).cloned().collect(),
        }
    }

    /// In-place union; both sides must have the same variables. Use this
    /// in accumulation loops — repeated [`Bindings::union`] is quadratic.
    pub fn union_in_place(&mut self, other: &Bindings) {
        assert_eq!(self.vars, other.vars, "union over different variable sets");
        self.rows.extend(other.rows.iter().cloned());
    }

    /// Projection onto `keep` (must be a subset of the variables);
    /// deduplicates.
    pub fn project(&self, keep: &[Var]) -> Bindings {
        let mut keep: Vec<Var> = keep.to_vec();
        keep.sort_unstable();
        keep.dedup();
        let positions: Vec<usize> = keep
            .iter()
            .map(|v| self.position(*v).expect("projection variable not present"))
            .collect();
        Bindings {
            vars: keep,
            rows: self.rows.iter().map(|r| r.project(&positions)).collect(),
        }
    }

    /// Drops the variables in `remove` (projection onto the complement).
    pub fn project_away(&self, remove: &[Var]) -> Bindings {
        let keep: Vec<Var> = self
            .vars
            .iter()
            .copied()
            .filter(|v| !remove.contains(v))
            .collect();
        self.project(&keep)
    }

    /// Extends every row with `v = value`. `v` must be new.
    pub fn extend_const(&self, v: Var, value: Value) -> Bindings {
        assert!(
            self.position(v).is_none(),
            "extend_const: variable already bound"
        );
        let mut vars = self.vars.clone();
        let insert_at = vars.partition_point(|&u| u < v);
        vars.insert(insert_at, v);
        let rows = self
            .rows
            .iter()
            .map(|r| {
                let mut vals: Vec<Value> = r.values().to_vec();
                vals.insert(insert_at, value);
                Tuple::new(vals)
            })
            .collect();
        Bindings { vars, rows }
    }

    /// Extends every row with `v` bound to a row-dependent value. `v` must
    /// be new.
    pub fn extend_with(&self, v: Var, mut value: impl FnMut(&Tuple) -> Value) -> Bindings {
        assert!(
            self.position(v).is_none(),
            "extend_with: variable already bound"
        );
        let mut vars = self.vars.clone();
        let insert_at = vars.partition_point(|&u| u < v);
        vars.insert(insert_at, v);
        let rows = self
            .rows
            .iter()
            .map(|r| {
                let mut vals: Vec<Value> = r.values().to_vec();
                vals.insert(insert_at, value(r));
                Tuple::new(vals)
            })
            .collect();
        Bindings { vars, rows }
    }

    /// Natural join on shared variables.
    pub fn natural_join(&self, other: &Bindings) -> Bindings {
        // Each side's positions for the shared variables.
        let mut lpos: Vec<usize> = Vec::new();
        let mut rpos: Vec<usize> = Vec::new();
        for (i, v) in self.vars.iter().enumerate() {
            if let Some(j) = other.position(*v) {
                lpos.push(i);
                rpos.push(j);
            }
        }
        let rnew: Vec<usize> = (0..other.vars.len())
            .filter(|i| !rpos.contains(i))
            .collect();
        // Output variables: ours plus the other's new ones, merged sorted.
        let mut vars = self.vars.clone();
        for &i in &rnew {
            let v = other.vars[i];
            let at = vars.partition_point(|&u| u < v);
            vars.insert(at, v);
        }
        // Column source map for output construction.
        #[derive(Clone, Copy)]
        enum Src {
            Left(usize),
            Right(usize),
        }
        let srcs: Vec<Src> = vars
            .iter()
            .map(|v| match self.position(*v) {
                Some(i) => Src::Left(i),
                // Output vars are ours plus the other side's new ones, so a
                // var absent on the left must come from the right.
                None => Src::Right(
                    other
                        .position(*v)
                        .expect("output variable bound by one side"),
                ),
            })
            .collect();
        let mut table: HashMap<Vec<Value>, Vec<&Tuple>> = HashMap::new();
        for r in &other.rows {
            table
                .entry(rpos.iter().map(|&i| r[i]).collect())
                .or_default()
                .push(r);
        }
        let mut rows = BTreeSet::new();
        for l in &self.rows {
            let key: Vec<Value> = lpos.iter().map(|&i| l[i]).collect();
            if let Some(matches) = table.get(&key) {
                for r in matches {
                    rows.insert(
                        srcs.iter()
                            .map(|s| match *s {
                                Src::Left(i) => l[i],
                                Src::Right(i) => r[i],
                            })
                            .collect::<Tuple>(),
                    );
                }
            }
        }
        Bindings { vars, rows }
    }

    /// Anti-semijoin: rows of `self` whose projection onto `other`'s
    /// variables is **not** in `other`. `other.vars ⊆ self.vars` required.
    pub fn antijoin(&self, other: &Bindings) -> Bindings {
        let pos: Vec<usize> = other
            .vars
            .iter()
            .map(|v| self.position(*v).expect("antijoin variables must be bound"))
            .collect();
        self.filter(|r| !other.rows.contains(&r.project(&pos)))
    }

    /// Semijoin: rows of `self` whose projection onto `other`'s variables
    /// **is** in `other`.
    pub fn semijoin(&self, other: &Bindings) -> Bindings {
        let pos: Vec<usize> = other
            .vars
            .iter()
            .map(|v| self.position(*v).expect("semijoin variables must be bound"))
            .collect();
        self.filter(|r| other.rows.contains(&r.project(&pos)))
    }

    /// Joins with a database relation through an atom's term pattern,
    /// binding the pattern's new variables.
    ///
    /// For every input row and every relation tuple that agrees with the
    /// row on already-bound variables and with the pattern's constants
    /// (and is self-consistent on repeated new variables), the output
    /// contains the row extended with the new variables' values.
    pub fn join_atom(&self, rel: &Relation, terms: &[Term]) -> Bindings {
        // Classify pattern positions.
        let mut const_checks: Vec<(usize, Value)> = Vec::new();
        let mut bound_positions: Vec<(usize, usize)> = Vec::new(); // (atom pos, our col)
        let mut new_vars: Vec<(Var, Vec<usize>)> = Vec::new(); // var -> atom positions
        for (i, t) in terms.iter().enumerate() {
            match t {
                Term::Const(c) => const_checks.push((i, *c)),
                Term::Var(v) => match self.position(*v) {
                    Some(col) => bound_positions.push((i, col)),
                    None => match new_vars.iter_mut().find(|(u, _)| u == v) {
                        Some((_, ps)) => ps.push(i),
                        None => new_vars.push((*v, vec![i])),
                    },
                },
            }
        }
        // Probe through the relation's cached index, keyed by the constant
        // positions followed by the bound-variable positions — the index is
        // built once per relation version and shared by every atom
        // evaluation with the same shape.
        let index_cols: Vec<usize> = const_checks
            .iter()
            .map(|&(i, _)| i)
            .chain(bound_positions.iter().map(|&(i, _)| i))
            .collect();
        let index = rel.index_on(&index_cols);
        let has_repeats = new_vars.iter().any(|(_, ps)| ps.len() > 1);
        // Output columns.
        let mut vars = self.vars.clone();
        for (v, _) in &new_vars {
            let at = vars.partition_point(|&u| u < *v);
            vars.insert(at, *v);
        }
        let src: Vec<Result<usize, usize>> = vars
            .iter()
            .map(|v| match self.position(*v) {
                Some(i) => Ok(i),
                // Output vars are ours plus the pattern's new ones, so a
                // var absent from the input was introduced by the atom.
                None => Err(new_vars
                    .iter()
                    .position(|(u, _)| u == v)
                    .expect("new output column introduced by the atom pattern")),
            })
            .collect();
        let mut rows = BTreeSet::new();
        let mut key: Vec<Value> = Vec::with_capacity(const_checks.len() + bound_positions.len());
        for l in &self.rows {
            key.clear();
            key.extend(const_checks.iter().map(|&(_, c)| c));
            key.extend(bound_positions.iter().map(|&(_, col)| l[col]));
            let Some(matches) = index.get(&key) else {
                continue;
            };
            for t in matches {
                if has_repeats
                    && new_vars
                        .iter()
                        .any(|(_, ps)| ps.windows(2).any(|w| t[w[0]] != t[w[1]]))
                {
                    continue;
                }
                rows.insert(
                    src.iter()
                        .map(|s| match *s {
                            Ok(i) => l[i],
                            Err(n) => t[new_vars[n].1[0]],
                        })
                        .collect::<Tuple>(),
                );
            }
        }
        Bindings { vars, rows }
    }
}

impl fmt::Display for Bindings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (n, row) in self.rows.iter().enumerate() {
            if n > 0 {
                f.write_str(", ")?;
            }
            f.write_str("[")?;
            for (i, v) in self.vars.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{v}={}", row[i])?;
            }
            f.write_str("]")?;
        }
        f.write_str("}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtic_relation::{tuple, Schema, Sort};
    use rtic_temporal::var;

    fn b(vars: &[&str], rows: Vec<Tuple>) -> Bindings {
        Bindings::from_rows(vars.iter().map(|v| var(v)).collect(), rows)
    }

    #[test]
    fn unit_and_none() {
        assert_eq!(Bindings::unit().len(), 1);
        assert!(Bindings::none([var("x")]).is_empty());
        assert_eq!(Bindings::none([var("x")]).vars(), &[var("x")]);
    }

    #[test]
    fn from_rows_canonicalizes_column_order() {
        // Note: Symbol order is intern order, so intern in a known order.
        let (a, z) = (var("col_a"), var("col_z"));
        let fwd = Bindings::from_rows(vec![a, z], vec![tuple![1, 2]]);
        let rev = Bindings::from_rows(vec![z, a], vec![tuple![2, 1]]);
        assert_eq!(fwd, rev);
    }

    #[test]
    fn natural_join_on_shared() {
        let l = b(&["jx", "jy"], vec![tuple![1, 10], tuple![2, 20]]);
        let r = b(
            &["jy", "jz"],
            vec![tuple![10, 100], tuple![10, 101], tuple![30, 300]],
        );
        let j = l.natural_join(&r);
        assert_eq!(j.len(), 2);
        assert_eq!(j.vars().len(), 3);
        let l2 = b(&["jx"], vec![tuple![5]]);
        let cross = l2.natural_join(&b(&["jw"], vec![tuple![7], tuple![8]]));
        assert_eq!(cross.len(), 2, "no shared vars means cross product");
    }

    #[test]
    fn natural_join_with_unit_is_identity() {
        let l = b(&["ux"], vec![tuple![1], tuple![2]]);
        assert_eq!(l.natural_join(&Bindings::unit()), l);
        assert_eq!(Bindings::unit().natural_join(&l), l);
    }

    #[test]
    fn semijoin_antijoin() {
        let l = b(&["sx", "sy"], vec![tuple![1, 10], tuple![2, 20]]);
        let keys = b(&["sx"], vec![tuple![1]]);
        assert_eq!(l.semijoin(&keys).len(), 1);
        assert_eq!(l.antijoin(&keys).len(), 1);
    }

    #[test]
    fn project_and_project_away() {
        let l = b(&["px", "py"], vec![tuple![1, 10], tuple![2, 10]]);
        let p = l.project(&[var("py")]);
        assert_eq!(p.len(), 1, "deduplicated");
        assert_eq!(l.project_away(&[var("px")]), p);
    }

    #[test]
    fn extend_const_inserts_sorted() {
        let l = b(&["ex"], vec![tuple![1]]);
        let e = l.extend_const(var("ey"), Value::Int(9));
        assert_eq!(e.vars().len(), 2);
        let col = e.position(var("ey")).unwrap();
        for r in e.rows() {
            assert_eq!(r[col], Value::Int(9));
        }
    }

    fn rel(rows: Vec<Tuple>) -> Relation {
        Relation::from_tuples(Schema::of(&[("a", Sort::Int), ("b", Sort::Int)]), rows).unwrap()
    }

    #[test]
    fn join_atom_binds_new_vars() {
        let r = rel(vec![tuple![1, 10], tuple![2, 20]]);
        let out = Bindings::unit().join_atom(&r, &[Term::var("ja"), Term::var("jb")]);
        assert_eq!(out.len(), 2);
        assert_eq!(out.vars().len(), 2);
    }

    #[test]
    fn join_atom_respects_bound_vars() {
        let r = rel(vec![tuple![1, 10], tuple![2, 20]]);
        let input = b(&["ka"], vec![tuple![1]]);
        let out = input.join_atom(&r, &[Term::var("ka"), Term::var("kb")]);
        assert_eq!(out.len(), 1);
        let row = out.rows().next().unwrap();
        assert_eq!(row[out.position(var("kb")).unwrap()], Value::Int(10));
    }

    #[test]
    fn join_atom_checks_constants() {
        let r = rel(vec![tuple![1, 10], tuple![2, 20]]);
        let out = Bindings::unit().join_atom(&r, &[Term::int(2), Term::var("cb")]);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn join_atom_repeated_new_var_requires_equality() {
        let r = rel(vec![tuple![3, 3], tuple![4, 5]]);
        let out = Bindings::unit().join_atom(&r, &[Term::var("rv"), Term::var("rv")]);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn term_value_reads_consts_and_columns() {
        let l = b(&["tx"], vec![tuple![5]]);
        let row = l.rows().next().unwrap().clone();
        assert_eq!(l.term_value(&row, &Term::int(9)), Value::Int(9));
        assert_eq!(l.term_value(&row, &Term::var("tx")), Value::Int(5));
    }

    #[test]
    fn union_requires_same_vars() {
        let a = b(&["uv"], vec![tuple![1]]);
        let c = b(&["uv"], vec![tuple![2]]);
        assert_eq!(a.union(&c).len(), 2);
    }

    #[test]
    #[should_panic(expected = "different variable sets")]
    fn union_panics_on_mismatch() {
        let a = b(&["u1"], vec![]);
        let c = b(&["u2"], vec![]);
        let _ = a.union(&c);
    }
}
