//! Sets of variable assignments ("binding relations").
//!
//! The first-order evaluator works over [`Bindings`]: a set of rows, each
//! assigning a value to every variable of a *canonically sorted* variable
//! list. Keeping columns sorted by variable makes every operation's output
//! schema deterministic and lets disjunction branches and aux-relation
//! extensions union without reordering logic at call sites.
//!
//! Rows live in a hash set: steady-state stepping never pays for ordering.
//! Only output boundaries — reports, checkpoints, [`Display`](fmt::Display)
//! — sort, via [`Bindings::sorted_rows`], so everything the system prints
//! or persists stays byte-identical to the ordered representation.
//!
//! The join kernels come in two forms: the classic methods
//! ([`Bindings::natural_join`], [`Bindings::join_atom`]) that derive their
//! column maps per call, and `*_shaped` variants that accept a precomputed
//! [`JoinShape`]/[`AtomShape`] plus a reusable [`Scratch`] buffer — the
//! execution path for compiled plans (see [`crate::plan`]), which computes
//! shapes once at constraint-compile time.

use std::collections::{HashMap, HashSet};
use std::fmt;

use rtic_relation::{Relation, Symbol, Tuple, TupleBlock, Value};
use rtic_temporal::ast::{Term, Var};

/// A finite set of assignments over a sorted variable list.
///
/// The row set is behind an `Arc`: every relational operation builds a
/// fresh set, so sharing is safe, and it makes cloning — in particular
/// replaying a memoized plan result on a quiescent step — a refcount bump
/// instead of an O(rows) rehash.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Bindings {
    vars: Vec<Var>,
    rows: std::sync::Arc<HashSet<Tuple>>,
}

/// Reusable executor scratch: the probe-key buffer join kernels fill once
/// per input row, plus a memo of database-pure plan-node results keyed by
/// the database's cache stamp. Threading one `Scratch` through a whole run
/// means steady-state stepping reuses a single key allocation instead of
/// building a fresh `Vec` on every probe, and quiescent steps replay
/// memoized relation scans instead of re-hashing every tuple.
#[derive(Clone, Debug, Default)]
pub struct Scratch {
    key: Vec<Value>,
    high_water: usize,
    ext_cache: HashMap<usize, ((u64, u64), Bindings)>,
    /// Fine-grained memo for vectorized execution: results keyed by the
    /// per-relation generations the cached subtree reads, so an update
    /// touching *other* relations leaves the entry — and its row-storage
    /// `Arc` identity — intact.
    ext_cache_vec: HashMap<usize, VecCacheEntry>,
    /// Per-slot record of the most recent incremental (delta) refresh,
    /// consumed by window-maintenance fast paths.
    refreshed: HashMap<usize, RefreshedExt>,
    /// Per-producer-node record of the last output transition (old rows →
    /// new rows plus the net added/removed tuples), so downstream probe
    /// nodes can advance their cached partitions in O(|delta|).
    deltas: HashMap<usize, RowDelta>,
    /// Per-probe-node passed/failed partition of the node's last input,
    /// valid only for monotone windows (see `Oracle::probe_monotone`).
    probes: HashMap<usize, ProbePartition>,
    /// Whether the vectorized kernels and the per-relation-stamp memo are
    /// active on this scratch.
    vectorize: bool,
    /// Column blocks streamed by vectorized kernels.
    blocks: u64,
    /// Total rows across those blocks (`block_rows / blocks` = mean
    /// rows-per-block).
    block_rows: u64,
    /// Per-node profiler counters, indexed by plan node id. `None` keeps
    /// the executor's fast path a single discriminant check.
    profile: Option<Vec<crate::plan::NodeCounters>>,
}

/// One vectorized memo entry: the cached result plus the exact per-relation
/// generations it was computed against (for the database instance `db_id`).
#[derive(Clone, Debug)]
pub(crate) struct VecCacheEntry {
    /// [`rtic_relation::Database::instance_id`] of the producing database.
    pub(crate) db_id: u64,
    /// `(relation, rel_gen)` for every relation the subtree reads.
    pub(crate) gens: Vec<(Symbol, u64)>,
    /// The memoized result.
    pub(crate) rows: Bindings,
}

/// What an incremental (delta) refresh of a memoized extension changed:
/// the pre-refresh bindings and the rows the refresh added. Consumers that
/// held `base` (pointer-identical) need only absorb `added`.
#[derive(Clone, Debug)]
pub(crate) struct RefreshedExt {
    /// The bindings the refresh started from.
    pub(crate) base: Bindings,
    /// Rows present after the refresh that were not in `base`.
    pub(crate) added: Vec<Tuple>,
}

/// One producer node's output transition: the exact net row changes that
/// turned `from` into `to`. Consumers whose cached state was computed
/// against `from` (pointer-identical) advance by replaying `added` and
/// `removed` instead of rescanning `to`.
#[derive(Clone, Debug)]
pub(crate) struct RowDelta {
    /// The producer's previous output (held alive so its row-storage `Arc`
    /// identity stays valid for pointer comparisons).
    pub(crate) from: Bindings,
    /// The producer's current output.
    pub(crate) to: Bindings,
    /// Rows in `to` but not `from`.
    pub(crate) added: Vec<Tuple>,
    /// Rows in `from` but not `to`.
    pub(crate) removed: Vec<Tuple>,
}

/// A probe node's input split into the rows whose key satisfied the
/// window and the rows whose key did not. For monotone windows (key
/// verdicts only ever flip failed → passed) the passed side never needs
/// re-probing: advancing a partition probes only the failed rows and the
/// input's net delta — O(|failed| + |delta|) instead of O(|input|).
#[derive(Clone, Debug)]
pub(crate) struct ProbePartition {
    /// The input the partition covers (`passed ∪ failed == input`).
    pub(crate) input: Bindings,
    /// Rows whose projected key satisfied the window.
    pub(crate) passed: Bindings,
    /// Rows whose projected key did not (yet) satisfy the window.
    pub(crate) failed: Bindings,
}

impl ProbePartition {
    /// Partitions `input` from scratch with one probe per row.
    pub(crate) fn full(input: &Bindings, mut holds: impl FnMut(&Tuple) -> bool) -> ProbePartition {
        let mut passed = HashSet::new();
        let mut failed = HashSet::new();
        for row in input.rows() {
            if holds(row) {
                passed.insert(row.clone());
            } else {
                failed.insert(row.clone());
            }
        }
        ProbePartition {
            input: input.clone(),
            passed: Bindings {
                vars: input.vars.clone(),
                rows: std::sync::Arc::new(passed),
            },
            failed: Bindings {
                vars: input.vars.clone(),
                rows: std::sync::Arc::new(failed),
            },
        }
    }

    /// Advances the partition to `input` (= the covered input plus
    /// `added` minus `removed`, as net sets), re-probing only the failed
    /// rows and the additions — sound exactly when the window's verdicts
    /// are monotone. Returns the new partition plus the net rows the
    /// *passed* side gained and lost (the node's own output delta).
    ///
    /// When nothing changed, the passed/failed row storage is returned
    /// untouched, preserving `Arc` identity for downstream fast paths.
    pub(crate) fn advance(
        self,
        input: &Bindings,
        added: &[Tuple],
        removed: &[Tuple],
        mut holds: impl FnMut(&Tuple) -> bool,
    ) -> (ProbePartition, Vec<Tuple>, Vec<Tuple>) {
        debug_assert!(added.iter().all(|r| !self.input.contains(r)));
        debug_assert!(removed.iter().all(|r| self.input.contains(r)));
        if added.is_empty() && removed.is_empty() {
            // Failed rows whose key aged into (or was newly recorded by)
            // the window since the last probe.
            let flips: Vec<Tuple> = self.failed.rows().filter(|r| holds(r)).cloned().collect();
            if flips.is_empty() {
                let part = ProbePartition {
                    input: input.clone(),
                    passed: self.passed,
                    failed: self.failed,
                };
                return (part, Vec::new(), Vec::new());
            }
            let mut passed = (*self.passed.rows).clone();
            let mut failed = (*self.failed.rows).clone();
            for row in &flips {
                failed.remove(row);
                passed.insert(row.clone());
            }
            let part = ProbePartition {
                input: input.clone(),
                passed: Bindings {
                    vars: self.passed.vars,
                    rows: std::sync::Arc::new(passed),
                },
                failed: Bindings {
                    vars: self.failed.vars,
                    rows: std::sync::Arc::new(failed),
                },
            };
            return (part, flips, Vec::new());
        }
        // Removals first, so a removed row can never also surface as a
        // failed→passed flip (the output deltas must be net sets).
        let mut passed = (*self.passed.rows).clone();
        let mut failed = (*self.failed.rows).clone();
        let mut passed_removed = Vec::new();
        for row in removed {
            if passed.remove(row) {
                passed_removed.push(row.clone());
            } else {
                failed.remove(row);
            }
        }
        let flips: Vec<Tuple> = failed.iter().filter(|r| holds(r)).cloned().collect();
        let mut passed_added = flips.clone();
        for row in &flips {
            failed.remove(row);
            passed.insert(row.clone());
        }
        for row in added {
            if holds(row) {
                passed.insert(row.clone());
                passed_added.push(row.clone());
            } else {
                failed.insert(row.clone());
            }
        }
        let part = ProbePartition {
            input: input.clone(),
            passed: Bindings {
                vars: self.passed.vars,
                rows: std::sync::Arc::new(passed),
            },
            failed: Bindings {
                vars: self.failed.vars,
                rows: std::sync::Arc::new(failed),
            },
        };
        (part, passed_added, passed_removed)
    }
}

impl Scratch {
    /// Fresh scratch with empty buffers.
    pub fn new() -> Scratch {
        Scratch::default()
    }

    /// Widest probe key the buffer has ever held (plan statistics).
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Switches the vectorized kernels and the per-relation-stamp memo on
    /// or off for every execution threaded through this scratch.
    pub fn set_vectorize(&mut self, on: bool) {
        self.vectorize = on;
    }

    /// Whether vectorized execution is active.
    #[inline]
    pub fn vectorize(&self) -> bool {
        self.vectorize
    }

    /// Tallies one column block of `rows` rows streamed by a vectorized
    /// kernel.
    #[inline]
    pub(crate) fn note_block(&mut self, rows: u64) {
        self.blocks += 1;
        self.block_rows += rows;
    }

    /// `(blocks, total rows across blocks)` streamed by vectorized kernels
    /// so far; rows-per-block is their ratio.
    pub fn block_counts(&self) -> (u64, u64) {
        (self.blocks, self.block_rows)
    }

    /// The vectorized memo entry for a cache slot, if any.
    pub(crate) fn cached_ext_vec(&self, slot: usize) -> Option<&VecCacheEntry> {
        self.ext_cache_vec.get(&slot)
    }

    /// Removes and returns the vectorized memo entry for a cache slot.
    pub(crate) fn take_ext_vec(&mut self, slot: usize) -> Option<VecCacheEntry> {
        self.ext_cache_vec.remove(&slot)
    }

    /// Stores a vectorized memo entry for a cache slot.
    pub(crate) fn store_ext_vec(&mut self, slot: usize, entry: VecCacheEntry) {
        self.ext_cache_vec.insert(slot, entry);
    }

    /// Records what a delta refresh of `slot` changed.
    pub(crate) fn note_refresh(&mut self, slot: usize, base: Bindings, added: Vec<Tuple>) {
        self.refreshed.insert(slot, RefreshedExt { base, added });
    }

    /// Removes and returns the refresh record for `slot`, if one was
    /// produced since the last take.
    pub(crate) fn take_refresh(&mut self, slot: usize) -> Option<RefreshedExt> {
        self.refreshed.remove(&slot)
    }

    /// Records producer node `node`'s output transition (replacing any
    /// earlier one).
    pub(crate) fn note_delta(&mut self, node: usize, delta: RowDelta) {
        self.deltas.insert(node, delta);
    }

    /// The recorded transition that *produced* `to` (row storage pointer
    /// match), if any producer left one behind.
    pub(crate) fn delta_into(&self, to: &Bindings) -> Option<&RowDelta> {
        self.deltas.values().find(|d| d.to.same_rows(to))
    }

    /// The cached probe partition for plan node `node`, if any.
    pub(crate) fn probe_partition(&self, node: usize) -> Option<&ProbePartition> {
        self.probes.get(&node)
    }

    /// Removes and returns the cached probe partition for plan node `node`.
    pub(crate) fn take_probe_partition(&mut self, node: usize) -> Option<ProbePartition> {
        self.probes.remove(&node)
    }

    /// Stores plan node `node`'s probe partition.
    pub(crate) fn store_probe_partition(&mut self, node: usize, part: ProbePartition) {
        self.probes.insert(node, part);
    }

    /// Turns on per-node profiling: every subsequent planned execution
    /// through this scratch accumulates [`crate::plan::NodeCounters`].
    pub fn enable_profiling(&mut self) {
        if self.profile.is_none() {
            self.profile = Some(Vec::new());
        }
    }

    /// Whether profiling is enabled (the executor's one-branch check).
    #[inline]
    pub fn profiling(&self) -> bool {
        self.profile.is_some()
    }

    /// The accumulated per-node counters, indexed by plan node id; `None`
    /// until [`Scratch::enable_profiling`] is called.
    pub fn profile_counters(&self) -> Option<&[crate::plan::NodeCounters]> {
        self.profile.as_deref()
    }

    /// Accumulates one execution into `node_id`'s counter slot. Nodes
    /// compiled outside `EvalPlans::build` carry no id and are skipped.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn profile_record(
        &mut self,
        node_id: usize,
        time_ns: u64,
        rows_in: u64,
        rows_out: u64,
        cache: crate::plan::CacheTouch,
        blocks: u64,
        block_rows: u64,
    ) {
        let Some(profile) = self.profile.as_mut() else {
            return;
        };
        if node_id == usize::MAX {
            return;
        }
        if profile.len() <= node_id {
            profile.resize(node_id + 1, crate::plan::NodeCounters::default());
        }
        let slot = &mut profile[node_id];
        slot.calls += 1;
        slot.time_ns += time_ns;
        slot.rows_in += rows_in;
        slot.rows_out += rows_out;
        slot.blocks += blocks;
        slot.block_rows += block_rows;
        match cache {
            crate::plan::CacheTouch::Hit => slot.cache_hits += 1,
            crate::plan::CacheTouch::Miss => slot.cache_misses += 1,
            crate::plan::CacheTouch::Untouched => {}
        }
    }

    /// The memoized result for a cache slot, if it was produced against a
    /// database with this exact stamp.
    pub(crate) fn cached_ext(&self, slot: usize, stamp: (u64, u64)) -> Option<&Bindings> {
        match self.ext_cache.get(&slot) {
            Some((s, rows)) if *s == stamp => Some(rows),
            _ => None,
        }
    }

    /// Memoizes a cache slot's result for the given database stamp,
    /// replacing any earlier generation.
    pub(crate) fn store_ext(&mut self, slot: usize, stamp: (u64, u64), rows: Bindings) {
        self.ext_cache.insert(slot, (stamp, rows));
    }

    fn note_width(&mut self, width: usize) {
        self.high_water = self.high_water.max(width);
    }
}

/// Column source for an output column of a natural join.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Src {
    /// Copy from the left row at this position.
    Left(usize),
    /// Copy from the right row at this position.
    Right(usize),
}

/// Precomputed column maps for a natural join between two known schemas.
///
/// Computable from the variable lists alone, so a compiled plan derives it
/// once; the per-step kernel then only moves values.
#[derive(Clone, Debug)]
pub(crate) struct JoinShape {
    /// Output variables (sorted merge of both sides).
    pub(crate) vars: Vec<Var>,
    /// Left-side positions of the shared (join-key) variables.
    pub(crate) lpos: Vec<usize>,
    /// Right-side positions of the shared variables, aligned with `lpos`.
    pub(crate) rpos: Vec<usize>,
    /// Source of each output column.
    pub(crate) srcs: Vec<Src>,
}

impl JoinShape {
    /// Derives the join shape for `left ⋈ right` (both sorted var lists).
    pub(crate) fn compute(left: &[Var], right: &[Var]) -> JoinShape {
        let mut lpos: Vec<usize> = Vec::new();
        let mut rpos: Vec<usize> = Vec::new();
        let mut is_key = vec![false; right.len()];
        for (i, v) in left.iter().enumerate() {
            if let Ok(j) = right.binary_search(v) {
                lpos.push(i);
                rpos.push(j);
                is_key[j] = true;
            }
        }
        // Output variables: left's plus the right's new ones, merged sorted.
        let mut vars = left.to_vec();
        for (j, v) in right.iter().enumerate() {
            if !is_key[j] {
                let at = vars.partition_point(|&u| u < *v);
                vars.insert(at, *v);
            }
        }
        let srcs: Vec<Src> = vars
            .iter()
            .map(|v| match left.binary_search(v) {
                Ok(i) => Src::Left(i),
                // Output vars are the left's plus the right's new ones, so a
                // var absent on the left must come from the right.
                Err(_) => Src::Right(
                    right
                        .binary_search(v)
                        .expect("output variable bound by one side"),
                ),
            })
            .collect();
        JoinShape {
            vars,
            lpos,
            rpos,
            srcs,
        }
    }
}

/// Precomputed classification of an atom's term pattern against a known
/// input schema: which positions are constants, which are already bound,
/// which introduce new variables, and the relation-index key shape.
#[derive(Clone, Debug)]
pub(crate) struct AtomShape {
    /// Output variables (input's plus the pattern's new ones, sorted).
    pub(crate) vars: Vec<Var>,
    /// Constant pattern positions and their required values.
    pub(crate) const_checks: Vec<(usize, Value)>,
    /// (atom position, input column) pairs for already-bound variables.
    pub(crate) bound_positions: Vec<(usize, usize)>,
    /// New variables with all atom positions they occupy.
    pub(crate) new_vars: Vec<(Var, Vec<usize>)>,
    /// Relation index key: constant positions then bound positions.
    pub(crate) index_cols: Vec<usize>,
    /// Whether any new variable repeats (needs a self-consistency check).
    pub(crate) has_repeats: bool,
    /// Source of each output column: `Ok(input col)` or `Err(new-var idx)`.
    pub(crate) src: Vec<Result<usize, usize>>,
}

impl AtomShape {
    /// Classifies `terms` against a sorted input variable list.
    pub(crate) fn compute(input_vars: &[Var], terms: &[Term]) -> AtomShape {
        let mut const_checks: Vec<(usize, Value)> = Vec::new();
        let mut bound_positions: Vec<(usize, usize)> = Vec::new();
        let mut new_vars: Vec<(Var, Vec<usize>)> = Vec::new();
        for (i, t) in terms.iter().enumerate() {
            match t {
                Term::Const(c) => const_checks.push((i, *c)),
                Term::Var(v) => match input_vars.binary_search(v) {
                    Ok(col) => bound_positions.push((i, col)),
                    Err(_) => match new_vars.iter_mut().find(|(u, _)| u == v) {
                        Some((_, ps)) => ps.push(i),
                        None => new_vars.push((*v, vec![i])),
                    },
                },
            }
        }
        let index_cols: Vec<usize> = const_checks
            .iter()
            .map(|&(i, _)| i)
            .chain(bound_positions.iter().map(|&(i, _)| i))
            .collect();
        let has_repeats = new_vars.iter().any(|(_, ps)| ps.len() > 1);
        let mut vars = input_vars.to_vec();
        for (v, _) in &new_vars {
            let at = vars.partition_point(|&u| u < *v);
            vars.insert(at, *v);
        }
        let src: Vec<Result<usize, usize>> = vars
            .iter()
            .map(|v| match input_vars.binary_search(v) {
                Ok(i) => Ok(i),
                // Output vars are the input's plus the pattern's new ones,
                // so a var absent from the input came from the atom.
                Err(_) => Err(new_vars
                    .iter()
                    .position(|(u, _)| u == v)
                    .expect("new output column introduced by the atom pattern")),
            })
            .collect();
        AtomShape {
            vars,
            const_checks,
            bound_positions,
            new_vars,
            index_cols,
            has_repeats,
            src,
        }
    }
}

impl Bindings {
    /// The unit: no variables, one (empty) row. Identity for joins;
    /// represents "true".
    pub fn unit() -> Bindings {
        let mut rows = HashSet::with_capacity(1);
        rows.insert(Tuple::empty());
        Bindings {
            vars: Vec::new(),
            rows: std::sync::Arc::new(rows),
        }
    }

    /// No rows over the given variables; represents "false".
    pub fn none(vars: impl IntoIterator<Item = Var>) -> Bindings {
        let mut vars: Vec<Var> = vars.into_iter().collect();
        vars.sort_unstable();
        vars.dedup();
        Bindings {
            vars,
            rows: std::sync::Arc::new(HashSet::new()),
        }
    }

    /// Builds from rows whose columns follow `vars` (any order; columns are
    /// canonicalized).
    ///
    /// # Panics
    /// Panics if `vars` contains duplicates or a row's arity mismatches.
    pub fn from_rows(vars: Vec<Var>, rows: impl IntoIterator<Item = Tuple>) -> Bindings {
        let mut order: Vec<usize> = (0..vars.len()).collect();
        order.sort_unstable_by_key(|&i| vars[i]);
        let sorted_vars: Vec<Var> = order.iter().map(|&i| vars[i]).collect();
        assert!(
            sorted_vars.windows(2).all(|w| w[0] != w[1]),
            "duplicate variable in Bindings::from_rows"
        );
        let rows: HashSet<Tuple> = rows
            .into_iter()
            .map(|t| {
                assert_eq!(t.arity(), vars.len(), "row arity mismatch");
                t.project(&order)
            })
            .collect();
        Bindings {
            vars: sorted_vars,
            rows: std::sync::Arc::new(rows),
        }
    }

    /// The sorted variable list.
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterates rows in arbitrary order. Use [`Bindings::sorted_rows`] at
    /// output boundaries that need byte-stable ordering.
    pub fn rows(&self) -> impl Iterator<Item = &Tuple> {
        self.rows.iter()
    }

    /// Rows in sorted (lexicographic) order. This is the boundary API:
    /// reports, checkpoints and `Display` sort here — exactly once, at the
    /// edge — so the hash-set interior never leaks nondeterminism into
    /// anything printed or persisted.
    pub fn sorted_rows(&self) -> Vec<&Tuple> {
        let mut rows: Vec<&Tuple> = self.rows.iter().collect();
        rows.sort_unstable();
        rows
    }

    /// The rows as a sorted column-major [`TupleBlock`] — the boundary
    /// representation: the block's row order is exactly
    /// [`Bindings::sorted_rows`]' order, so anything rendered or persisted
    /// from it is byte-identical to the row-at-a-time form.
    pub fn sorted_block(&self) -> TupleBlock {
        TupleBlock::from_tuples(self.rows.iter().cloned())
    }

    /// Membership test for a row in this binding set's column order.
    pub fn contains(&self, row: &Tuple) -> bool {
        self.rows.contains(row)
    }

    /// Whether both binding sets share the same row storage (pointer
    /// equality) — a cheap sufficient test for equal contents, used by
    /// maintenance fast paths on memoized extensions.
    pub(crate) fn same_rows(&self, other: &Bindings) -> bool {
        std::sync::Arc::ptr_eq(&self.rows, &other.rows)
    }

    /// Position of `v` in the column order.
    pub fn position(&self, v: Var) -> Option<usize> {
        self.vars.binary_search(&v).ok()
    }

    /// The value a row assigns to a term: the constant itself, or the row's
    /// value for the variable.
    ///
    /// # Panics
    /// Panics when the term is an unbound variable — the safety analysis
    /// guarantees evaluators never ask for one.
    pub fn term_value(&self, row: &Tuple, term: &Term) -> Value {
        match term {
            Term::Const(c) => *c,
            Term::Var(v) => {
                let i = self
                    .position(*v)
                    .unwrap_or_else(|| panic!("unbound variable `{v}` (safety analysis bug)"));
                row[i]
            }
        }
    }

    /// Keeps only rows satisfying `pred`.
    pub fn filter(&self, mut pred: impl FnMut(&Tuple) -> bool) -> Bindings {
        Bindings {
            vars: self.vars.clone(),
            rows: std::sync::Arc::new(self.rows.iter().filter(|r| pred(r)).cloned().collect()),
        }
    }

    /// Union; both sides must have the same variables.
    pub fn union(&self, other: &Bindings) -> Bindings {
        assert_eq!(self.vars, other.vars, "union over different variable sets");
        Bindings {
            vars: self.vars.clone(),
            rows: std::sync::Arc::new(self.rows.union(&other.rows).cloned().collect()),
        }
    }

    /// In-place union; both sides must have the same variables. Use this
    /// in accumulation loops — repeated [`Bindings::union`] is quadratic.
    pub fn union_in_place(&mut self, other: &Bindings) {
        assert_eq!(self.vars, other.vars, "union over different variable sets");
        std::sync::Arc::make_mut(&mut self.rows).extend(other.rows.iter().cloned());
    }

    /// Projection onto `keep` (must be a subset of the variables);
    /// deduplicates. Projecting onto the full variable list is the
    /// identity and shares the row storage instead of rebuilding it.
    pub fn project(&self, keep: &[Var]) -> Bindings {
        let mut keep: Vec<Var> = keep.to_vec();
        keep.sort_unstable();
        keep.dedup();
        if keep == self.vars {
            return self.clone();
        }
        let positions: Vec<usize> = keep
            .iter()
            .map(|v| self.position(*v).expect("projection variable not present"))
            .collect();
        Bindings {
            vars: keep,
            rows: std::sync::Arc::new(self.rows.iter().map(|r| r.project(&positions)).collect()),
        }
    }

    /// Drops the variables in `remove` (projection onto the complement).
    pub fn project_away(&self, remove: &[Var]) -> Bindings {
        let mut remove: Vec<Var> = remove.to_vec();
        remove.sort_unstable();
        let keep: Vec<Var> = self
            .vars
            .iter()
            .copied()
            .filter(|v| remove.binary_search(v).is_err())
            .collect();
        self.project(&keep)
    }

    /// Vectorized [`Bindings::project_away`]: the dropped variables become
    /// column drops on a [`TupleBlock`] (gather the kept columns, re-unique)
    /// instead of per-row tuple rebuilds. Falls back to the row kernel when
    /// the scratch is not in vectorized mode. Output is logically identical
    /// either way.
    pub(crate) fn project_away_vec(&self, remove: &[Var], scratch: &mut Scratch) -> Bindings {
        if !scratch.vectorize() {
            return self.project_away(remove);
        }
        let mut removed: Vec<Var> = remove.to_vec();
        removed.sort_unstable();
        let mut keep_vars: Vec<Var> = Vec::with_capacity(self.vars.len());
        let mut keep_pos: Vec<usize> = Vec::with_capacity(self.vars.len());
        for (i, v) in self.vars.iter().enumerate() {
            if removed.binary_search(v).is_err() {
                keep_vars.push(*v);
                keep_pos.push(i);
            }
        }
        if keep_vars.len() == self.vars.len() {
            return self.clone();
        }
        if self.rows.is_empty() {
            // An empty row set materializes a zero-column block; there is
            // nothing to gather.
            return Bindings {
                vars: keep_vars,
                rows: std::sync::Arc::new(HashSet::new()),
            };
        }
        let block = TupleBlock::from_tuples(self.rows.iter().cloned());
        scratch.note_block(block.len() as u64);
        let projected = block.project(&keep_pos);
        Bindings {
            vars: keep_vars,
            rows: std::sync::Arc::new(projected.iter().collect()),
        }
    }

    /// Incrementally refreshes a memoized **unit-input atom scan** against
    /// the relation's recorded tuple delta, instead of rescanning and
    /// re-hashing the whole relation.
    ///
    /// Sound because a unit-input atom's tuple→row mapping is injective on
    /// the tuples that pass its constant and repeated-variable checks:
    /// every atom position is either a constant or a new-variable position,
    /// so the output row determines the source tuple. Replaying the delta's
    /// add/remove events therefore reproduces exactly the rows a full
    /// rescan would produce.
    ///
    /// Returns the refreshed bindings plus the **net** added and removed
    /// rows (for window maintenance and downstream delta consumers). Net
    /// means relative to the pre-refresh rows: a row inserted and deleted
    /// within the same delta appears in neither list.
    pub(crate) fn apply_atom_delta(
        &self,
        shape: &AtomShape,
        events: &[(Tuple, bool)],
    ) -> (Bindings, Vec<Tuple>, Vec<Tuple>) {
        debug_assert!(
            shape.bound_positions.is_empty(),
            "delta refresh requires a unit-input atom"
        );
        let mut rows = (*self.rows).clone();
        let mut added_rows: HashSet<Tuple> = HashSet::new();
        let mut removed_rows: HashSet<Tuple> = HashSet::new();
        for (t, added) in events {
            if shape.const_checks.iter().any(|&(i, c)| t[i] != c) {
                continue;
            }
            if shape.has_repeats
                && shape
                    .new_vars
                    .iter()
                    .any(|(_, ps)| ps.windows(2).any(|w| t[w[0]] != t[w[1]]))
            {
                continue;
            }
            let row: Tuple = shape
                .src
                .iter()
                .map(|s| match *s {
                    Ok(_) => unreachable!("unit-input atom has no bound input columns"),
                    Err(n) => t[shape.new_vars[n].1[0]],
                })
                .collect();
            if *added {
                if rows.insert(row.clone()) && !removed_rows.remove(&row) {
                    added_rows.insert(row);
                }
            } else if rows.remove(&row) && !added_rows.remove(&row) {
                removed_rows.insert(row);
            }
        }
        (
            Bindings {
                vars: self.vars.clone(),
                rows: std::sync::Arc::new(rows),
            },
            added_rows.into_iter().collect(),
            removed_rows.into_iter().collect(),
        )
    }

    /// Extends every row with `v = value`. `v` must be new.
    pub fn extend_const(&self, v: Var, value: Value) -> Bindings {
        self.extend_with(v, |_| value)
    }

    /// Extends every row with `v` bound to a row-dependent value. `v` must
    /// be new.
    pub fn extend_with(&self, v: Var, mut value: impl FnMut(&Tuple) -> Value) -> Bindings {
        assert!(
            self.position(v).is_none(),
            "extend_with: variable already bound"
        );
        let mut vars = self.vars.clone();
        let insert_at = vars.partition_point(|&u| u < v);
        vars.insert(insert_at, v);
        let rows: HashSet<Tuple> = self
            .rows
            .iter()
            .map(|r| {
                let mut vals: Vec<Value> = r.values().to_vec();
                vals.insert(insert_at, value(r));
                Tuple::new(vals)
            })
            .collect();
        Bindings {
            vars,
            rows: std::sync::Arc::new(rows),
        }
    }

    /// Natural join on shared variables.
    pub fn natural_join(&self, other: &Bindings) -> Bindings {
        let shape = JoinShape::compute(&self.vars, &other.vars);
        self.natural_join_shaped(other, &shape, &mut Scratch::new())
    }

    /// Natural join through a precomputed [`JoinShape`]. `shape` must have
    /// been computed from exactly `(self.vars, other.vars)`.
    pub(crate) fn natural_join_shaped(
        &self,
        other: &Bindings,
        shape: &JoinShape,
        scratch: &mut Scratch,
    ) -> Bindings {
        // Vectorized single-key fast path: gather the build side's key
        // column into one flat block and hash `Value → row ids` over it —
        // no per-row `Vec<Value>` key allocations on either side.
        if scratch.vectorize() && shape.lpos.len() == 1 {
            return self.natural_join_single_key(other, shape, scratch);
        }
        let mut table: HashMap<Vec<Value>, Vec<&Tuple>> = HashMap::with_capacity(other.rows.len());
        for r in other.rows.iter() {
            table
                .entry(shape.rpos.iter().map(|&i| r[i]).collect())
                .or_default()
                .push(r);
        }
        scratch.note_width(shape.lpos.len());
        let mut rows = HashSet::new();
        for l in self.rows.iter() {
            scratch.key.clear();
            scratch.key.extend(shape.lpos.iter().map(|&i| l[i]));
            if let Some(matches) = table.get(&scratch.key) {
                for r in matches {
                    rows.insert(
                        shape
                            .srcs
                            .iter()
                            .map(|s| match *s {
                                Src::Left(i) => l[i],
                                Src::Right(i) => r[i],
                            })
                            .collect::<Tuple>(),
                    );
                }
            }
        }
        Bindings {
            vars: shape.vars.clone(),
            rows: std::sync::Arc::new(rows),
        }
    }

    /// The columnar build/probe kernel behind [`Bindings::natural_join_shaped`]
    /// for single-variable join keys: build once over the key column slice,
    /// probe with bare `Value`s.
    fn natural_join_single_key(
        &self,
        other: &Bindings,
        shape: &JoinShape,
        scratch: &mut Scratch,
    ) -> Bindings {
        let rkey = shape.rpos[0];
        let lkey = shape.lpos[0];
        // Columnar build: one pass gathers row handles and the flat key
        // column, then the hash table maps each key value to row ids.
        let build: Vec<&Tuple> = other.rows.iter().collect();
        let keys: Vec<Value> = build.iter().map(|r| r[rkey]).collect();
        let mut table: HashMap<Value, Vec<u32>> = HashMap::with_capacity(build.len());
        for (i, k) in keys.iter().enumerate() {
            #[allow(clippy::cast_possible_truncation)]
            table.entry(*k).or_default().push(i as u32);
        }
        scratch.note_block(build.len() as u64);
        scratch.note_block(self.rows.len() as u64);
        scratch.note_width(1);
        let mut rows = HashSet::with_capacity(self.rows.len());
        for l in self.rows.iter() {
            if let Some(matches) = table.get(&l[lkey]) {
                for &i in matches {
                    let r = build[i as usize];
                    rows.insert(
                        shape
                            .srcs
                            .iter()
                            .map(|s| match *s {
                                Src::Left(i) => l[i],
                                Src::Right(i) => r[i],
                            })
                            .collect::<Tuple>(),
                    );
                }
            }
        }
        Bindings {
            vars: shape.vars.clone(),
            rows: std::sync::Arc::new(rows),
        }
    }

    /// Anti-semijoin: rows of `self` whose projection onto `other`'s
    /// variables is **not** in `other`. `other.vars ⊆ self.vars` required.
    pub fn antijoin(&self, other: &Bindings) -> Bindings {
        let pos: Vec<usize> = other
            .vars
            .iter()
            .map(|v| self.position(*v).expect("antijoin variables must be bound"))
            .collect();
        self.filter(|r| !other.rows.contains(&r.project(&pos)))
    }

    /// Semijoin: rows of `self` whose projection onto `other`'s variables
    /// **is** in `other`.
    pub fn semijoin(&self, other: &Bindings) -> Bindings {
        let pos: Vec<usize> = other
            .vars
            .iter()
            .map(|v| self.position(*v).expect("semijoin variables must be bound"))
            .collect();
        self.filter(|r| other.rows.contains(&r.project(&pos)))
    }

    /// Joins with a database relation through an atom's term pattern,
    /// binding the pattern's new variables.
    ///
    /// For every input row and every relation tuple that agrees with the
    /// row on already-bound variables and with the pattern's constants
    /// (and is self-consistent on repeated new variables), the output
    /// contains the row extended with the new variables' values.
    pub fn join_atom(&self, rel: &Relation, terms: &[Term]) -> Bindings {
        let shape = AtomShape::compute(&self.vars, terms);
        self.join_atom_shaped(rel, &shape, &mut Scratch::new())
    }

    /// Atom join through a precomputed [`AtomShape`]. `shape` must have
    /// been computed from exactly `(self.vars, terms)`.
    pub(crate) fn join_atom_shaped(
        &self,
        rel: &Relation,
        shape: &AtomShape,
        scratch: &mut Scratch,
    ) -> Bindings {
        // Probe through the relation's cached index, keyed by the constant
        // positions followed by the bound-variable positions — the index is
        // built once per relation version and shared by every atom
        // evaluation with the same shape.
        let index = rel.index_on(&shape.index_cols);
        scratch.note_width(shape.index_cols.len());
        let mut rows = if scratch.vectorize() {
            // The scan streams the input rows as one block; size the output
            // for the common one-match-per-probe case up front.
            scratch.note_block(self.rows.len() as u64);
            HashSet::with_capacity(self.rows.len().max(rel.len()))
        } else {
            HashSet::new()
        };
        for l in self.rows.iter() {
            scratch.key.clear();
            scratch
                .key
                .extend(shape.const_checks.iter().map(|&(_, c)| c));
            scratch
                .key
                .extend(shape.bound_positions.iter().map(|&(_, col)| l[col]));
            let Some(matches) = index.get(&scratch.key) else {
                continue;
            };
            for t in matches {
                if shape.has_repeats
                    && shape
                        .new_vars
                        .iter()
                        .any(|(_, ps)| ps.windows(2).any(|w| t[w[0]] != t[w[1]]))
                {
                    continue;
                }
                rows.insert(
                    shape
                        .src
                        .iter()
                        .map(|s| match *s {
                            Ok(i) => l[i],
                            Err(n) => t[shape.new_vars[n].1[0]],
                        })
                        .collect::<Tuple>(),
                );
            }
        }
        Bindings {
            vars: shape.vars.clone(),
            rows: std::sync::Arc::new(rows),
        }
    }
}

impl fmt::Display for Bindings {
    /// Renders through the sorted column-major boundary block
    /// ([`Bindings::sorted_block`]); its row order is exactly the sorted
    /// row order, so the output is byte-identical to rendering
    /// [`Bindings::sorted_rows`] directly.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (n, row) in self.sorted_block().iter().enumerate() {
            if n > 0 {
                f.write_str(", ")?;
            }
            f.write_str("[")?;
            for (i, v) in self.vars.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{v}={}", row[i])?;
            }
            f.write_str("]")?;
        }
        f.write_str("}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtic_relation::{tuple, Schema, Sort};
    use rtic_temporal::var;

    fn b(vars: &[&str], rows: Vec<Tuple>) -> Bindings {
        Bindings::from_rows(vars.iter().map(|v| var(v)).collect(), rows)
    }

    #[test]
    fn unit_and_none() {
        assert_eq!(Bindings::unit().len(), 1);
        assert!(Bindings::none([var("x")]).is_empty());
        assert_eq!(Bindings::none([var("x")]).vars(), &[var("x")]);
    }

    #[test]
    fn from_rows_canonicalizes_column_order() {
        // Note: Symbol order is intern order, so intern in a known order.
        let (a, z) = (var("col_a"), var("col_z"));
        let fwd = Bindings::from_rows(vec![a, z], vec![tuple![1, 2]]);
        let rev = Bindings::from_rows(vec![z, a], vec![tuple![2, 1]]);
        assert_eq!(fwd, rev);
    }

    #[test]
    fn natural_join_on_shared() {
        let l = b(&["jx", "jy"], vec![tuple![1, 10], tuple![2, 20]]);
        let r = b(
            &["jy", "jz"],
            vec![tuple![10, 100], tuple![10, 101], tuple![30, 300]],
        );
        let j = l.natural_join(&r);
        assert_eq!(j.len(), 2);
        assert_eq!(j.vars().len(), 3);
        let l2 = b(&["jx"], vec![tuple![5]]);
        let cross = l2.natural_join(&b(&["jw"], vec![tuple![7], tuple![8]]));
        assert_eq!(cross.len(), 2, "no shared vars means cross product");
    }

    #[test]
    fn natural_join_with_unit_is_identity() {
        let l = b(&["ux"], vec![tuple![1], tuple![2]]);
        assert_eq!(l.natural_join(&Bindings::unit()), l);
        assert_eq!(Bindings::unit().natural_join(&l), l);
    }

    #[test]
    fn shaped_join_matches_unshaped_and_reuses_scratch() {
        let l = b(&["jx", "jy"], vec![tuple![1, 10], tuple![2, 20]]);
        let r = b(&["jy", "jz"], vec![tuple![10, 100], tuple![20, 200]]);
        let shape = JoinShape::compute(l.vars(), r.vars());
        let mut scratch = Scratch::new();
        let shaped = l.natural_join_shaped(&r, &shape, &mut scratch);
        assert_eq!(shaped, l.natural_join(&r));
        assert_eq!(scratch.high_water(), 1, "one shared join-key column");
    }

    #[test]
    fn semijoin_antijoin() {
        let l = b(&["sx", "sy"], vec![tuple![1, 10], tuple![2, 20]]);
        let keys = b(&["sx"], vec![tuple![1]]);
        assert_eq!(l.semijoin(&keys).len(), 1);
        assert_eq!(l.antijoin(&keys).len(), 1);
    }

    #[test]
    fn project_and_project_away() {
        let l = b(&["px", "py"], vec![tuple![1, 10], tuple![2, 10]]);
        let p = l.project(&[var("py")]);
        assert_eq!(p.len(), 1, "deduplicated");
        assert_eq!(l.project_away(&[var("px")]), p);
    }

    #[test]
    fn sorted_rows_are_lexicographic() {
        let l = b(&["ox"], vec![tuple![3], tuple![1], tuple![2]]);
        let sorted: Vec<&Tuple> = l.sorted_rows();
        assert_eq!(sorted, vec![&tuple![1], &tuple![2], &tuple![3]]);
        assert_eq!(l.to_string(), "{[ox=1], [ox=2], [ox=3]}");
    }

    #[test]
    fn extend_const_inserts_sorted() {
        let l = b(&["ex"], vec![tuple![1]]);
        let e = l.extend_const(var("ey"), Value::Int(9));
        assert_eq!(e.vars().len(), 2);
        let col = e.position(var("ey")).unwrap();
        for r in e.rows() {
            assert_eq!(r[col], Value::Int(9));
        }
    }

    fn rel(rows: Vec<Tuple>) -> Relation {
        Relation::from_tuples(Schema::of(&[("a", Sort::Int), ("b", Sort::Int)]), rows).unwrap()
    }

    #[test]
    fn join_atom_binds_new_vars() {
        let r = rel(vec![tuple![1, 10], tuple![2, 20]]);
        let out = Bindings::unit().join_atom(&r, &[Term::var("ja"), Term::var("jb")]);
        assert_eq!(out.len(), 2);
        assert_eq!(out.vars().len(), 2);
    }

    #[test]
    fn join_atom_respects_bound_vars() {
        let r = rel(vec![tuple![1, 10], tuple![2, 20]]);
        let input = b(&["ka"], vec![tuple![1]]);
        let out = input.join_atom(&r, &[Term::var("ka"), Term::var("kb")]);
        assert_eq!(out.len(), 1);
        let row = out.rows().next().unwrap();
        assert_eq!(row[out.position(var("kb")).unwrap()], Value::Int(10));
    }

    #[test]
    fn join_atom_checks_constants() {
        let r = rel(vec![tuple![1, 10], tuple![2, 20]]);
        let out = Bindings::unit().join_atom(&r, &[Term::int(2), Term::var("cb")]);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn join_atom_repeated_new_var_requires_equality() {
        let r = rel(vec![tuple![3, 3], tuple![4, 5]]);
        let out = Bindings::unit().join_atom(&r, &[Term::var("rv"), Term::var("rv")]);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn term_value_reads_consts_and_columns() {
        let l = b(&["tx"], vec![tuple![5]]);
        let row = l.rows().next().unwrap().clone();
        assert_eq!(l.term_value(&row, &Term::int(9)), Value::Int(9));
        assert_eq!(l.term_value(&row, &Term::var("tx")), Value::Int(5));
    }

    #[test]
    fn union_requires_same_vars() {
        let a = b(&["uv"], vec![tuple![1]]);
        let c = b(&["uv"], vec![tuple![2]]);
        assert_eq!(a.union(&c).len(), 2);
    }

    #[test]
    #[should_panic(expected = "different variable sets")]
    fn union_panics_on_mismatch() {
        let a = b(&["u1"], vec![]);
        let c = b(&["u2"], vec![]);
        let _ = a.union(&c);
    }
}
