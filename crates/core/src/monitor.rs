//! Online temporal *queries*: the checking machinery, read as answers
//! instead of violations.
//!
//! A denial constraint's violation witnesses are exactly the satisfying
//! assignments of its body — so the same bounded encoding that checks
//! constraints also answers standing Past MTL queries incrementally
//! ("which reservations were confirmed within 2 ticks of being made?").
//! [`QueryMonitor`] exposes that reading directly.
//!
//! ```
//! use rtic_core::QueryMonitor;
//! use rtic_relation::{tuple, Catalog, Schema, Sort, Update};
//! use rtic_temporal::parser::parse_formula;
//! use rtic_temporal::TimePoint;
//! use std::sync::Arc;
//!
//! let catalog = Arc::new(
//!     Catalog::new()
//!         .with("ping", Schema::of(&[("host", Sort::Str)]))
//!         .unwrap(),
//! );
//! let query = parse_formula("once[0,5] ping(h)").unwrap(); // hosts seen recently
//! let mut recent = QueryMonitor::new("recent_hosts", query, catalog).unwrap();
//! recent
//!     .step(TimePoint(1), &Update::new().with_insert("ping", tuple!["web1"]))
//!     .unwrap();
//! let answers = recent.step(TimePoint(4), &Update::new()).unwrap();
//! assert_eq!(answers.len(), 1); // web1's ping is 3 ticks old: still in [0,5]
//! ```

use std::sync::Arc;

use rtic_history::HistoryError;
use rtic_relation::{Catalog, Update};
use rtic_temporal::ast::{Formula, Var};
use rtic_temporal::{Constraint, TimePoint};

use crate::checker::Checker;
use crate::error::CompileError;
use crate::incremental::IncrementalChecker;
use crate::report::SpaceStats;
use crate::Bindings;

/// A standing temporal query, answered at every state.
#[derive(Clone, Debug)]
pub struct QueryMonitor {
    inner: IncrementalChecker,
}

impl QueryMonitor {
    /// Compiles `query` (a safe-range Past MTL formula; its free variables
    /// are the answer columns) against `catalog`.
    pub fn new(
        name: &str,
        query: Formula,
        catalog: Arc<Catalog>,
    ) -> Result<QueryMonitor, CompileError> {
        let inner = IncrementalChecker::new(Constraint::deny(name, query), catalog)?;
        Ok(QueryMonitor { inner })
    }

    /// The answer columns (the query's free variables, sorted).
    pub fn answer_vars(&self) -> Vec<Var> {
        self.inner.compiled().body.free_vars().into_iter().collect()
    }

    /// Advances to the new state and returns the assignments satisfying
    /// the query *at that state*.
    pub fn step(&mut self, time: TimePoint, update: &Update) -> Result<Bindings, HistoryError> {
        Ok(self.inner.step(time, update)?.violations)
    }

    /// What the monitor currently retains.
    pub fn space(&self) -> SpaceStats {
        self.inner.space()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtic_relation::{tuple, Schema, Sort};
    use rtic_temporal::parser::parse_formula;

    fn catalog() -> Arc<Catalog> {
        Arc::new(
            Catalog::new()
                .with("reserved", Schema::of(&[("p", Sort::Str)]))
                .unwrap()
                .with("confirmed", Schema::of(&[("p", Sort::Str)]))
                .unwrap(),
        )
    }

    #[test]
    fn answers_track_the_query() {
        // Who confirmed within 2 ticks of (still) being reserved?
        let q = parse_formula("reserved(p) && once[0,2] confirmed(p)").unwrap();
        let mut m = QueryMonitor::new("prompt_confirmers", q, catalog()).unwrap();
        assert_eq!(m.answer_vars().len(), 1);
        let a = m
            .step(
                TimePoint(1),
                &Update::new().with_insert("reserved", tuple!["ann"]),
            )
            .unwrap();
        assert!(a.is_empty());
        let a = m
            .step(
                TimePoint(2),
                &Update::new().with_insert("confirmed", tuple!["ann"]),
            )
            .unwrap();
        assert_eq!(a.len(), 1);
        // The confirmation event ages out of the window.
        m.step(
            TimePoint(3),
            &Update::new().with_delete("confirmed", tuple!["ann"]),
        )
        .unwrap();
        m.step(TimePoint(4), &Update::new()).unwrap();
        let a = m.step(TimePoint(5), &Update::new()).unwrap();
        assert!(a.is_empty(), "confirmation older than 2 ticks");
    }

    #[test]
    fn unsafe_queries_are_rejected() {
        let q = parse_formula("!reserved(p)").unwrap();
        assert!(QueryMonitor::new("bad", q, catalog()).is_err());
    }

    #[test]
    fn closed_queries_answer_yes_no() {
        let q = parse_formula("exists p . reserved(p)").unwrap();
        let mut m = QueryMonitor::new("any_reservation", q, catalog()).unwrap();
        assert!(m.answer_vars().is_empty());
        let a = m.step(TimePoint(1), &Update::new()).unwrap();
        assert!(a.is_empty(), "no ⇒ zero rows");
        let a = m
            .step(
                TimePoint(2),
                &Update::new().with_insert("reserved", tuple!["x"]),
            )
            .unwrap();
        assert_eq!(a.len(), 1, "yes ⇒ the unit row");
    }
}
