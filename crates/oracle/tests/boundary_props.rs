//! Boundary-case properties for the metric window operators: all checker
//! realizations must agree byte-for-byte exactly where off-by-one bugs
//! live — `[0,b]` (a == 0), point intervals `[a,a]` (a == b), bounds that
//! coincide with the formula's horizon, single-state histories, and clock
//! gaps that land exactly on / just past a bound.

use proptest::prelude::*;
use rtic_history::Transition;
use rtic_oracle::generate::case_catalog;
use rtic_oracle::{check_case, Case, Mode};
use rtic_relation::{tuple, Update};
use rtic_temporal::parser::parse_constraint;
use rtic_temporal::Constraint;

/// Constraint templates over the oracle catalog (`r0`/`r1` unary int),
/// one per window-operator shape. The two-interval template makes
/// bound == horizon exact whenever `{i}` and `{j}` draw the same bound.
const TEMPLATES: &[&str] = &[
    "r0(x) && prev{i} r1(x)",
    "r0(x) && once{i} r1(x)",
    "r0(x) && hist{i} r1(x)",
    "r1(x) since{i} r0(x)",
    "r0(x) && !once{i} r1(x)",
    "r0(x) && prev{i} r1(x) && once{j} r1(x)",
];

/// The boundary interval shapes, as a function of the bound `b`.
fn interval_text(shape: usize, b: u64) -> String {
    match shape {
        0 => "[0,0]".to_string(),
        1 => format!("[{b},{b}]"), // a == b
        2 => format!("[0,{b}]"),   // a == 0
        3 => format!("[1,{}]", b.max(1)),
        _ => format!("[{b},*]"),
    }
}

fn boundary_constraint(template: usize, shape_i: usize, shape_j: usize, b: u64) -> Constraint {
    let body = TEMPLATES[template]
        .replace("{i}", &interval_text(shape_i, b))
        .replace("{j}", &interval_text(shape_j, b));
    parse_constraint(&format!("deny c: {body}")).expect("template parses")
}

/// One generated step: a gap-palette index plus `(relation, insert?, value)`
/// tuple operations.
type Step = (usize, Vec<(u8, bool, i64)>);

/// Builds a history whose gaps cluster around the bound `b`: one tick,
/// exactly `b`, one past `b` (window-expiring), and a huge gap.
fn history(b: u64, steps: &[Step]) -> Vec<Transition> {
    let mut t = 0u64;
    let mut out = Vec::new();
    for (k, (gap, changes)) in steps.iter().enumerate() {
        if k > 0 {
            t += [1, b.max(1), b + 1, 50][*gap];
        }
        let mut u = Update::new();
        for &(rel, ins, x) in changes {
            let name = if rel == 0 { "r0" } else { "r1" };
            if ins {
                u.insert(name, tuple![x]);
            } else {
                u.delete(name, tuple![x]);
            }
        }
        out.push(Transition::new(t, u));
    }
    out
}

fn assert_all_agree(constraint: Constraint, ts: Vec<Transition>) {
    let case = Case {
        index: 0,
        seed: 13, // fixes the stitch kill step
        catalog: case_catalog(),
        constraint,
        transitions: ts,
    };
    if let Some(d) = check_case(&case, &Mode::ALL) {
        panic!("boundary divergence on `{}`:\n{d}", case.constraint);
    }
}

proptest! {
    /// a == 0, a == b, bound == horizon, and gaps landing exactly on the
    /// bound and one past it: every realization agrees byte-for-byte.
    #[test]
    fn window_boundaries_agree_across_all_backends(
        template in 0..TEMPLATES.len(),
        shape_i in 0usize..5,
        shape_j in 0usize..5,
        b in 1u64..4,
        steps in proptest::collection::vec(
            (0usize..4, proptest::collection::vec((0u8..2, any::<bool>(), 0i64..2), 0..3)),
            1..10,
        ),
    ) {
        let c = boundary_constraint(template, shape_i, shape_j, b);
        // The history's gap palette is tied to this constraint's own
        // bound, so gaps hit b and b+1 exactly.
        assert_all_agree(c, history(b, &steps));
    }

    /// Single-state histories: the degenerate case where no previous
    /// state exists for prev/once/hist/since to look back into.
    #[test]
    fn single_state_histories_agree(
        template in 0..TEMPLATES.len(),
        shape_i in 0usize..5,
        shape_j in 0usize..5,
        b in 1u64..4,
        start in 0u64..3,
        fill in proptest::collection::vec((0u8..2, 0i64..2), 0..3),
    ) {
        let c = boundary_constraint(template, shape_i, shape_j, b);
        let mut u = Update::new();
        for (rel, x) in fill {
            u.insert(if rel == 0 { "r0" } else { "r1" }, tuple![x]);
        }
        assert_all_agree(c, vec![Transition::new(start, u)]);
    }

    /// Maximal clock gaps: every transition far beyond any window, so all
    /// bounded lookback expires between every pair of states.
    #[test]
    fn maximal_gap_histories_agree(
        template in 0..TEMPLATES.len(),
        shape_i in 0usize..5,
        shape_j in 0usize..5,
        b in 1u64..4,
        n in 1usize..6,
        x in 0i64..2,
    ) {
        let c = boundary_constraint(template, shape_i, shape_j, b);
        let ts: Vec<Transition> = (0..n)
            .map(|k| {
                let mut u = Update::new();
                u.insert(if k % 2 == 0 { "r1" } else { "r0" }, tuple![x]);
                Transition::new(k as u64 * 1_000_000, u)
            })
            .collect();
        assert_all_agree(c, ts);
    }
}
