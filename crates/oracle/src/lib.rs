//! # rtic-oracle — differential conformance oracle
//!
//! The paper's central claim is an *equivalence*: the bounded history
//! encoding reports exactly the violations that checking the full stored
//! history would report. This crate turns that claim into an always-on
//! test harness:
//!
//! 1. [`generate`] draws random well-formed Past-MTL constraints (seeded,
//!    size-bounded, biased toward metric-interval boundary values) and
//!    random histories (timestamp clusters, horizon-expiring clock gaps,
//!    relation churn, empty states).
//! 2. [`modes`] runs each case through every checker realization — naive
//!    reference, incremental, windowed, active, `ConstraintSet` sequential
//!    and parallel, and a kill-at-a-random-step checkpoint/resume stitch —
//!    and [`diff`] asserts byte-identical violation reports.
//! 3. On divergence, [`shrink`] minimizes both the history and the formula
//!    while preserving the disagreement, and [`repro`] serializes a
//!    self-contained repro file (seed + constraint text + log lines) for
//!    `tests/corpus/`.
//!
//! [`mutation`] closes the loop: it deliberately breaks a cloned checker
//! (off-by-one window, dropped quiescent steps) and asserts the oracle
//! catches each planted bug — evidence the oracle has teeth.
//!
//! The `rtic-oracle` binary drives all of this; see `docs/TESTING.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod corpus;
pub mod diff;
pub mod generate;
pub mod modes;
pub mod mutation;
pub mod repro;
pub mod shrink;

pub use diff::{check_case, Divergence};
pub use generate::{Case, GenConfig};
pub use modes::Mode;
pub use mutation::Mutant;
pub use repro::Repro;

/// Derives an independent child seed from a base seed and a stream index,
/// so every case (and every decision *within* a case) is a pure function
/// of `(seed, index)`. SplitMix64 finalizer — the same mixer the vendored
/// `rand` uses internally.
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(index.wrapping_mul(0x2545_f491_4f6c_dd1d));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_seeds_differ_per_index() {
        let a = derive_seed(42, 0);
        let b = derive_seed(42, 1);
        let c = derive_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, derive_seed(42, 0));
    }
}
