//! Self-contained repro files: one constraint + one history, replayable
//! on every backend with no other context.
//!
//! Layout (everything before the marker parses with
//! [`rtic_temporal::parser::parse_file`]; everything after parses with
//! [`rtic_history::log::parse_log`]):
//!
//! ```text
//! # rtic-oracle repro
//! # seed: 12345
//! # note: windowed vs naive
//! relation r0(a: int)
//! deny c3: r0(x) && once[0,2] r1(x)
//! --- log ---
//! @0 +r0(1)
//! @3
//! ```

use std::sync::Arc;

use rtic_history::log::{format_log, parse_log};
use rtic_history::Transition;
use rtic_relation::Catalog;
use rtic_temporal::parser::parse_file;
use rtic_temporal::Constraint;

/// The line separating the constraint half from the log half.
pub const LOG_MARKER: &str = "--- log ---";

/// A parsed (or to-be-written) repro file.
#[derive(Clone, Debug)]
pub struct Repro {
    /// The seed recorded in the header (0 when absent).
    pub seed: u64,
    /// Free-form provenance note (e.g. `windowed vs naive`).
    pub note: String,
    /// The relations in play.
    pub catalog: Arc<Catalog>,
    /// The constraint under test.
    pub constraint: Constraint,
    /// The history.
    pub transitions: Vec<Transition>,
}

impl Repro {
    /// Serializes to the repro text format.
    pub fn to_text(&self) -> String {
        let mut out = String::from("# rtic-oracle repro\n");
        out.push_str(&format!("# seed: {}\n", self.seed));
        if !self.note.is_empty() {
            out.push_str(&format!("# note: {}\n", self.note));
        }
        let mut names: Vec<_> = self.catalog.names().collect();
        names.sort();
        for name in names {
            if let Some(schema) = self.catalog.schema_of(name) {
                let attrs: Vec<String> =
                    schema.attributes().iter().map(|a| a.to_string()).collect();
                out.push_str(&format!("relation {name}({})\n", attrs.join(", ")));
            }
        }
        out.push_str(&format!("{}\n", self.constraint));
        out.push_str(LOG_MARKER);
        out.push('\n');
        out.push_str(&format_log(&self.transitions));
        out
    }

    /// Parses the repro text format.
    pub fn from_text(text: &str) -> Result<Repro, String> {
        let marker = format!("\n{LOG_MARKER}\n");
        let (head, log) = match text.split_once(&marker) {
            Some(parts) => parts,
            None => return Err(format!("missing `{LOG_MARKER}` marker line")),
        };
        let mut seed = 0u64;
        let mut note = String::new();
        for line in head.lines() {
            if let Some(v) = line.strip_prefix("# seed:") {
                seed = v.trim().parse().map_err(|e| format!("bad seed: {e}"))?;
            } else if let Some(v) = line.strip_prefix("# note:") {
                note = v.trim().to_string();
            }
        }
        let file = parse_file(head).map_err(|e| format!("constraint half: {e}"))?;
        let [constraint] = file.constraints.as_slice() else {
            return Err(format!(
                "expected exactly one constraint, found {}",
                file.constraints.len()
            ));
        };
        let transitions = parse_log(log).map_err(|e| format!("log half: {e}"))?;
        Ok(Repro {
            seed,
            note,
            catalog: Arc::new(file.catalog),
            constraint: constraint.clone(),
            transitions,
        })
    }

    /// Number of log lines the history serializes to (the shrink-quality
    /// figure the acceptance criteria bound).
    pub fn log_lines(&self) -> usize {
        format_log(&self.transitions).lines().count()
    }

    /// Replays the repro through `modes` (reference first), returning the
    /// first divergence.
    pub fn replay(&self, modes: &[crate::Mode]) -> Option<crate::Divergence> {
        let case = crate::Case {
            index: 0,
            seed: self.seed,
            catalog: Arc::clone(&self.catalog),
            constraint: self.constraint.clone(),
            transitions: self.transitions.clone(),
        };
        crate::check_case(&case, modes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{case, GenConfig};
    use crate::Mode;

    #[test]
    fn repro_round_trips_generated_cases() {
        let cfg = GenConfig::default();
        for i in 0..20 {
            let c = case(21, i, &cfg);
            let r = Repro {
                seed: c.seed,
                note: "round-trip".into(),
                catalog: Arc::clone(&c.catalog),
                constraint: c.constraint.clone(),
                transitions: c.transitions.clone(),
            };
            let parsed = Repro::from_text(&r.to_text()).expect("parses back");
            assert_eq!(parsed.seed, c.seed);
            assert_eq!(parsed.note, "round-trip");
            assert_eq!(parsed.constraint, c.constraint);
            assert_eq!(parsed.transitions, c.transitions);
        }
    }

    #[test]
    fn replay_of_a_healthy_case_is_clean() {
        let c = case(33, 0, &GenConfig::default());
        let r = Repro {
            seed: c.seed,
            note: String::new(),
            catalog: Arc::clone(&c.catalog),
            constraint: c.constraint,
            transitions: c.transitions,
        };
        assert!(r.replay(&Mode::ALL).is_none());
    }

    #[test]
    fn missing_marker_is_an_error() {
        assert!(
            Repro::from_text("relation r(a: int)\ndeny c: r(x) && r(x)\n")
                .unwrap_err()
                .contains("marker")
        );
    }
}
