//! The `rtic-oracle` binary: differential fuzzing, mutation smoke, and
//! corpus maintenance, with fully deterministic output.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

use rtic_oracle::generate::{case, GenConfig};
use rtic_oracle::modes::run_constraint;
use rtic_oracle::shrink::{shrink, ShrinkBudget};
use rtic_oracle::{check_case, corpus, mutation, Mode, Mutant, Repro};

const USAGE: &str = "\
rtic-oracle — differential conformance oracle (see docs/TESTING.md)

USAGE:
  rtic-oracle [--cases N] [--seed N] [--max-formula-depth N]
              [--backends LIST] [--corpus-dir DIR]
  rtic-oracle --mutation-smoke [--seed N] [--cases N]
  rtic-oracle --write-workload-corpus [--corpus-dir DIR]

MODES:
  (default)                fuzz: generate cases, run every backend, diff
                           against the naive reference; on divergence,
                           shrink and write a repro into --corpus-dir
  --mutation-smoke         self-check: plant known bugs (off-by-one
                           window, dropped quiescent steps) in a cloned
                           checker and prove the oracle catches each
  --write-workload-corpus  regenerate the golden corpus files derived
                           from the rtic-workload scenarios

OPTIONS:
  --cases N             cases to run (default 100; env RTIC_FUZZ_CASES
                        overrides the default, the flag wins)
  --seed N              base seed (default 42); every case is a pure
                        function of (seed, index)
  --max-formula-depth N max conjuncts per generated formula (default 4)
  --backends LIST       comma-separated subset to compare; first entry is
                        the reference (default: all, naive first)
  --corpus-dir DIR      where repro files live (default tests/corpus)
";

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_num<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    match flag_value(args, flag) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|e| format!("bad {flag} `{v}`: {e}")),
    }
}

fn parse_modes(args: &[String]) -> Result<Vec<Mode>, String> {
    match flag_value(args, "--backends") {
        None => Ok(Mode::ALL.to_vec()),
        Some(list) => {
            let mut out = Vec::new();
            for name in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                let m = Mode::parse(name).ok_or_else(|| {
                    format!("unknown backend `{name}` (expected {})", Mode::flag_help())
                })?;
                if !out.contains(&m) {
                    out.push(m);
                }
            }
            if out.len() < 2 {
                return Err("--backends needs at least two entries to compare".into());
            }
            Ok(out)
        }
    }
}

fn default_cases() -> usize {
    std::env::var("RTIC_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100)
}

fn fuzz(args: &[String]) -> Result<ExitCode, String> {
    let cases = parse_num(args, "--cases", default_cases())?;
    let seed: u64 = parse_num(args, "--seed", 42)?;
    let cfg = GenConfig {
        max_formula_depth: parse_num(args, "--max-formula-depth", 4)?,
        ..GenConfig::default()
    };
    let modes = parse_modes(args)?;
    let corpus_dir = PathBuf::from(flag_value(args, "--corpus-dir").unwrap_or("tests/corpus"));
    let mode_names: Vec<&str> = modes.iter().map(|m| m.name()).collect();
    println!(
        "oracle: {cases} case(s), seed {seed}, depth {}, backends {}",
        cfg.max_formula_depth,
        mode_names.join(",")
    );
    for i in 0..cases {
        let c = case(seed, i, &cfg);
        let Some(div) = check_case(&c, &modes) else {
            continue;
        };
        println!("case {i} (seed {}): {div}", c.seed);
        let reference = div.reference;
        let backend = div.backend;
        let (sc, sts) = shrink(
            &c.constraint,
            &c.transitions,
            &c.catalog,
            ShrinkBudget::default(),
            |cand, ts| {
                let a = run_constraint(reference, cand, &c.catalog, ts, c.seed);
                let b = run_constraint(backend, cand, &c.catalog, ts, c.seed);
                a != b
            },
        );
        let repro = Repro {
            seed: c.seed,
            note: format!("{} vs {}", backend.name(), reference.name()),
            catalog: Arc::clone(&c.catalog),
            constraint: sc,
            transitions: sts,
        };
        let path = corpus_dir.join(format!("div-{}-{i}.repro", seed));
        write_repro(&path, &repro)?;
        println!(
            "shrunk to {} log line(s); repro written to {}",
            repro.log_lines(),
            path.display()
        );
        println!("--- repro ---\n{}", repro.to_text());
        return Ok(ExitCode::FAILURE);
    }
    println!("oracle: {cases} case(s), 0 divergences");
    Ok(ExitCode::SUCCESS)
}

fn mutation_smoke(args: &[String]) -> Result<ExitCode, String> {
    let cases = parse_num(args, "--cases", 200usize)?;
    let seed: u64 = parse_num(args, "--seed", 42)?;
    let cfg = GenConfig::default();
    println!(
        "mutation-smoke: {} mutant(s), up to {cases} case(s) each, seed {seed}",
        Mutant::ALL.len()
    );
    let mut failed = false;
    for m in Mutant::ALL {
        match mutation::hunt(m, seed, cases, &cfg) {
            Ok(caught) => {
                println!(
                    "mutant {}: caught at case {} — shrunk to {} log line(s)",
                    m.name(),
                    caught.case_index,
                    caught.repro.log_lines()
                );
                println!("--- repro ---\n{}", caught.repro.to_text());
                if caught.repro.log_lines() > 10 {
                    println!("mutant {}: repro too large (> 10 log lines)", m.name());
                    failed = true;
                }
            }
            Err(e) => {
                println!("mutant {}: NOT CAUGHT — {e}", m.name());
                failed = true;
            }
        }
    }
    if failed {
        println!("mutation-smoke: FAILED");
        Ok(ExitCode::FAILURE)
    } else {
        println!("mutation-smoke: ok (every planted bug was caught)");
        Ok(ExitCode::SUCCESS)
    }
}

fn write_workload_corpus(args: &[String]) -> Result<ExitCode, String> {
    let corpus_dir = PathBuf::from(flag_value(args, "--corpus-dir").unwrap_or("tests/corpus"));
    for (stem, repro) in corpus::golden() {
        let path = corpus_dir.join(format!("{stem}.repro"));
        write_repro(&path, &repro)?;
        println!("wrote {}", path.display());
    }
    Ok(ExitCode::SUCCESS)
}

fn write_repro(path: &Path, repro: &Repro) -> Result<(), String> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
    }
    std::fs::write(path, repro.to_text()).map_err(|e| format!("write {}: {e}", path.display()))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let result = if args.iter().any(|a| a == "--mutation-smoke") {
        mutation_smoke(&args)
    } else if args.iter().any(|a| a == "--write-workload-corpus") {
        write_workload_corpus(&args)
    } else {
        fuzz(&args)
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("rtic-oracle: {e}");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
