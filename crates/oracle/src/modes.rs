//! The checker realizations a case is run through.
//!
//! Individual-backend modes come from the shared [`BackendId`] enumeration
//! in `rtic-core` (the same one the CLI and the bench tables use); the
//! fleet and checkpoint/resume modes are oracle-specific compositions on
//! top of [`ConstraintSet`].

use std::sync::Arc;

use rtic_active::ActiveChecker;
use rtic_core::{
    checkpoint, BackendId, Checker, ConstraintSet, EncodingOptions, IncrementalChecker,
    NaiveChecker, NopObserver, Parallelism, WindowedChecker,
};
use rtic_history::Transition;
use rtic_relation::Catalog;
use rtic_temporal::Constraint;

use crate::derive_seed;
use crate::generate::Case;

/// One way of checking a case end to end, producing canonical report lines.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// A single standalone checker from the shared backend enumeration.
    Single(BackendId),
    /// The naive checker evaluating its body through the compiled plan.
    /// The reference (`Single(Naive)`) runs the interpreting evaluator,
    /// so this entry diffs planned against interpreted execution over the
    /// very same history storage.
    NaivePlanned,
    /// The incremental checker forced back onto the interpreting
    /// evaluator (`EncodingOptions::interpret_eval`) — the converse
    /// plan-vs-interpret probe, through the bounded encoding.
    IncrementalInterpreted,
    /// [`ConstraintSet`] stepped sequentially (relevance dispatch on).
    SetSequential,
    /// [`ConstraintSet`] with [`Parallelism::Auto`] worker fan-out.
    SetParallel,
    /// Kill the fleet at a seed-derived step, checkpoint, restore into a
    /// fresh process image, and stitch the two report halves together.
    Stitch,
    /// [`ConstraintSet`] with the entity-key sharded data plane on, a
    /// seed-derived eviction horizon, and the same seed-derived
    /// kill+resume stitch as [`Mode::Stitch`] — but through the
    /// per-shard checkpoint sections, so resume rematerializes exactly
    /// the live shards. Sharded must be byte-identical to everything.
    FleetSharded,
    /// The incremental checker on the columnar (vectorized) evaluation
    /// path (`EncodingOptions::vectorize`) — block-backed joins and
    /// projections diffed against the interpreting reference.
    IncrementalVectorized,
    /// [`ConstraintSet`] on the vectorized path, ingesting the history
    /// through [`ConstraintSet::apply_batch`] in seed-derived chunk
    /// sizes — one run pins both columnar execution and batched
    /// ingestion against the line-at-a-time scalar reference.
    SetVectorizedBatched,
    /// [`Mode::FleetSharded`]'s kill+resume stitch with the vectorized
    /// path on across both halves: per-shard checkpoints written by a
    /// columnar fleet must restore into a columnar fleet byte-for-byte.
    FleetShardedVectorized,
}

impl Mode {
    /// Every mode, reference first. The naive checker re-evaluates the
    /// full stored history through the interpreting evaluator and is the
    /// semantics-defining baseline all other modes are diffed against.
    pub const ALL: [Mode; 13] = [
        Mode::Single(BackendId::Naive),
        Mode::Single(BackendId::Incremental),
        Mode::Single(BackendId::Windowed),
        Mode::Single(BackendId::Active),
        Mode::NaivePlanned,
        Mode::IncrementalInterpreted,
        Mode::SetSequential,
        Mode::SetParallel,
        Mode::Stitch,
        Mode::FleetSharded,
        Mode::IncrementalVectorized,
        Mode::SetVectorizedBatched,
        Mode::FleetShardedVectorized,
    ];

    /// The mode's `--backends` flag name.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Single(b) => b.name(),
            Mode::NaivePlanned => "naive-plan",
            Mode::IncrementalInterpreted => "inc-interp",
            Mode::SetSequential => "set",
            Mode::SetParallel => "set-par",
            Mode::Stitch => "stitch",
            Mode::FleetSharded => "fleet-sharded",
            Mode::IncrementalVectorized => "inc-vec",
            Mode::SetVectorizedBatched => "set-vec",
            Mode::FleetShardedVectorized => "fleet-sharded-vec",
        }
    }

    /// Parses a `--backends` list entry.
    pub fn parse(s: &str) -> Option<Mode> {
        Mode::ALL.into_iter().find(|m| m.name() == s)
    }

    /// The `a|b|c` listing for usage text.
    pub fn flag_help() -> String {
        let names: Vec<&str> = Mode::ALL.iter().map(|m| m.name()).collect();
        names.join("|")
    }

    /// Runs the case, returning one report line per
    /// constraint-step (the [`rtic_core::StepReport`] display form).
    /// Checker errors are surfaced as `Err` and treated as divergence.
    pub fn run(self, case: &Case) -> Result<Vec<String>, String> {
        run_constraint(
            self,
            &case.constraint,
            &case.catalog,
            &case.transitions,
            case.seed,
        )
    }
}

/// [`Mode::run`] for an explicit constraint/catalog/history triple — the
/// shrinker and mutation harness re-run candidates through this.
pub fn run_constraint(
    mode: Mode,
    constraint: &Constraint,
    catalog: &Arc<Catalog>,
    transitions: &[Transition],
    seed: u64,
) -> Result<Vec<String>, String> {
    match mode {
        Mode::Single(b) => {
            let checker = single_checker(b, constraint, catalog)?;
            run_single(checker, transitions)
        }
        Mode::NaivePlanned => {
            let err = |e: rtic_core::CompileError| format!("constraint `{}`: {e}", constraint.name);
            let checker =
                NaiveChecker::new(constraint.clone(), Arc::clone(catalog)).map_err(err)?;
            run_single(Box::new(checker), transitions)
        }
        Mode::IncrementalInterpreted => {
            let err = |e: rtic_core::CompileError| format!("constraint `{}`: {e}", constraint.name);
            let options = EncodingOptions {
                interpret_eval: true,
                ..Default::default()
            };
            let checker =
                IncrementalChecker::with_options(constraint.clone(), Arc::clone(catalog), options)
                    .map_err(err)?;
            run_single(Box::new(checker), transitions)
        }
        Mode::SetSequential => run_set(constraint, catalog, transitions, Parallelism::Sequential),
        Mode::SetParallel => run_set(constraint, catalog, transitions, Parallelism::Auto),
        Mode::Stitch => run_stitch(constraint, catalog, transitions, seed),
        Mode::FleetSharded => run_fleet_sharded(
            constraint,
            catalog,
            transitions,
            seed,
            EncodingOptions::default(),
        ),
        Mode::IncrementalVectorized => {
            let err = |e: rtic_core::CompileError| format!("constraint `{}`: {e}", constraint.name);
            let options = EncodingOptions {
                vectorize: true,
                ..Default::default()
            };
            let checker =
                IncrementalChecker::with_options(constraint.clone(), Arc::clone(catalog), options)
                    .map_err(err)?;
            run_single(Box::new(checker), transitions)
        }
        Mode::SetVectorizedBatched => run_set_batched(constraint, catalog, transitions, seed),
        Mode::FleetShardedVectorized => run_fleet_sharded(
            constraint,
            catalog,
            transitions,
            seed,
            EncodingOptions {
                vectorize: true,
                ..Default::default()
            },
        ),
    }
}

fn run_single(
    mut checker: Box<dyn Checker>,
    transitions: &[Transition],
) -> Result<Vec<String>, String> {
    let mut lines = Vec::with_capacity(transitions.len());
    for t in transitions {
        let report = checker.step(t.time, &t.update).map_err(|e| e.to_string())?;
        lines.push(report.to_string());
    }
    Ok(lines)
}

/// Constructs a standalone checker for a [`BackendId`] — the oracle-side
/// twin of the CLI's backend construction (the oracle depends on every
/// backend crate, so it can realize the whole enumeration). The naive
/// checker is built in interpreting mode: as the reference it must stay on
/// the semantics-defining evaluator, not the plans under test.
pub fn single_checker(
    b: BackendId,
    constraint: &Constraint,
    catalog: &Arc<Catalog>,
) -> Result<Box<dyn Checker>, String> {
    let c = constraint.clone();
    let cat = Arc::clone(catalog);
    let err = |e: rtic_core::CompileError| format!("constraint `{}`: {e}", constraint.name);
    Ok(match b {
        BackendId::Incremental => Box::new(IncrementalChecker::new(c, cat).map_err(err)?),
        BackendId::Naive => Box::new(NaiveChecker::new_interpreted(c, cat).map_err(err)?),
        BackendId::Windowed => Box::new(WindowedChecker::new(c, cat).map_err(err)?),
        BackendId::Active => Box::new(ActiveChecker::new(c, cat).map_err(err)?),
    })
}

fn run_set(
    constraint: &Constraint,
    catalog: &Arc<Catalog>,
    transitions: &[Transition],
    parallelism: Parallelism,
) -> Result<Vec<String>, String> {
    let mut set = ConstraintSet::new([constraint.clone()], Arc::clone(catalog))
        .map_err(|(c, e)| format!("constraint `{}`: {e}", c.name))?
        .with_parallelism(parallelism);
    let mut lines = Vec::with_capacity(transitions.len());
    for t in transitions {
        let reports = set.step(t.time, &t.update).map_err(|e| e.to_string())?;
        lines.extend(reports.iter().map(|r| r.to_string()));
    }
    Ok(lines)
}

/// [`Mode::SetVectorizedBatched`]: the columnar fleet fed through
/// [`ConstraintSet::apply_batch`] in a seed-derived chunk size (1..=8 —
/// small enough that most histories get several batches plus a ragged
/// tail). Report lines must be byte-identical to line-at-a-time scalar
/// stepping.
fn run_set_batched(
    constraint: &Constraint,
    catalog: &Arc<Catalog>,
    transitions: &[Transition],
    seed: u64,
) -> Result<Vec<String>, String> {
    let chunk = 1 + (derive_seed(seed, 0xBA7C) % 8) as usize;
    let options = EncodingOptions {
        vectorize: true,
        ..Default::default()
    };
    let mut set = ConstraintSet::with_options([constraint.clone()], Arc::clone(catalog), options)
        .map_err(|(c, e)| format!("constraint `{}`: {e}", c.name))?;
    let batch: Vec<_> = transitions
        .iter()
        .map(|t| (t.time, t.update.clone()))
        .collect();
    let mut lines = Vec::with_capacity(transitions.len());
    for chunk in batch.chunks(chunk) {
        let per_line = set
            .apply_batch(chunk, &mut NopObserver)
            .map_err(|e| e.to_string())?;
        for reports in &per_line {
            lines.extend(reports.iter().map(|r| r.to_string()));
        }
    }
    Ok(lines)
}

/// Picks the seed-derived kill step for [`Mode::Stitch`]: some step
/// strictly inside the history (1..len), or 0 for single-step histories
/// (restore-before-first-step).
pub fn stitch_kill_step(seed: u64, len: usize) -> usize {
    if len <= 1 {
        0
    } else {
        1 + (derive_seed(seed, 0xDEAD) % (len as u64 - 1)) as usize
    }
}

fn run_stitch(
    constraint: &Constraint,
    catalog: &Arc<Catalog>,
    transitions: &[Transition],
    seed: u64,
) -> Result<Vec<String>, String> {
    let kill = stitch_kill_step(seed, transitions.len());
    let mut set = ConstraintSet::new([constraint.clone()], Arc::clone(catalog))
        .map_err(|(c, e)| format!("constraint `{}`: {e}", c.name))?;
    let mut lines = Vec::with_capacity(transitions.len());
    for t in &transitions[..kill] {
        let reports = set.step(t.time, &t.update).map_err(|e| e.to_string())?;
        lines.extend(reports.iter().map(|r| r.to_string()));
    }
    // "Crash": drop the live set, keeping only the serialized checkpoint,
    // then restore into a fresh fleet and finish the history.
    let sections: Vec<String> = checkpoint::save_set(&set)
        .into_iter()
        .map(|(_, text)| text)
        .collect();
    drop(set);
    let mut resumed = checkpoint::restore_set([constraint.clone()], Arc::clone(catalog), &sections)
        .map_err(|e| format!("restore: {e}"))?;
    for t in &transitions[kill..] {
        let reports = resumed.step(t.time, &t.update).map_err(|e| e.to_string())?;
        lines.extend(reports.iter().map(|r| r.to_string()));
    }
    Ok(lines)
}

/// [`Mode::FleetSharded`]: the sharded data plane under the harshest
/// composition — a seed-derived eviction horizon (1..=4 steps, tight
/// enough to churn shards on most histories) and a kill+resume stitch at
/// a seed-derived step, restored through the per-shard checkpoint
/// sections with sharding re-enabled.
fn run_fleet_sharded(
    constraint: &Constraint,
    catalog: &Arc<Catalog>,
    transitions: &[Transition],
    seed: u64,
    options: EncodingOptions,
) -> Result<Vec<String>, String> {
    let kill = stitch_kill_step(derive_seed(seed, 0x5A4D), transitions.len());
    let horizon = 1 + (derive_seed(seed, 0xE71C) % 4) as u32;
    let mut set = ConstraintSet::with_options([constraint.clone()], Arc::clone(catalog), options)
        .map_err(|(c, e)| format!("constraint `{}`: {e}", c.name))?
        .with_sharding(true);
    set.set_shard_eviction(horizon);
    let mut lines = Vec::with_capacity(transitions.len());
    for t in &transitions[..kill] {
        let reports = set.step(t.time, &t.update).map_err(|e| e.to_string())?;
        lines.extend(reports.iter().map(|r| r.to_string()));
    }
    let sections: Vec<String> = checkpoint::save_set(&set)
        .into_iter()
        .map(|(_, text)| text)
        .collect();
    drop(set);
    let mut resumed = checkpoint::restore_set_sharded(
        [constraint.clone()],
        Arc::clone(catalog),
        options,
        &sections,
        true,
    )
    .map_err(|e| format!("sharded restore: {e}"))?;
    resumed.set_shard_eviction(horizon);
    for t in &transitions[kill..] {
        let reports = resumed.step(t.time, &t.update).map_err(|e| e.to_string())?;
        lines.extend(reports.iter().map(|r| r.to_string()));
    }
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{case, GenConfig};

    #[test]
    fn mode_names_round_trip() {
        for m in Mode::ALL {
            assert_eq!(Mode::parse(m.name()), Some(m));
        }
        assert_eq!(Mode::parse("bogus"), None);
        assert!(Mode::flag_help().starts_with("naive|incremental"));
    }

    #[test]
    fn kill_step_is_inside_the_history() {
        for len in [2usize, 3, 10, 100] {
            for seed in 0..20u64 {
                let k = stitch_kill_step(seed, len);
                assert!((1..len).contains(&k), "kill {k} outside 1..{len}");
            }
        }
        assert_eq!(stitch_kill_step(7, 1), 0);
    }

    #[test]
    fn all_modes_agree_on_a_sample_case() {
        let c = case(11, 0, &GenConfig::default());
        let reference = Mode::ALL[0].run(&c).expect("naive runs");
        for m in &Mode::ALL[1..] {
            assert_eq!(
                m.run(&c).expect("mode runs"),
                reference,
                "{} diverged",
                m.name()
            );
        }
    }
}
