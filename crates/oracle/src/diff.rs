//! Differential comparison: every mode against the reference, byte for
//! byte.

use std::fmt;

use crate::generate::Case;
use crate::modes::Mode;

/// A disagreement between two checker realizations on one case.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// The reference mode (normally `naive`).
    pub reference: Mode,
    /// The mode that disagreed.
    pub backend: Mode,
    /// The reference's report lines.
    pub expected: Vec<String>,
    /// The diverging mode's report lines (or a single error string).
    pub actual: Vec<String>,
}

impl Divergence {
    /// The first line index where the two runs differ (equal prefixes are
    /// common after shrinking).
    pub fn first_diff(&self) -> usize {
        let n = self.expected.len().min(self.actual.len());
        (0..n)
            .find(|&i| self.expected[i] != self.actual[i])
            .unwrap_or(n)
    }
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "divergence: {} vs {} (first differing report #{})",
            self.backend.name(),
            self.reference.name(),
            self.first_diff()
        )?;
        let i = self.first_diff();
        let at =
            |v: &[String], i: usize| v.get(i).map(String::as_str).unwrap_or("<end>").to_owned();
        writeln!(f, "  {}: {}", self.reference.name(), at(&self.expected, i))?;
        write!(f, "  {}: {}", self.backend.name(), at(&self.actual, i))
    }
}

/// Runs `case` through every mode in `modes` and compares each against the
/// first entry (the reference). Returns the first divergence, if any. A
/// mode that errors out diverges with its error text as the sole line.
pub fn check_case(case: &Case, modes: &[Mode]) -> Option<Divergence> {
    let (&reference, rest) = modes.split_first()?;
    let expected = match reference.run(case) {
        Ok(lines) => lines,
        Err(e) => vec![format!("<error: {e}>")],
    };
    for &m in rest {
        let actual = match m.run(case) {
            Ok(lines) => lines,
            Err(e) => vec![format!("<error: {e}>")],
        };
        if actual != expected {
            return Some(Divergence {
                reference,
                backend: m,
                expected,
                actual,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{case, GenConfig};

    #[test]
    fn healthy_backends_produce_no_divergence() {
        let cfg = GenConfig::default();
        for i in 0..25 {
            let c = case(5, i, &cfg);
            assert!(
                check_case(&c, &Mode::ALL).is_none(),
                "unexpected divergence on case {i}"
            );
        }
    }

    #[test]
    fn first_diff_points_at_the_disagreement() {
        let d = Divergence {
            reference: Mode::ALL[0],
            backend: Mode::ALL[1],
            expected: vec!["a".into(), "b".into(), "c".into()],
            actual: vec!["a".into(), "X".into(), "c".into()],
        };
        assert_eq!(d.first_diff(), 1);
        assert!(d.to_string().contains("first differing report #1"));
    }
}
