//! Counterexample minimization: shrink the history (ddmin over
//! transitions, then individual tuple operations) and the formula (drop
//! conjuncts, unwrap operators, push intervals toward boundaries) while
//! re-checking that the divergence persists at every step.

use std::sync::Arc;

use rtic_core::CompiledConstraint;
use rtic_history::Transition;
use rtic_relation::{Catalog, Update};
use rtic_temporal::{Constraint, Formula, Interval, UpperBound};

/// Caps the number of candidate re-runs a shrink may spend; each re-run
/// executes two full checker passes, so this bounds shrink latency.
#[derive(Clone, Copy, Debug)]
pub struct ShrinkBudget {
    /// Maximum predicate evaluations.
    pub max_checks: usize,
}

impl Default for ShrinkBudget {
    fn default() -> ShrinkBudget {
        ShrinkBudget { max_checks: 3000 }
    }
}

struct Shrinker<'a, F> {
    catalog: &'a Arc<Catalog>,
    diverges: F,
    checks_left: usize,
}

impl<F: FnMut(&Constraint, &[Transition]) -> bool> Shrinker<'_, F> {
    fn still_diverges(&mut self, c: &Constraint, ts: &[Transition]) -> bool {
        if self.checks_left == 0 {
            return false;
        }
        self.checks_left -= 1;
        (self.diverges)(c, ts)
    }

    /// ddmin-lite: remove chunks (halving sizes down to singles) as long
    /// as the divergence survives.
    fn shrink_transitions(&mut self, c: &Constraint, ts: &mut Vec<Transition>) {
        let mut chunk = (ts.len() / 2).max(1);
        loop {
            let mut i = 0;
            while i < ts.len() {
                let mut candidate = ts.clone();
                let end = (i + chunk).min(candidate.len());
                candidate.drain(i..end);
                if self.still_diverges(c, &candidate) {
                    *ts = candidate;
                } else {
                    i += chunk;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
    }

    /// Tries removing each tuple operation from each remaining update
    /// (an update can shrink to an empty pure tick).
    fn shrink_updates(&mut self, c: &Constraint, ts: &mut Vec<Transition>) {
        let mut i = 0;
        while i < ts.len() {
            let mut op = 0;
            while let Some(candidate_update) = remove_nth_op(&ts[i].update, op) {
                let mut candidate = ts.clone();
                candidate[i].update = candidate_update;
                if self.still_diverges(c, &candidate) {
                    *ts = candidate;
                    // Same index now names the next op; don't advance.
                } else {
                    op += 1;
                }
            }
            i += 1;
        }
    }

    /// Greedily applies the first formula rewrite that keeps the
    /// divergence alive, until none does.
    fn shrink_formula(&mut self, c: &mut Constraint, ts: &[Transition]) {
        loop {
            let mut improved = false;
            for body in candidates(&c.body) {
                let candidate = Constraint { body, ..c.clone() };
                if CompiledConstraint::compile(candidate.clone(), Arc::clone(self.catalog)).is_err()
                {
                    continue;
                }
                if self.still_diverges(&candidate, ts) {
                    *c = candidate;
                    improved = true;
                    break;
                }
            }
            if !improved || self.checks_left == 0 {
                break;
            }
        }
    }
}

/// Minimizes `(constraint, transitions)` while `diverges` stays true.
/// `diverges` must be true of the input; the result is a local minimum
/// (no single remaining rewrite preserves the divergence) within budget.
pub fn shrink(
    constraint: &Constraint,
    transitions: &[Transition],
    catalog: &Arc<Catalog>,
    budget: ShrinkBudget,
    diverges: impl FnMut(&Constraint, &[Transition]) -> bool,
) -> (Constraint, Vec<Transition>) {
    let mut s = Shrinker {
        catalog,
        diverges,
        checks_left: budget.max_checks,
    };
    let mut c = constraint.clone();
    let mut ts = transitions.to_vec();
    loop {
        let before = (measure(&c.body), ts.len(), ops(&ts));
        s.shrink_transitions(&c, &mut ts);
        s.shrink_updates(&c, &mut ts);
        s.shrink_formula(&mut c, &ts);
        let after = (measure(&c.body), ts.len(), ops(&ts));
        if after >= before || s.checks_left == 0 {
            break;
        }
    }
    (c, ts)
}

fn ops(ts: &[Transition]) -> usize {
    ts.iter().map(|t| t.update.len()).sum()
}

/// Rebuilds `update` without its `n`-th tuple operation (deletes first,
/// then inserts, both in deterministic order); `None` once `n` runs off
/// the end.
fn remove_nth_op(update: &Update, n: usize) -> Option<Update> {
    let mut out = Update::new();
    let mut idx = 0;
    let mut removed = false;
    for (rel, tuples) in update.deletes() {
        for t in tuples {
            if idx == n {
                removed = true;
            } else {
                out.delete(rel, t.clone());
            }
            idx += 1;
        }
    }
    for (rel, tuples) in update.inserts() {
        for t in tuples {
            if idx == n {
                removed = true;
            } else {
                out.insert(rel, t.clone());
            }
            idx += 1;
        }
    }
    removed.then_some(out)
}

/// A strictly decreasing measure over the rewrites [`candidates`]
/// proposes: node count dominates, interval bounds break ties (so
/// bound-tightening rewrites make progress even at constant size).
fn measure(f: &Formula) -> usize {
    let mut bounds = 0usize;
    f.visit(&mut |g| {
        if let Formula::Prev(i, _)
        | Formula::Once(i, _)
        | Formula::Hist(i, _)
        | Formula::Since(i, ..) = g
        {
            bounds += interval_weight(i);
        }
    });
    f.size() * 1000 + bounds
}

fn interval_weight(i: &Interval) -> usize {
    let hi = match i.hi() {
        UpperBound::Finite(d) => d.0 as usize,
        UpperBound::Infinite => 0,
    };
    i.lo().0 as usize + hi
}

fn interval_candidates(i: &Interval) -> Vec<Interval> {
    let lo = i.lo().0;
    let mut out = Vec::new();
    match i.hi() {
        UpperBound::Finite(h) => {
            if lo > 0 {
                out.push(Interval::up_to(h.0));
            }
            if h.0 > lo {
                out.push(Interval::exactly(lo));
            }
        }
        UpperBound::Infinite => {
            if lo > 0 {
                out.push(Interval::all());
            }
        }
    }
    out
}

/// All single-step simplifications of `f`: dropping a conjunct or
/// disjunct, unwrapping an operator, or tightening one interval. Every
/// candidate strictly reduces [`measure`], so greedy application
/// terminates. Candidates may be unsafe — the caller compile-checks.
fn candidates(f: &Formula) -> Vec<Formula> {
    let mut out = Vec::new();
    match f {
        Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) => {
            out.push((**a).clone());
            out.push((**b).clone());
            let rebuild: fn(Box<Formula>, Box<Formula>) -> Formula = match f {
                Formula::And(..) => Formula::And,
                Formula::Or(..) => Formula::Or,
                _ => Formula::Implies,
            };
            for ca in candidates(a) {
                out.push(rebuild(Box::new(ca), b.clone()));
            }
            for cb in candidates(b) {
                out.push(rebuild(a.clone(), Box::new(cb)));
            }
        }
        Formula::Not(g) => {
            out.push((**g).clone());
            for c in candidates(g) {
                out.push(Formula::Not(Box::new(c)));
            }
        }
        Formula::Exists(vs, g) => {
            out.push((**g).clone());
            for c in candidates(g) {
                out.push(Formula::Exists(vs.clone(), Box::new(c)));
            }
        }
        Formula::Forall(vs, g) => {
            out.push((**g).clone());
            for c in candidates(g) {
                out.push(Formula::Forall(vs.clone(), Box::new(c)));
            }
        }
        Formula::Prev(i, g) | Formula::Once(i, g) | Formula::Hist(i, g) => {
            out.push((**g).clone());
            let rebuild: fn(Interval, Box<Formula>) -> Formula = match f {
                Formula::Prev(..) => Formula::Prev,
                Formula::Once(..) => Formula::Once,
                _ => Formula::Hist,
            };
            for ni in interval_candidates(i) {
                out.push(rebuild(ni, g.clone()));
            }
            for c in candidates(g) {
                out.push(rebuild(*i, Box::new(c)));
            }
        }
        Formula::Since(i, lhs, anchor) => {
            out.push((**lhs).clone());
            out.push((**anchor).clone());
            for ni in interval_candidates(i) {
                out.push(Formula::Since(ni, lhs.clone(), anchor.clone()));
            }
            for c in candidates(lhs) {
                out.push(Formula::Since(*i, Box::new(c), anchor.clone()));
            }
            for c in candidates(anchor) {
                out.push(Formula::Since(*i, lhs.clone(), Box::new(c)));
            }
        }
        Formula::CountCmp {
            vars,
            body,
            op,
            threshold,
        } => {
            for c in candidates(body) {
                out.push(Formula::CountCmp {
                    vars: vars.clone(),
                    body: Box::new(c),
                    op: *op,
                    threshold: *threshold,
                });
            }
        }
        Formula::True | Formula::False | Formula::Atom { .. } | Formula::Cmp(..) => {}
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtic_history::gen::{schedule, GapKind};
    use rtic_relation::tuple;
    use rtic_temporal::{Term, TimePoint};

    use crate::generate::case_catalog;

    fn noisy_history() -> Vec<Transition> {
        let times = schedule(TimePoint(0), 12, |_| GapKind::Cluster);
        times
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                let mut u = Update::new();
                u.insert("r0", tuple![i as i64 % 3]);
                u.insert("r1", tuple![i as i64 % 2]);
                Transition::new(t, u)
            })
            .collect()
    }

    #[test]
    fn shrinks_to_the_relevant_core() {
        let catalog = case_catalog();
        // "Divergence" stand-in: any history that still inserts r0(1)
        // under a constraint still mentioning r0.
        let c = Constraint::deny(
            "t",
            Formula::atom("r0", [Term::var("x")])
                .and(Formula::atom("r1", [Term::var("x")]).once(Interval::up_to(5))),
        );
        let ts = noisy_history();
        let (sc, sts) = shrink(&c, &ts, &catalog, ShrinkBudget::default(), |c, ts| {
            c.body
                .relations()
                .contains(&rtic_relation::Symbol::intern("r0"))
                && ts.iter().any(|t| {
                    t.update
                        .inserts()
                        .any(|(r, tuples)| r.as_str() == "r0" && tuples.contains(&tuple![1i64]))
                })
        });
        assert_eq!(sts.len(), 1, "history should shrink to one transition");
        assert_eq!(ops(&sts), 1, "update should shrink to one op");
        assert!(sc.body.size() < c.body.size(), "formula should shrink");
    }

    #[test]
    fn interval_candidates_strictly_reduce_weight() {
        for i in [
            Interval::bounded(2, 5).expect("valid"),
            Interval::at_least(3),
            Interval::up_to(4),
        ] {
            for c in interval_candidates(&i) {
                assert!(interval_weight(&c) < interval_weight(&i));
            }
        }
        assert!(interval_candidates(&Interval::all()).is_empty());
        assert!(interval_candidates(&Interval::exactly(0)).is_empty());
    }

    #[test]
    fn remove_nth_op_enumerates_every_op() {
        let mut u = Update::new();
        u.insert("r0", tuple![1i64]);
        u.insert("r1", tuple![2i64]);
        u.delete("r0", tuple![3i64]);
        assert_eq!(u.len(), 3);
        for n in 0..3 {
            let smaller = remove_nth_op(&u, n).expect("op exists");
            assert_eq!(smaller.len(), 2);
        }
        assert!(remove_nth_op(&u, 3).is_none());
    }
}
