//! The golden corpus: the hand-written cross-checker workloads folded
//! into replayable repro files.
//!
//! `tests/cross_checker_workloads.rs` used to be the only cross-backend
//! agreement check; its scenarios now live as `tests/corpus/*.repro`
//! files generated here (one file per workload constraint), so the same
//! regression test that replays minimized fuzz counterexamples also
//! replays the domain workloads on every backend.

use std::sync::Arc;

use rtic_workload::{Audit, Generated, Library, Monitor, Reservations};

use crate::repro::Repro;

/// Steps per workload in the golden corpus — long enough to cross every
/// deadline in each scenario, short enough to replay in milliseconds.
pub const GOLDEN_STEPS: usize = 48;

/// Builds the golden corpus: `(file_stem, repro)` per workload constraint,
/// deterministic (the workload generators are internally seeded).
pub fn golden() -> Vec<(String, Repro)> {
    let workloads: Vec<(&str, Generated)> = vec![
        (
            "reservations",
            Reservations {
                steps: GOLDEN_STEPS,
                ..Default::default()
            }
            .generate(),
        ),
        (
            "library",
            Library {
                steps: GOLDEN_STEPS,
                ..Default::default()
            }
            .generate(),
        ),
        (
            "monitor",
            Monitor {
                steps: GOLDEN_STEPS,
                ..Default::default()
            }
            .generate(),
        ),
        (
            "audit",
            Audit {
                steps: GOLDEN_STEPS,
                ..Default::default()
            }
            .generate(),
        ),
    ];
    let mut out = Vec::new();
    for (name, g) in workloads {
        for c in &g.constraints {
            out.push((
                format!("golden-{name}-{}", c.name),
                Repro {
                    seed: 0,
                    note: format!("golden corpus: {name} workload, constraint {}", c.name),
                    catalog: Arc::clone(&g.catalog),
                    constraint: c.clone(),
                    transitions: g.transitions.clone(),
                },
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_corpus_is_deterministic_and_round_trips() {
        let a = golden();
        let b = golden();
        assert!(!a.is_empty());
        for ((na, ra), (nb, rb)) in a.iter().zip(&b) {
            assert_eq!(na, nb);
            assert_eq!(ra.to_text(), rb.to_text());
            let parsed = Repro::from_text(&ra.to_text()).expect("parses");
            assert_eq!(parsed.constraint, ra.constraint);
            assert_eq!(parsed.transitions, ra.transitions);
        }
    }
}
