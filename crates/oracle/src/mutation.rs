//! Mutation smoke: plant a known bug in a cloned checker and prove the
//! oracle catches it.
//!
//! An equivalence oracle that never fires is indistinguishable from one
//! that cannot fire. Each [`Mutant`] here is a deliberately broken checker
//! realization; the smoke harness fuzzes until the oracle flags it, then
//! shrinks the counterexample exactly as it would for a real bug.

use std::sync::Arc;

use rtic_core::{BackendId, Bindings, StepReport};
use rtic_history::Transition;
use rtic_relation::{Catalog, Symbol};
use rtic_temporal::{Constraint, Formula, Interval, UpperBound, Var};

use crate::generate::{case, GenConfig};
use crate::modes::{run_constraint, single_checker, Mode};
use crate::repro::Repro;
use crate::shrink::{shrink, ShrinkBudget};

/// A deliberately injected checker bug.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mutant {
    /// Every finite metric upper bound is widened by one — the classic
    /// window off-by-one.
    OffByOneWindow,
    /// Steps whose update touches none of the constraint's relations
    /// (including pure clock ticks) are skipped entirely instead of
    /// advancing the temporal state — a broken quiescent fast path.
    DroppedQuiescent,
}

impl Mutant {
    /// Every mutant.
    pub const ALL: [Mutant; 2] = [Mutant::OffByOneWindow, Mutant::DroppedQuiescent];

    /// Display/flag name.
    pub fn name(self) -> &'static str {
        match self {
            Mutant::OffByOneWindow => "off-by-one-window",
            Mutant::DroppedQuiescent => "dropped-quiescent",
        }
    }

    /// Runs the mutant checker over the history, producing report lines
    /// comparable with the healthy reference.
    pub fn run(
        self,
        constraint: &Constraint,
        catalog: &Arc<Catalog>,
        transitions: &[Transition],
    ) -> Result<Vec<String>, String> {
        match self {
            Mutant::OffByOneWindow => {
                let mutated = Constraint {
                    body: widen_finite_bounds(&constraint.body),
                    ..constraint.clone()
                };
                run_constraint(
                    Mode::Single(BackendId::Windowed),
                    &mutated,
                    catalog,
                    transitions,
                    0,
                )
            }
            Mutant::DroppedQuiescent => {
                let mut inner = single_checker(BackendId::Incremental, constraint, catalog)?;
                let relations = constraint.body.relations();
                let touches = |t: &Transition| {
                    t.update
                        .inserts()
                        .chain(t.update.deletes())
                        .any(|(rel, tuples)| !tuples.is_empty() && relations.contains(&rel))
                };
                let mut lines = Vec::with_capacity(transitions.len());
                for t in transitions {
                    if touches(t) {
                        let report = inner.step(t.time, &t.update).map_err(|e| e.to_string())?;
                        lines.push(report.to_string());
                    } else {
                        // The bug: pretend nothing can change and emit a
                        // fabricated "ok" without advancing the engine.
                        lines.push(
                            StepReport {
                                constraint: constraint.name,
                                time: t.time,
                                violations: Bindings::none(Vec::<Var>::new()),
                            }
                            .to_string(),
                        );
                    }
                }
                Ok(lines)
            }
        }
    }
}

/// `[a,b]` → `[a,b+1]` on every temporal operator; unbounded and
/// degenerate intervals are left alone.
fn widen_finite_bounds(f: &Formula) -> Formula {
    let widen = |i: &Interval| match i.hi() {
        UpperBound::Finite(h) => Interval::bounded(i.lo().0, h.0 + 1).unwrap_or(*i),
        UpperBound::Infinite => *i,
    };
    match f {
        Formula::True | Formula::False | Formula::Atom { .. } | Formula::Cmp(..) => f.clone(),
        Formula::Not(g) => Formula::Not(Box::new(widen_finite_bounds(g))),
        Formula::And(a, b) => Formula::And(
            Box::new(widen_finite_bounds(a)),
            Box::new(widen_finite_bounds(b)),
        ),
        Formula::Or(a, b) => Formula::Or(
            Box::new(widen_finite_bounds(a)),
            Box::new(widen_finite_bounds(b)),
        ),
        Formula::Implies(a, b) => Formula::Implies(
            Box::new(widen_finite_bounds(a)),
            Box::new(widen_finite_bounds(b)),
        ),
        Formula::Exists(vs, g) => Formula::Exists(vs.clone(), Box::new(widen_finite_bounds(g))),
        Formula::Forall(vs, g) => Formula::Forall(vs.clone(), Box::new(widen_finite_bounds(g))),
        Formula::Prev(i, g) => Formula::Prev(widen(i), Box::new(widen_finite_bounds(g))),
        Formula::Once(i, g) => Formula::Once(widen(i), Box::new(widen_finite_bounds(g))),
        Formula::Hist(i, g) => Formula::Hist(widen(i), Box::new(widen_finite_bounds(g))),
        Formula::Since(i, l, r) => Formula::Since(
            widen(i),
            Box::new(widen_finite_bounds(l)),
            Box::new(widen_finite_bounds(r)),
        ),
        Formula::CountCmp {
            vars,
            body,
            op,
            threshold,
        } => Formula::CountCmp {
            vars: vars.clone(),
            body: Box::new(widen_finite_bounds(body)),
            op: *op,
            threshold: *threshold,
        },
    }
}

/// Whether the mutant is a no-op on this constraint (e.g. no finite bound
/// to widen) — such cases can never expose the bug and are skipped.
pub fn mutation_applies(m: Mutant, constraint: &Constraint) -> bool {
    match m {
        Mutant::OffByOneWindow => widen_finite_bounds(&constraint.body) != constraint.body,
        Mutant::DroppedQuiescent => true,
    }
}

/// The outcome of hunting one mutant.
#[derive(Clone, Debug)]
pub struct MutationCatch {
    /// Which mutant was caught.
    pub mutant: Mutant,
    /// The case index that exposed it.
    pub case_index: usize,
    /// The shrunk counterexample.
    pub repro: Repro,
}

/// Fuzzes the mutant against the healthy naive reference until a case
/// exposes it, then shrinks. `Err` if `max_cases` cases go by silently —
/// which would mean the oracle cannot catch this class of bug.
pub fn hunt(
    m: Mutant,
    base_seed: u64,
    max_cases: usize,
    cfg: &GenConfig,
) -> Result<MutationCatch, String> {
    let reference = Mode::Single(BackendId::Naive);
    for i in 0..max_cases {
        let c = case(base_seed, i, cfg);
        if !mutation_applies(m, &c.constraint) {
            continue;
        }
        let expected = reference
            .run(&c)
            .map_err(|e| format!("reference failed: {e}"))?;
        let actual = m.run(&c.constraint, &c.catalog, &c.transitions);
        if actual.as_ref() == Ok(&expected) {
            continue;
        }
        // Caught. Shrink while the mutant keeps disagreeing with naive.
        let diverges = |cand: &Constraint, ts: &[Transition]| {
            if !mutation_applies(m, cand) {
                return false;
            }
            let healthy = run_constraint(reference, cand, &c.catalog, ts, 0);
            let broken = m.run(cand, &c.catalog, ts);
            match (healthy, broken) {
                (Ok(h), Ok(b)) => h != b,
                _ => false,
            }
        };
        let (sc, sts) = shrink(
            &c.constraint,
            &c.transitions,
            &c.catalog,
            ShrinkBudget::default(),
            diverges,
        );
        return Ok(MutationCatch {
            mutant: m,
            case_index: i,
            repro: Repro {
                seed: c.seed,
                note: format!("mutation-smoke {} vs naive", m.name()),
                catalog: Arc::clone(&c.catalog),
                constraint: sc,
                transitions: sts,
            },
        });
    }
    Err(format!(
        "mutant `{}` survived {max_cases} cases — the oracle failed its self-check",
        m.name()
    ))
}

/// The relations a constraint body reads, for tests.
pub fn body_relations(c: &Constraint) -> Vec<Symbol> {
    c.body.relations().into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_mutants_are_caught_quickly() {
        let cfg = GenConfig::default();
        for m in Mutant::ALL {
            let caught = hunt(m, 42, 200, &cfg).expect("mutant must be caught");
            assert!(
                caught.repro.log_lines() <= 10,
                "{}: shrunk repro has {} log lines",
                m.name(),
                caught.repro.log_lines()
            );
            // The shrunk counterexample must still expose the mutant.
            let healthy = run_constraint(
                Mode::Single(BackendId::Naive),
                &caught.repro.constraint,
                &caught.repro.catalog,
                &caught.repro.transitions,
                0,
            )
            .expect("healthy run");
            let broken = m
                .run(
                    &caught.repro.constraint,
                    &caught.repro.catalog,
                    &caught.repro.transitions,
                )
                .expect("mutant run");
            assert_ne!(healthy, broken);
        }
    }

    #[test]
    fn widening_is_identity_on_unbounded_intervals() {
        let f = rtic_temporal::Formula::atom("r0", [rtic_temporal::Term::var("x")])
            .once(Interval::all());
        assert_eq!(widen_finite_bounds(&f), f);
        let g = rtic_temporal::Formula::atom("r0", [rtic_temporal::Term::var("x")])
            .once(Interval::up_to(2));
        assert_ne!(widen_finite_bounds(&g), g);
    }
}
