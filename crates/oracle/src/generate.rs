//! Random Past-MTL constraints and histories, biased toward the places
//! real-time checkers break.
//!
//! Formulas are built as a generator atom conjoined with random temporal
//! and relational conjuncts, then validated through
//! [`CompiledConstraint::compile`] (which enforces the safe-range rules);
//! unsafe draws are retried deterministically. Metric intervals are biased
//! toward the boundary values the literature singles out: `0`, `a == b`
//! (point intervals), and bounds that coincide with the formula's horizon.
//! Histories mix dense timestamp clusters, horizon-expiring clock gaps,
//! relation churn against the live state, and empty updates (pure ticks).

use std::collections::BTreeSet;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtic_core::CompiledConstraint;
use rtic_history::gen::{schedule, GapKind};
use rtic_history::Transition;
use rtic_relation::{tuple, Catalog, Schema, Sort, Tuple, Update};
use rtic_temporal::analysis::Horizon;
use rtic_temporal::{var, CmpOp, Constraint, Formula, Interval, Term, TimePoint};

use crate::derive_seed;

/// Tuning knobs for case generation.
#[derive(Clone, Copy, Debug)]
pub struct GenConfig {
    /// Maximum number of conjuncts beyond the generator atom (also caps
    /// temporal nesting depth).
    pub max_formula_depth: usize,
    /// Maximum history length (transitions per case).
    pub max_steps: usize,
    /// Values are drawn from `0..domain`.
    pub domain: i64,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            max_formula_depth: 4,
            max_steps: 24,
            domain: 4,
        }
    }
}

/// One generated differential-test case: a constraint and a history over a
/// shared catalog, reproducible from `seed` alone.
#[derive(Clone, Debug)]
pub struct Case {
    /// Case index within its run.
    pub index: usize,
    /// The derived per-case seed (everything below is a function of it).
    pub seed: u64,
    /// The relations in play.
    pub catalog: Arc<Catalog>,
    /// The constraint under test.
    pub constraint: Constraint,
    /// The history to check.
    pub transitions: Vec<Transition>,
}

/// The fixed case catalog: two unary relations and one binary relation,
/// all over `int` (churn and comparisons need only one sort).
pub fn case_catalog() -> Arc<Catalog> {
    Arc::new(
        Catalog::new()
            .with("r0", Schema::of(&[("a", Sort::Int)]))
            .expect("fresh catalog accepts r0")
            .with("r1", Schema::of(&[("a", Sort::Int)]))
            .expect("fresh catalog accepts r1")
            .with("r2", Schema::of(&[("a", Sort::Int), ("b", Sort::Int)]))
            .expect("fresh catalog accepts r2"),
    )
}

const UNARY: [&str; 2] = ["r0", "r1"];

/// The small bound pool intervals draw from, heavily weighted toward 0
/// and adjacent values — off-by-one bugs live at small bounds.
const BOUNDS: [u64; 8] = [0, 0, 1, 1, 2, 3, 5, 8];

fn pick_bound(rng: &mut StdRng) -> u64 {
    BOUNDS[rng.gen_range(0..BOUNDS.len())]
}

/// Draws a metric interval with boundary bias: point intervals (`[0,0]`,
/// `[a,a]`), zero lower bounds, unbounded tails, and small finite spans.
pub fn boundary_interval(rng: &mut StdRng) -> Interval {
    match rng.gen_range(0u32..10) {
        0 => Interval::exactly(0),
        1 | 2 => Interval::exactly(pick_bound(rng)),
        3 | 4 => Interval::up_to(pick_bound(rng)),
        5 | 6 => {
            let a = pick_bound(rng);
            let b = a + pick_bound(rng);
            Interval::bounded(a, b).unwrap_or_else(|_| Interval::exactly(a))
        }
        7 => Interval::at_least(pick_bound(rng)),
        8 => Interval::all(),
        _ => Interval::up_to(1 + pick_bound(rng)),
    }
}

fn unary_atom(rng: &mut StdRng, v: &str) -> Formula {
    Formula::atom(UNARY[rng.gen_range(0..UNARY.len())], [Term::var(v)])
}

/// One random conjunct over variables already bound by the generator atom.
/// `binds_y` says whether `y` is in scope (base atom was binary).
fn conjunct(rng: &mut StdRng, cfg: &GenConfig, binds_y: bool) -> Formula {
    match rng.gen_range(0u32..9) {
        // once[I] a(x) — a temporal generator conjunct.
        0 => unary_atom(rng, "x").once(boundary_interval(rng)),
        // !once[I] a(x) — guarded negation (x bound by the base atom).
        1 => unary_atom(rng, "x").once(boundary_interval(rng)).not(),
        // prev[I] a(x).
        2 => unary_atom(rng, "x").prev(boundary_interval(rng)),
        // hist[I] a(x) — a filter; x is generator-bound.
        3 => unary_atom(rng, "x").hist(boundary_interval(rng)),
        // a(x) since[I] b(x) — lhs free vars ⊆ anchor free vars.
        4 => {
            let lhs = unary_atom(rng, "x");
            let anchor = unary_atom(rng, "x");
            lhs.since(boundary_interval(rng), anchor)
        }
        // Nested temporal: once[I] (prev[J] a(x)).
        5 => unary_atom(rng, "x")
            .prev(boundary_interval(rng))
            .once(boundary_interval(rng)),
        // Comparison against a constant (x is bound).
        6 => {
            let op = [CmpOp::Le, CmpOp::Ne, CmpOp::Lt][rng.gen_range(0..3usize)];
            Formula::cmp(op, Term::var("x"), Term::int(rng.gen_range(0..cfg.domain)))
        }
        // count z . r2(x, z) >= k (k ≥ 1: zero-satisfying counts are unsafe).
        7 => Formula::atom("r2", [Term::var("x"), Term::var("z")]).count_cmp(
            [var("z")],
            CmpOp::Ge,
            rng.gen_range(1..=2),
        ),
        // Balanced disjunction (both branches bind exactly {x}), or a
        // binary-relation conjunct when y is in scope.
        _ => {
            if binds_y && rng.gen_bool(0.5) {
                Formula::atom("r2", [Term::var("x"), Term::var("y")]).once(boundary_interval(rng))
            } else {
                Formula::atom("r0", [Term::var("x")]).or(Formula::atom("r1", [Term::var("x")]))
            }
        }
    }
}

/// Builds one random safe denial constraint. Candidates that fail
/// safe-range compilation are redrawn (deterministically); after a bounded
/// number of attempts a known-safe fallback is used.
pub fn random_constraint(
    rng: &mut StdRng,
    cfg: &GenConfig,
    catalog: &Arc<Catalog>,
    name: &str,
) -> Constraint {
    for _ in 0..64 {
        let binary_base = rng.gen_bool(0.4);
        let base = if binary_base {
            Formula::atom("r2", [Term::var("x"), Term::var("y")])
        } else {
            unary_atom(rng, "x")
        };
        let extras = rng.gen_range(1..=cfg.max_formula_depth.max(1));
        let mut body = base;
        for _ in 0..extras {
            body = body.and(conjunct(rng, cfg, binary_base));
        }
        let candidate = Constraint::deny(name, body);
        if CompiledConstraint::compile(candidate.clone(), Arc::clone(catalog)).is_ok() {
            return candidate;
        }
    }
    // Safe under every rule: generator atom plus a bounded once.
    let fallback = Formula::atom("r0", [Term::var("x")])
        .and(Formula::atom("r1", [Term::var("x")]).once(Interval::up_to(2)));
    Constraint::deny(name, fallback)
}

/// The largest finite metric bound mentioned in the constraint (for
/// horizon-expiring gap sizing); falls back to 8 for unbounded bodies.
fn horizon_of(constraint: &Constraint, catalog: &Arc<Catalog>) -> u64 {
    match CompiledConstraint::compile(constraint.clone(), Arc::clone(catalog)) {
        Ok(c) => match c.horizon {
            Horizon::Finite(d) => d.0.max(1),
            Horizon::Unbounded => 8,
        },
        Err(_) => 8,
    }
}

/// Generates a random history: clustered timestamps with occasional
/// horizon-expiring gaps, inserts/deletes churning against the live
/// relation contents, and empty updates (pure clock ticks).
pub fn random_history(
    rng: &mut StdRng,
    cfg: &GenConfig,
    catalog: &Arc<Catalog>,
    horizon: u64,
) -> Vec<Transition> {
    let steps = rng.gen_range(1..=cfg.max_steps.max(1));
    let start = TimePoint(rng.gen_range(0u64..=2));
    let mut gaps: Vec<GapKind> = Vec::new();
    for _ in 0..steps {
        gaps.push(match rng.gen_range(0u32..10) {
            0..=4 => GapKind::Cluster,
            5..=7 => GapKind::Step(rng.gen_range(1..=3)),
            _ => GapKind::BeyondHorizon {
                horizon,
                extra: rng.gen_range(0..=2),
            },
        });
    }
    let times = schedule(start, steps, |i| gaps[i]);

    let names: Vec<(rtic_relation::Symbol, usize)> = {
        let mut v: Vec<_> = catalog
            .names()
            .map(|n| {
                let arity = catalog.schema_of(n).map(|s| s.arity()).unwrap_or(1);
                (n, arity)
            })
            .collect();
        v.sort();
        v
    };
    // Live contents per relation, mirrored so deletes can target tuples
    // that are actually present (real churn, not no-op deletes).
    let mut live: Vec<BTreeSet<Tuple>> = names.iter().map(|_| BTreeSet::new()).collect();

    let mut out = Vec::with_capacity(steps);
    for t in times {
        let mut update = Update::new();
        if !rng.gen_bool(0.15) {
            for _ in 0..rng.gen_range(1..=3) {
                let ri = rng.gen_range(0..names.len());
                let (name, arity) = names[ri];
                let delete_existing = !live[ri].is_empty() && rng.gen_bool(0.35);
                if delete_existing {
                    let k = rng.gen_range(0..live[ri].len());
                    let victim = live[ri]
                        .iter()
                        .nth(k)
                        .cloned()
                        .expect("index within live set");
                    update.delete(name, victim.clone());
                    live[ri].remove(&victim);
                } else {
                    let tup = if arity == 1 {
                        tuple![rng.gen_range(0..cfg.domain)]
                    } else {
                        tuple![rng.gen_range(0..cfg.domain), rng.gen_range(0..cfg.domain)]
                    };
                    update.insert(name, tup.clone());
                    live[ri].insert(tup);
                }
            }
        }
        out.push(Transition::new(t, update));
    }
    out
}

/// Builds case `index` of the run seeded by `base_seed`.
pub fn case(base_seed: u64, index: usize, cfg: &GenConfig) -> Case {
    let seed = derive_seed(base_seed, index as u64);
    let mut rng = StdRng::seed_from_u64(seed);
    let catalog = case_catalog();
    let name = format!("c{index}");
    let constraint = random_constraint(&mut rng, cfg, &catalog, &name);
    let horizon = horizon_of(&constraint, &catalog);
    let transitions = random_history(&mut rng, cfg, &catalog, horizon);
    Case {
        index,
        seed,
        catalog,
        constraint,
        transitions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic() {
        let cfg = GenConfig::default();
        let a = case(42, 7, &cfg);
        let b = case(42, 7, &cfg);
        assert_eq!(a.constraint, b.constraint);
        assert_eq!(a.transitions, b.transitions);
        let c = case(42, 8, &cfg);
        assert!(c.constraint != a.constraint || c.transitions != a.transitions);
    }

    #[test]
    fn generated_constraints_compile() {
        let cfg = GenConfig::default();
        for i in 0..50 {
            let c = case(1, i, &cfg);
            CompiledConstraint::compile(c.constraint.clone(), Arc::clone(&c.catalog))
                .expect("generated constraint must be safe");
        }
    }

    #[test]
    fn histories_are_strictly_increasing_and_apply_cleanly() {
        let cfg = GenConfig::default();
        for i in 0..50 {
            let c = case(3, i, &cfg);
            let mut db = rtic_relation::Database::new(Arc::clone(&c.catalog));
            let mut last = None;
            for t in &c.transitions {
                if let Some(prev) = last {
                    assert!(t.time > prev);
                }
                last = Some(t.time);
                db.apply(&t.update).expect("update applies");
            }
        }
    }

    #[test]
    fn interval_bias_hits_boundaries() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut point = 0;
        let mut zero_lo = 0;
        for _ in 0..500 {
            let i = boundary_interval(&mut rng);
            if let rtic_temporal::UpperBound::Finite(h) = i.hi() {
                if h == i.lo() {
                    point += 1;
                }
            }
            if i.lo().0 == 0 {
                zero_lo += 1;
            }
        }
        assert!(point > 50, "point intervals should be common, got {point}");
        assert!(
            zero_lo > 150,
            "zero lower bounds should be common, got {zero_lo}"
        );
    }
}
