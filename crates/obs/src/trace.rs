//! Structured trace writer: one JSON line per step event.

use std::fs::{self, File};
use std::io::{self, BufWriter, Stderr, Write};
use std::path::{Path, PathBuf};

use rtic_core::{StepEvent, StepObserver};

use crate::json::Json;

/// Converts one event into its trace-line JSON document.
///
/// Every line carries `seq` (delivery order) and `event` (the kind name
/// from [`StepEvent::kind`]); the remaining fields are per-kind.
pub fn event_json(seq: u64, event: &StepEvent<'_>) -> Json {
    let base = Json::object().set("seq", seq).set("event", event.kind());
    match event {
        StepEvent::StepStart {
            checker,
            time,
            tuples,
        } => base
            .set("checker", *checker)
            .set("time", time.0)
            .set("tuples", *tuples),
        StepEvent::ConstraintEval {
            checker,
            constraint,
            time,
            violations,
            latency_ns,
        } => base
            .set("checker", *checker)
            .set("constraint", constraint.as_str())
            .set("time", time.0)
            .set("violations", *violations)
            .set("latency_ns", *latency_ns),
        StepEvent::Violation { checker, report } => base
            .set("checker", *checker)
            .set("constraint", report.constraint.as_str())
            .set("time", report.time.0)
            .set("violations", report.violation_count())
            .set("witnesses", format!("{}", report.violations)),
        StepEvent::StepEnd {
            checker,
            time,
            violations,
            latency_ns,
        } => base
            .set("checker", *checker)
            .set("time", time.0)
            .set("violations", *violations)
            .set("latency_ns", *latency_ns),
        StepEvent::CheckpointSave { constraint, bytes } => base
            .set("constraint", constraint.as_str())
            .set("bytes", *bytes),
        StepEvent::CheckpointRestore { constraint, bytes } => base
            .set("constraint", constraint.as_str())
            .set("bytes", *bytes),
        StepEvent::ConstraintQuarantined {
            checker,
            constraint,
            time,
            detail,
        } => base
            .set("checker", *checker)
            .set("constraint", constraint.as_str())
            .set("time", time.0)
            .set("detail", detail.as_str()),
        StepEvent::CheckpointFallback { path, detail } => base
            .set("path", path.as_str())
            .set("detail", detail.as_str()),
        StepEvent::BadLine { line, detail } => base
            .set("line", *line as u64)
            .set("detail", detail.as_str()),
        StepEvent::PlanStatsSample {
            checker,
            constraint,
            stats,
        } => base
            .set("checker", *checker)
            .set("constraint", constraint.as_str())
            .set("plan_nodes", stats.plan.nodes)
            .set("atom_shapes", stats.plan.atom_shapes)
            .set("join_shapes", stats.plan.join_shapes)
            .set("probe_nodes", stats.plan.probe_nodes)
            .set("cached_nodes", stats.plan.cached_nodes)
            .set("scratch_high_water", stats.scratch_high_water),
        StepEvent::SpaceSample {
            checker,
            constraint,
            time,
            step_index,
            stats,
        } => base
            .set("checker", *checker)
            .set("constraint", constraint.as_str())
            .set("time", time.0)
            .set("step", *step_index)
            .set("aux_keys", stats.aux_keys)
            .set("aux_timestamps", stats.aux_timestamps)
            .set("stored_states", stats.stored_states)
            .set("stored_tuples", stats.stored_tuples)
            .set("retained_units", stats.retained_units()),
    }
}

enum Sink {
    File {
        writer: BufWriter<File>,
        tmp: PathBuf,
        dest: PathBuf,
    },
    Stderr(Stderr),
    Memory(Vec<u8>),
}

impl Sink {
    fn write_line(&mut self, line: &str) -> io::Result<()> {
        match self {
            Sink::File { writer, .. } => writeln!(writer, "{line}"),
            Sink::Stderr(w) => writeln!(w, "{line}"),
            Sink::Memory(buf) => writeln!(buf, "{line}"),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Sink::File { writer, .. } => writer.flush(),
            Sink::Stderr(w) => w.flush(),
            Sink::Memory(_) => Ok(()),
        }
    }
}

/// A [`StepObserver`] that appends one JSON line per event to a file,
/// stderr, or an in-memory buffer.
///
/// I/O errors after construction are counted, not propagated — tracing
/// must never fail the checking run. Call [`TraceWriter::finish`] to flush
/// and learn whether any write failed.
pub struct TraceWriter {
    sink: Sink,
    seq: u64,
    write_errors: u64,
}

impl TraceWriter {
    /// Traces to `path`. The lines accumulate in a same-directory
    /// `<path>.tmp` file; [`TraceWriter::finish`] flushes, fsyncs, and
    /// atomically renames it into place, so `path` only ever holds a
    /// complete trace — a crash mid-run leaves any previous trace at
    /// `path` untouched.
    pub fn to_file(path: impl AsRef<Path>) -> io::Result<TraceWriter> {
        let dest = path.as_ref().to_path_buf();
        let mut name = dest
            .file_name()
            .map(|n| n.to_os_string())
            .unwrap_or_else(|| "trace".into());
        name.push(".tmp");
        let tmp = dest.with_file_name(name);
        let file = File::create(&tmp)?;
        Ok(TraceWriter::with_sink(Sink::File {
            writer: BufWriter::new(file),
            tmp,
            dest,
        }))
    }

    /// Traces to stderr.
    pub fn to_stderr() -> TraceWriter {
        TraceWriter::with_sink(Sink::Stderr(io::stderr()))
    }

    /// Traces to an in-memory buffer (for tests; read back via `finish`).
    pub fn in_memory() -> TraceWriter {
        TraceWriter::with_sink(Sink::Memory(Vec::new()))
    }

    fn with_sink(sink: Sink) -> TraceWriter {
        TraceWriter {
            sink,
            seq: 0,
            write_errors: 0,
        }
    }

    /// Events written so far.
    pub fn lines_written(&self) -> u64 {
        self.seq
    }

    /// Flushes and consumes the writer, returning any buffered content
    /// (in-memory sink only) or an error if any write or the flush failed.
    /// For a file sink this is also the commit point: the temp file is
    /// fsynced and renamed over the destination.
    pub fn finish(mut self) -> Result<String, String> {
        self.sink
            .flush()
            .map_err(|e| format!("trace flush failed: {e}"))?;
        if self.write_errors > 0 {
            return Err(format!("{} trace write(s) failed", self.write_errors));
        }
        match self.sink {
            Sink::Memory(buf) => String::from_utf8(buf).map_err(|e| format!("non-utf8 trace: {e}")),
            Sink::File { writer, tmp, dest } => {
                let file = writer
                    .into_inner()
                    .map_err(|e| format!("trace flush failed: {e}"))?;
                file.sync_all()
                    .map_err(|e| format!("trace fsync failed: {e}"))?;
                drop(file);
                fs::rename(&tmp, &dest).map_err(|e| {
                    format!(
                        "renaming trace {} -> {} failed: {e}",
                        tmp.display(),
                        dest.display()
                    )
                })?;
                Ok(String::new())
            }
            Sink::Stderr(_) => Ok(String::new()),
        }
    }
}

impl StepObserver for TraceWriter {
    fn observe(&mut self, event: &StepEvent<'_>) {
        let line = event_json(self.seq, event).render();
        self.seq += 1;
        if self.sink.write_line(&line).is_err() {
            self.write_errors += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use rtic_core::{Checker, IncrementalChecker};
    use rtic_relation::{tuple, Catalog, Schema, Sort, Update};
    use rtic_temporal::parser::parse_constraint;
    use rtic_temporal::TimePoint;
    use std::sync::Arc;

    #[test]
    fn file_sink_commits_atomically_on_finish() {
        let dir = std::env::temp_dir().join(format!(
            "rtic-trace-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let dest = dir.join("run.trace");
        std::fs::write(&dest, "previous trace\n").unwrap();

        let mut trace = TraceWriter::to_file(&dest).unwrap();
        trace.observe(&StepEvent::BadLine {
            line: 3,
            detail: "expected `@`".into(),
        });
        // Mid-run the destination still holds the previous complete trace.
        assert_eq!(std::fs::read_to_string(&dest).unwrap(), "previous trace\n");
        trace.finish().unwrap();
        let text = std::fs::read_to_string(&dest).unwrap();
        let doc = json::parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(doc.get("event").and_then(Json::as_str), Some("bad_line"));
        assert_eq!(doc.get("line").and_then(Json::as_u64), Some(3));
        assert!(
            !dir.join("run.trace.tmp").exists(),
            "temp file renamed away"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_line_is_json_with_seq_and_kind() {
        let catalog = Arc::new(
            Catalog::new()
                .with("p", Schema::of(&[("x", Sort::Str)]))
                .unwrap(),
        );
        let mut checker = IncrementalChecker::new(
            parse_constraint("deny d: p(x) && hist[0,1] p(x)").unwrap(),
            catalog,
        )
        .unwrap();
        let mut trace = TraceWriter::in_memory();
        let dyn_c: &mut dyn Checker = &mut checker;
        dyn_c
            .step_observed(
                TimePoint(1),
                &Update::new().with_insert("p", tuple!["a"]),
                &mut trace,
            )
            .unwrap();
        dyn_c
            .step_observed(TimePoint(2), &Update::new(), &mut trace)
            .unwrap();
        // Both steps violate (hist over the empty prefix is vacuously
        // true), so each emits start/eval/violation/step.
        assert_eq!(trace.lines_written(), 8);
        let text = trace.finish().unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 8);
        for (i, line) in lines.iter().enumerate() {
            let doc = json::parse(line).unwrap_or_else(|e| panic!("line {i} not JSON: {e}"));
            assert_eq!(doc.get("seq").and_then(Json::as_u64), Some(i as u64));
            assert!(doc.get("event").and_then(Json::as_str).is_some());
        }
        let last = json::parse(lines[7]).unwrap();
        assert_eq!(last.get("event").and_then(Json::as_str), Some("step"));
        assert_eq!(last.get("violations").and_then(Json::as_u64), Some(1));
        let violation = json::parse(lines[6]).unwrap();
        assert_eq!(
            violation.get("event").and_then(Json::as_str),
            Some("violation")
        );
        assert!(violation.get("witnesses").and_then(Json::as_str).is_some());
    }
}
