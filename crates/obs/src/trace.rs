//! Structured trace writer: one JSON line per step event.

use std::fs::{self, File};
use std::io::{self, BufWriter, Stderr, Write};
use std::path::{Path, PathBuf};

use rtic_core::{StepEvent, StepObserver};

use crate::json::Json;

/// Converts one event into its trace-line JSON document.
///
/// Every line carries `seq` (delivery order) and `event` (the kind name
/// from [`StepEvent::kind`]); the remaining fields are per-kind.
pub fn event_json(seq: u64, event: &StepEvent<'_>) -> Json {
    let base = Json::object().set("seq", seq).set("event", event.kind());
    match event {
        StepEvent::StepStart {
            checker,
            time,
            tuples,
        } => base
            .set("checker", *checker)
            .set("time", time.0)
            .set("tuples", *tuples),
        StepEvent::ConstraintEval {
            checker,
            constraint,
            time,
            violations,
            latency_ns,
        } => base
            .set("checker", *checker)
            .set("constraint", constraint.as_str())
            .set("time", time.0)
            .set("violations", *violations)
            .set("latency_ns", *latency_ns),
        StepEvent::Violation { checker, report } => base
            .set("checker", *checker)
            .set("constraint", report.constraint.as_str())
            .set("time", report.time.0)
            .set("violations", report.violation_count())
            .set("witnesses", format!("{}", report.violations)),
        StepEvent::StepEnd {
            checker,
            time,
            violations,
            latency_ns,
        } => base
            .set("checker", *checker)
            .set("time", time.0)
            .set("violations", *violations)
            .set("latency_ns", *latency_ns),
        StepEvent::CheckpointSave { constraint, bytes } => base
            .set("constraint", constraint.as_str())
            .set("bytes", *bytes),
        StepEvent::CheckpointRestore { constraint, bytes } => base
            .set("constraint", constraint.as_str())
            .set("bytes", *bytes),
        StepEvent::ConstraintQuarantined {
            checker,
            constraint,
            time,
            detail,
        } => base
            .set("checker", *checker)
            .set("constraint", constraint.as_str())
            .set("time", time.0)
            .set("detail", detail.as_str()),
        StepEvent::CheckpointFallback { path, detail } => base
            .set("path", path.as_str())
            .set("detail", detail.as_str()),
        StepEvent::BadLine { line, detail } => base
            .set("line", *line as u64)
            .set("detail", detail.as_str()),
        StepEvent::BatchIngest { lines, tuples } => {
            base.set("lines", *lines).set("tuples", *tuples)
        }
        StepEvent::PlanStatsSample {
            checker,
            constraint,
            stats,
        } => base
            .set("checker", *checker)
            .set("constraint", constraint.as_str())
            .set("plan_nodes", stats.plan.nodes)
            .set("atom_shapes", stats.plan.atom_shapes)
            .set("join_shapes", stats.plan.join_shapes)
            .set("probe_nodes", stats.plan.probe_nodes)
            .set("cached_nodes", stats.plan.cached_nodes)
            .set("scratch_high_water", stats.scratch_high_water),
        StepEvent::PlanProfileSample {
            checker,
            constraint,
            profile,
        } => base
            .set("checker", *checker)
            .set("constraint", constraint.as_str())
            .set("total_time_ns", profile.total_time_ns())
            .set(
                "nodes",
                Json::Arr(
                    profile
                        .nodes
                        .iter()
                        .map(|n| {
                            let mut node = Json::object()
                                .set("path", n.desc.path.clone())
                                .set("label", n.desc.label.clone())
                                .set("calls", n.counts.calls)
                                .set("time_ns", n.counts.time_ns)
                                .set("rows_in", n.counts.rows_in)
                                .set("rows_out", n.counts.rows_out)
                                .set("cache_hits", n.counts.cache_hits)
                                .set("cache_misses", n.counts.cache_misses);
                            if let Some(rpb) = n.counts.rows_per_block() {
                                node = node
                                    .set("blocks", n.counts.blocks)
                                    .set("rows_per_block", rpb);
                            }
                            node
                        })
                        .collect(),
                ),
            ),
        StepEvent::SpaceSample {
            checker,
            constraint,
            time,
            step_index,
            stats,
        } => base
            .set("checker", *checker)
            .set("constraint", constraint.as_str())
            .set("time", time.0)
            .set("step", *step_index)
            .set("aux_keys", stats.aux_keys)
            .set("aux_timestamps", stats.aux_timestamps)
            .set("stored_states", stats.stored_states)
            .set("stored_tuples", stats.stored_tuples)
            .set("retained_units", stats.retained_units()),
        StepEvent::ShardSample {
            checker,
            constraint,
            time,
            step_index,
            stats,
        } => base
            .set("checker", *checker)
            .set("constraint", constraint.as_str())
            .set("time", time.0)
            .set("step", *step_index)
            .set("live", stats.live)
            .set("created", stats.created)
            .set("evicted", stats.evicted)
            .set("peak", stats.peak),
        StepEvent::SmcSample {
            scenario,
            sample,
            bound,
            violated_constraints,
        } => base
            .set("scenario", scenario.as_str())
            .set("sample", *sample)
            .set("bound", *bound)
            .set(
                "violated_constraints",
                Json::Arr(
                    violated_constraints
                        .iter()
                        .map(|c| Json::Str(c.as_str().into()))
                        .collect(),
                ),
            ),
        StepEvent::ServeSample {
            queue_depth,
            queue_capacity,
            queue_peak,
            shed,
            connections,
            disconnected,
            last_checkpoint_age_ms,
            drain_ms,
        } => {
            let mut doc = base
                .set("queue_depth", *queue_depth)
                .set("queue_capacity", *queue_capacity)
                .set("queue_peak", *queue_peak)
                .set("shed", *shed)
                .set("connections", *connections)
                .set("disconnected", *disconnected);
            if let Some(age) = last_checkpoint_age_ms {
                doc = doc.set("last_checkpoint_age_ms", *age);
            }
            if let Some(ms) = drain_ms {
                doc = doc.set("drain_ms", *ms);
            }
            doc
        }
    }
}

enum Sink {
    File {
        writer: BufWriter<File>,
        tmp: PathBuf,
        dest: PathBuf,
    },
    Stderr(Stderr),
    Memory(Vec<u8>),
}

/// Opens a file sink writing to a same-directory `<path>.tmp`; the commit
/// in [`finish_sink`] renames it over `path`.
fn file_sink(path: impl AsRef<Path>) -> io::Result<Sink> {
    let dest = path.as_ref().to_path_buf();
    let mut name = dest
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "trace".into());
    name.push(".tmp");
    let tmp = dest.with_file_name(name);
    let file = File::create(&tmp)?;
    Ok(Sink::File {
        writer: BufWriter::new(file),
        tmp,
        dest,
    })
}

impl Sink {
    fn write_line(&mut self, line: &str) -> io::Result<()> {
        match self {
            Sink::File { writer, .. } => writeln!(writer, "{line}"),
            Sink::Stderr(w) => writeln!(w, "{line}"),
            Sink::Memory(buf) => writeln!(buf, "{line}"),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Sink::File { writer, .. } => writer.flush(),
            Sink::Stderr(w) => w.flush(),
            Sink::Memory(_) => Ok(()),
        }
    }
}

/// A [`StepObserver`] that appends one JSON line per event to a file,
/// stderr, or an in-memory buffer.
///
/// I/O errors after construction are counted, not propagated — tracing
/// must never fail the checking run. Call [`TraceWriter::finish`] to flush
/// and learn whether any write failed.
pub struct TraceWriter {
    sink: Sink,
    seq: u64,
    write_errors: u64,
}

impl TraceWriter {
    /// Traces to `path`. The lines accumulate in a same-directory
    /// `<path>.tmp` file; [`TraceWriter::finish`] flushes, fsyncs, and
    /// atomically renames it into place, so `path` only ever holds a
    /// complete trace — a crash mid-run leaves any previous trace at
    /// `path` untouched.
    pub fn to_file(path: impl AsRef<Path>) -> io::Result<TraceWriter> {
        Ok(TraceWriter::with_sink(file_sink(path)?))
    }

    /// Traces to stderr.
    pub fn to_stderr() -> TraceWriter {
        TraceWriter::with_sink(Sink::Stderr(io::stderr()))
    }

    /// Traces to an in-memory buffer (for tests; read back via `finish`).
    pub fn in_memory() -> TraceWriter {
        TraceWriter::with_sink(Sink::Memory(Vec::new()))
    }

    fn with_sink(sink: Sink) -> TraceWriter {
        TraceWriter {
            sink,
            seq: 0,
            write_errors: 0,
        }
    }

    /// Events written so far.
    pub fn lines_written(&self) -> u64 {
        self.seq
    }

    /// Flushes and consumes the writer, returning any buffered content
    /// (in-memory sink only) or an error if any write or the flush failed.
    /// For a file sink this is also the commit point: the temp file is
    /// fsynced and renamed over the destination.
    pub fn finish(self) -> Result<String, String> {
        finish_sink(self.sink, self.write_errors)
    }
}

/// Shared commit path for trace sinks: flush, surface counted write
/// errors, and (file sinks) fsync + atomically rename into place.
fn finish_sink(mut sink: Sink, write_errors: u64) -> Result<String, String> {
    sink.flush()
        .map_err(|e| format!("trace flush failed: {e}"))?;
    if write_errors > 0 {
        return Err(format!("{write_errors} trace write(s) failed"));
    }
    match sink {
        Sink::Memory(buf) => String::from_utf8(buf).map_err(|e| format!("non-utf8 trace: {e}")),
        Sink::File { writer, tmp, dest } => {
            let file = writer
                .into_inner()
                .map_err(|e| format!("trace flush failed: {e}"))?;
            file.sync_all()
                .map_err(|e| format!("trace fsync failed: {e}"))?;
            drop(file);
            fs::rename(&tmp, &dest).map_err(|e| {
                format!(
                    "renaming trace {} -> {} failed: {e}",
                    tmp.display(),
                    dest.display()
                )
            })?;
            Ok(String::new())
        }
        Sink::Stderr(_) => Ok(String::new()),
    }
}

impl StepObserver for TraceWriter {
    fn observe(&mut self, event: &StepEvent<'_>) {
        let line = event_json(self.seq, event).render();
        self.seq += 1;
        if self.sink.write_line(&line).is_err() {
            self.write_errors += 1;
        }
    }
}

/// Pid used for every rtic trace event (one process).
const CHROME_PID: u64 = 1;
/// Track carrying the step → dispatch → eval span hierarchy.
const CHROME_STEP_TID: u64 = 1;
/// First track used for per-constraint plan-node profiles.
const CHROME_PLAN_TID_BASE: u64 = 100;

/// A [`StepObserver`] that renders the event stream as [Chrome trace
/// format] — a JSON array of complete (`"ph": "X"`) span events viewable
/// in Perfetto or `chrome://tracing`.
///
/// Events carry no absolute wall-clock timestamps, so the writer lays
/// steps end-to-end on a synthetic timeline: each step span starts where
/// the previous one ended and lasts its measured `latency_ns`. Within a
/// step the causal hierarchy is rendered as nested spans on one track:
/// *step* ⊇ *dispatch* ⊇ one *eval* span per constraint (sequentially, in
/// delivery order). Violations, checkpoints, quarantines, and bad lines
/// become instant events; space samples become counter tracks; a final
/// [`StepEvent::PlanProfileSample`] becomes a per-constraint track whose
/// nested spans show each plan node's inclusive wall time.
///
/// Like [`TraceWriter`], I/O errors are counted, not propagated, and a
/// file sink commits atomically on [`ChromeTraceWriter::finish`].
///
/// [Chrome trace format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
pub struct ChromeTraceWriter {
    sink: Sink,
    events_written: u64,
    write_errors: u64,
    /// Whether the process/thread `"M"` metadata events were written.
    preamble_emitted: bool,
    /// Synthetic timeline cursor (µs since trace start).
    cursor_us: f64,
    /// The in-flight step: `(time, tuples)` from `StepStart`.
    step: Option<(u64, usize)>,
    /// Eval spans collected since `StepStart`:
    /// `(checker, constraint, violations, latency_ns)`.
    evals: Vec<(&'static str, &'static str, usize, u64)>,
    /// Track id per profiled constraint (insertion order).
    plan_tids: Vec<&'static str>,
}

impl ChromeTraceWriter {
    /// Traces to `path` (committed atomically on finish).
    pub fn to_file(path: impl AsRef<Path>) -> io::Result<ChromeTraceWriter> {
        Ok(ChromeTraceWriter::with_sink(file_sink(path)?))
    }

    /// Traces to stderr.
    pub fn to_stderr() -> ChromeTraceWriter {
        ChromeTraceWriter::with_sink(Sink::Stderr(io::stderr()))
    }

    /// Traces to an in-memory buffer (read back via `finish`).
    pub fn in_memory() -> ChromeTraceWriter {
        ChromeTraceWriter::with_sink(Sink::Memory(Vec::new()))
    }

    fn with_sink(sink: Sink) -> ChromeTraceWriter {
        ChromeTraceWriter {
            sink,
            events_written: 0,
            write_errors: 0,
            preamble_emitted: false,
            cursor_us: 0.0,
            step: None,
            evals: Vec::new(),
            plan_tids: Vec::new(),
        }
    }

    /// Emits the process/thread name metadata once. Runs before the first
    /// real event and unconditionally at [`ChromeTraceWriter::finish`], so
    /// even a zero-step trace names its process and step track.
    fn ensure_preamble(&mut self) {
        if self.preamble_emitted {
            return;
        }
        self.preamble_emitted = true;
        self.emit(
            Json::object()
                .set("name", "process_name")
                .set("ph", "M")
                .set("pid", CHROME_PID)
                .set("args", Json::object().set("name", "rtic")),
        );
        self.emit(
            Json::object()
                .set("name", "thread_name")
                .set("ph", "M")
                .set("pid", CHROME_PID)
                .set("tid", CHROME_STEP_TID)
                .set("args", Json::object().set("name", "steps")),
        );
    }

    /// Trace events emitted so far (spans, instants, counters, metadata).
    pub fn events_written(&self) -> u64 {
        self.events_written
    }

    fn emit(&mut self, event: Json) {
        let lead = if self.events_written == 0 { '[' } else { ',' };
        self.events_written += 1;
        if self
            .sink
            .write_line(&format!("{lead}{}", event.render()))
            .is_err()
        {
            self.write_errors += 1;
        }
    }

    fn span(name: &str, ts_us: f64, dur_us: f64, tid: u64, args: Json) -> Json {
        Json::object()
            .set("name", name)
            .set("cat", "rtic")
            .set("ph", "X")
            .set("ts", ts_us)
            .set("dur", dur_us)
            .set("pid", CHROME_PID)
            .set("tid", tid)
            .set("args", args)
    }

    fn instant(name: &str, ts_us: f64, tid: u64, args: Json) -> Json {
        Json::object()
            .set("name", name)
            .set("cat", "rtic")
            .set("ph", "i")
            .set("s", "t")
            .set("ts", ts_us)
            .set("pid", CHROME_PID)
            .set("tid", tid)
            .set("args", args)
    }

    /// The track id for a profiled constraint, naming it on first use.
    fn plan_tid(&mut self, constraint: &'static str) -> u64 {
        if let Some(i) = self.plan_tids.iter().position(|c| *c == constraint) {
            return CHROME_PLAN_TID_BASE + i as u64;
        }
        self.plan_tids.push(constraint);
        let tid = CHROME_PLAN_TID_BASE + (self.plan_tids.len() - 1) as u64;
        self.emit(
            Json::object()
                .set("name", "thread_name")
                .set("ph", "M")
                .set("pid", CHROME_PID)
                .set("tid", tid)
                .set(
                    "args",
                    Json::object().set("name", format!("plan {constraint}")),
                ),
        );
        tid
    }

    /// Lays the collected eval spans (and violation instants) end-to-end
    /// from `start` on the step track; returns the timeline frontier.
    fn layout_evals(
        &mut self,
        start: f64,
        evals: Vec<(&'static str, &'static str, usize, u64)>,
    ) -> f64 {
        let mut at = start;
        for (eval_checker, constraint, eval_violations, eval_ns) in evals {
            let dur = eval_ns as f64 / 1e3;
            self.emit(Self::span(
                &format!("eval {constraint}"),
                at,
                dur,
                CHROME_STEP_TID,
                Json::object()
                    .set("checker", eval_checker)
                    .set("constraint", constraint)
                    .set("violations", eval_violations)
                    .set("latency_ns", eval_ns),
            ));
            at += dur;
            if eval_violations > 0 {
                self.emit(Self::instant(
                    &format!("violation {constraint}"),
                    at,
                    CHROME_STEP_TID,
                    Json::object().set("violations", eval_violations),
                ));
            }
        }
        at
    }

    /// Closes a step whose `StepEnd` never arrived (the run aborted or was
    /// quarantined mid-step): its collected eval spans are laid out under
    /// a step span marked unfinished, so no span is silently dropped.
    fn close_open_step(&mut self) {
        let Some((step_time, tuples)) = self.step.take() else {
            return;
        };
        let start = self.cursor_us;
        let evals = std::mem::take(&mut self.evals);
        let step_us: f64 = evals.iter().map(|e| e.3 as f64 / 1e3).sum();
        self.emit(Self::span(
            &format!("step t={step_time} (unfinished)"),
            start,
            step_us,
            CHROME_STEP_TID,
            Json::object()
                .set("time", step_time)
                .set("tuples", tuples)
                .set("unfinished", true),
        ));
        self.layout_evals(start, evals);
        self.cursor_us = start + step_us;
    }

    /// Finishes the array and commits (file sinks: fsync + rename). Any
    /// step still open (no `StepEnd`) is closed first, and a trace with no
    /// events at all still gets its metadata preamble.
    pub fn finish(mut self) -> Result<String, String> {
        self.ensure_preamble();
        self.close_open_step();
        if self.sink.write_line("]").is_err() {
            self.write_errors += 1;
        }
        finish_sink(self.sink, self.write_errors)
    }
}

impl StepObserver for ChromeTraceWriter {
    fn observe(&mut self, event: &StepEvent<'_>) {
        self.ensure_preamble();
        match event {
            StepEvent::StepStart { time, tuples, .. } => {
                self.step = Some((time.0, *tuples));
                self.evals.clear();
            }
            StepEvent::ConstraintEval {
                checker,
                constraint,
                violations,
                latency_ns,
                ..
            } => {
                self.evals
                    .push((checker, constraint.as_str(), *violations, *latency_ns));
            }
            // The eval span already carries the violation count; the
            // instant marker is emitted during StepEnd layout.
            StepEvent::Violation { .. } => {}
            StepEvent::StepEnd {
                checker,
                time,
                violations,
                latency_ns,
            } => {
                let (step_time, tuples) = self.step.take().unwrap_or((time.0, 0));
                let start = self.cursor_us;
                let evals_us: f64 = self.evals.iter().map(|e| e.3 as f64 / 1e3).sum();
                // Measured eval time can exceed the step reading by jitter;
                // widen the step span so children always nest.
                let step_us = (*latency_ns as f64 / 1e3).max(evals_us);
                self.emit(Self::span(
                    &format!("step t={step_time}"),
                    start,
                    step_us,
                    CHROME_STEP_TID,
                    Json::object()
                        .set("checker", *checker)
                        .set("time", step_time)
                        .set("tuples", tuples)
                        .set("violations", *violations),
                ));
                let evals = std::mem::take(&mut self.evals);
                self.emit(Self::span(
                    "dispatch",
                    start,
                    step_us,
                    CHROME_STEP_TID,
                    Json::object().set("constraints", evals.len()),
                ));
                self.layout_evals(start, evals);
                self.cursor_us = start + step_us;
            }
            StepEvent::CheckpointSave { constraint, bytes } => {
                let ts = self.cursor_us;
                self.emit(Self::instant(
                    &format!("checkpoint_save {constraint}"),
                    ts,
                    CHROME_STEP_TID,
                    Json::object().set("bytes", *bytes),
                ));
            }
            StepEvent::CheckpointRestore { constraint, bytes } => {
                let ts = self.cursor_us;
                self.emit(Self::instant(
                    &format!("checkpoint_restore {constraint}"),
                    ts,
                    CHROME_STEP_TID,
                    Json::object().set("bytes", *bytes),
                ));
            }
            StepEvent::ConstraintQuarantined {
                constraint, detail, ..
            } => {
                // Mid-step, the marker lands at the frontier of the eval
                // spans collected so far, so it stays inside the step span
                // and after the work that already completed.
                let ts = self.cursor_us + self.evals.iter().map(|e| e.3 as f64 / 1e3).sum::<f64>();
                self.emit(Self::instant(
                    &format!("quarantine {constraint}"),
                    ts,
                    CHROME_STEP_TID,
                    Json::object().set("detail", detail.as_str()),
                ));
            }
            StepEvent::CheckpointFallback { path, detail } => {
                let ts = self.cursor_us;
                self.emit(Self::instant(
                    "checkpoint_fallback",
                    ts,
                    CHROME_STEP_TID,
                    Json::object()
                        .set("path", path.as_str())
                        .set("detail", detail.as_str()),
                ));
            }
            StepEvent::BadLine { line, detail } => {
                let ts = self.cursor_us;
                self.emit(Self::instant(
                    "bad_line",
                    ts,
                    CHROME_STEP_TID,
                    Json::object()
                        .set("line", *line as u64)
                        .set("detail", detail.as_str()),
                ));
            }
            StepEvent::BatchIngest { lines, tuples } => {
                let ts = self.cursor_us;
                self.emit(Self::instant(
                    "batch_ingest",
                    ts,
                    CHROME_STEP_TID,
                    Json::object().set("lines", *lines).set("tuples", *tuples),
                ));
            }
            StepEvent::PlanStatsSample {
                constraint, stats, ..
            } => {
                let ts = self.cursor_us;
                self.emit(Self::instant(
                    &format!("plan_stats {constraint}"),
                    ts,
                    CHROME_STEP_TID,
                    Json::object()
                        .set("nodes", stats.plan.nodes)
                        .set("scratch_high_water", stats.scratch_high_water),
                ));
            }
            StepEvent::SpaceSample {
                constraint, stats, ..
            } => {
                // Counter track: Perfetto renders these as a line chart.
                let ts = self.cursor_us;
                self.emit(
                    Json::object()
                        .set("name", format!("retained_units {constraint}"))
                        .set("ph", "C")
                        .set("ts", ts)
                        .set("pid", CHROME_PID)
                        .set("args", Json::object().set("units", stats.retained_units())),
                );
            }
            StepEvent::ShardSample {
                constraint, stats, ..
            } => {
                // Counter track: live shards over the synthetic timeline.
                let ts = self.cursor_us;
                self.emit(
                    Json::object()
                        .set("name", format!("shards {constraint}"))
                        .set("ph", "C")
                        .set("ts", ts)
                        .set("pid", CHROME_PID)
                        .set("args", Json::object().set("live", stats.live)),
                );
            }
            StepEvent::SmcSample {
                scenario,
                sample,
                violated_constraints,
                ..
            } => {
                // Counter track: violated constraints per completed sample.
                let ts = self.cursor_us;
                self.emit(
                    Json::object()
                        .set("name", format!("smc {scenario}"))
                        .set("ph", "C")
                        .set("ts", ts)
                        .set("pid", CHROME_PID)
                        .set(
                            "args",
                            Json::object()
                                .set("sample", *sample)
                                .set("violated", violated_constraints.len()),
                        ),
                );
            }
            StepEvent::ServeSample {
                queue_depth, shed, ..
            } => {
                // Counter track: ingest queue pressure on the server.
                let ts = self.cursor_us;
                self.emit(
                    Json::object()
                        .set("name", "serve queue")
                        .set("ph", "C")
                        .set("ts", ts)
                        .set("pid", CHROME_PID)
                        .set(
                            "args",
                            Json::object().set("depth", *queue_depth).set("shed", *shed),
                        ),
                );
            }
            StepEvent::PlanProfileSample {
                constraint,
                profile,
                ..
            } => {
                // One track per constraint; node spans nest by tree depth,
                // children laid sequentially from the parent's start (their
                // inclusive times sum to at most the parent's).
                let tid = self.plan_tid(constraint.as_str());
                let mut base = 0.0f64;
                // (depth, child-cursor) of the open ancestor chain.
                let mut stack: Vec<(usize, f64)> = Vec::new();
                let nodes = profile.nodes.clone();
                for node in &nodes {
                    while stack.last().is_some_and(|&(d, _)| d >= node.desc.depth) {
                        stack.pop();
                    }
                    let start = stack.last().map_or(base, |&(_, at)| at);
                    let dur = node.counts.time_ns as f64 / 1e3;
                    let mut args = Json::object()
                        .set("path", node.desc.path.clone())
                        .set("calls", node.counts.calls)
                        .set("rows_in", node.counts.rows_in)
                        .set("rows_out", node.counts.rows_out)
                        .set("cache_hits", node.counts.cache_hits)
                        .set("cache_misses", node.counts.cache_misses);
                    // Vectorized nodes report their columnar batch shape.
                    if let Some(rpb) = node.counts.rows_per_block() {
                        args = args
                            .set("blocks", node.counts.blocks)
                            .set("rows_per_block", rpb);
                    }
                    self.emit(Self::span(&node.desc.label, start, dur, tid, args));
                    if let Some(top) = stack.last_mut() {
                        top.1 += dur;
                    } else {
                        base += dur;
                    }
                    stack.push((node.desc.depth, start));
                }
                let _ = base;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use rtic_core::{Checker, IncrementalChecker};
    use rtic_relation::{tuple, Catalog, Schema, Sort, Update};
    use rtic_temporal::parser::parse_constraint;
    use rtic_temporal::TimePoint;
    use std::sync::Arc;

    #[test]
    fn file_sink_commits_atomically_on_finish() {
        let dir = std::env::temp_dir().join(format!(
            "rtic-trace-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let dest = dir.join("run.trace");
        std::fs::write(&dest, "previous trace\n").unwrap();

        let mut trace = TraceWriter::to_file(&dest).unwrap();
        trace.observe(&StepEvent::BadLine {
            line: 3,
            detail: "expected `@`".into(),
        });
        // Mid-run the destination still holds the previous complete trace.
        assert_eq!(std::fs::read_to_string(&dest).unwrap(), "previous trace\n");
        trace.finish().unwrap();
        let text = std::fs::read_to_string(&dest).unwrap();
        let doc = json::parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(doc.get("event").and_then(Json::as_str), Some("bad_line"));
        assert_eq!(doc.get("line").and_then(Json::as_u64), Some(3));
        assert!(
            !dir.join("run.trace.tmp").exists(),
            "temp file renamed away"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_line_is_json_with_seq_and_kind() {
        let catalog = Arc::new(
            Catalog::new()
                .with("p", Schema::of(&[("x", Sort::Str)]))
                .unwrap(),
        );
        let mut checker = IncrementalChecker::new(
            parse_constraint("deny d: p(x) && hist[0,1] p(x)").unwrap(),
            catalog,
        )
        .unwrap();
        let mut trace = TraceWriter::in_memory();
        let dyn_c: &mut dyn Checker = &mut checker;
        dyn_c
            .step_observed(
                TimePoint(1),
                &Update::new().with_insert("p", tuple!["a"]),
                &mut trace,
            )
            .unwrap();
        dyn_c
            .step_observed(TimePoint(2), &Update::new(), &mut trace)
            .unwrap();
        // Both steps violate (hist over the empty prefix is vacuously
        // true), so each emits start/eval/violation/step.
        assert_eq!(trace.lines_written(), 8);
        let text = trace.finish().unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 8);
        for (i, line) in lines.iter().enumerate() {
            let doc = json::parse(line).unwrap_or_else(|e| panic!("line {i} not JSON: {e}"));
            assert_eq!(doc.get("seq").and_then(Json::as_u64), Some(i as u64));
            assert!(doc.get("event").and_then(Json::as_str).is_some());
        }
        let last = json::parse(lines[7]).unwrap();
        assert_eq!(last.get("event").and_then(Json::as_str), Some("step"));
        assert_eq!(last.get("violations").and_then(Json::as_u64), Some(1));
        let violation = json::parse(lines[6]).unwrap();
        assert_eq!(
            violation.get("event").and_then(Json::as_str),
            Some("violation")
        );
        assert!(violation.get("witnesses").and_then(Json::as_str).is_some());
    }

    #[test]
    fn chrome_trace_with_no_steps_still_carries_the_preamble() {
        let text = ChromeTraceWriter::in_memory().finish().unwrap();
        let doc = json::parse(text.trim()).unwrap();
        let events = doc.as_arr().expect("a valid JSON array");
        // Even a zero-step trace names its process and step track, so
        // Perfetto renders an identified (if empty) timeline.
        assert_eq!(events.len(), 2);
        assert!(events
            .iter()
            .all(|e| e.get("ph").and_then(Json::as_str) == Some("M")));
        assert_eq!(
            events[0].get("name").and_then(Json::as_str),
            Some("process_name")
        );
        assert_eq!(
            events[1].get("name").and_then(Json::as_str),
            Some("thread_name")
        );
    }

    #[test]
    fn quarantine_before_any_eval_closes_the_open_step() {
        use rtic_relation::Symbol;
        let mut trace = ChromeTraceWriter::in_memory();
        // A step starts, the first constraint panics before any eval
        // lands, and the run aborts: no StepEnd ever arrives.
        trace.observe(&StepEvent::StepStart {
            checker: "set",
            time: TimePoint(5),
            tuples: 2,
        });
        trace.observe(&StepEvent::ConstraintQuarantined {
            checker: "set",
            constraint: Symbol::intern("flaky"),
            time: TimePoint(5),
            detail: "boom".into(),
        });
        let text = trace.finish().unwrap();
        let doc = json::parse(&text).unwrap();
        let events = doc.as_arr().expect("valid JSON array despite the abort");
        assert!(events
            .iter()
            .any(|e| e.get("name").and_then(Json::as_str) == Some("process_name")));
        assert!(events
            .iter()
            .any(|e| e.get("name").and_then(Json::as_str) == Some("quarantine flaky")));
        let step = events
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .expect("the open step span is closed at finish");
        assert_eq!(
            step.get("name").and_then(Json::as_str),
            Some("step t=5 (unfinished)")
        );
        assert!(matches!(
            step.get("args").and_then(|a| a.get("unfinished")),
            Some(Json::Bool(true))
        ));
    }

    #[test]
    fn chrome_trace_is_a_json_array_of_nested_spans() {
        use rtic_core::observe::sample_plan_profiles;
        use rtic_core::EncodingOptions;

        let catalog = Arc::new(
            Catalog::new()
                .with("p", Schema::of(&[("x", Sort::Str)]))
                .unwrap(),
        );
        let mut checkers: Vec<Box<dyn Checker>> = vec![Box::new(
            IncrementalChecker::with_options(
                parse_constraint("deny d: p(x) && hist[0,1] p(x)").unwrap(),
                catalog,
                EncodingOptions {
                    profile_plans: true,
                    ..Default::default()
                },
            )
            .unwrap(),
        )];
        let mut trace = ChromeTraceWriter::in_memory();
        for t in 1..=3u64 {
            rtic_core::observe::step_all(
                &mut checkers,
                TimePoint(t),
                &Update::new().with_insert("p", tuple!["a"]),
                &mut trace,
            )
            .unwrap();
        }
        sample_plan_profiles(&checkers, &mut trace);
        let text = trace.finish().unwrap();
        let doc = json::parse(&text).unwrap();
        let events = doc.as_arr().expect("chrome trace is a JSON array");
        assert!(!events.is_empty());

        // Three step spans laid end-to-end on the step track, each
        // containing a dispatch span over the same interval and an eval
        // span inside it.
        let spans: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .collect();
        let steps: Vec<&&Json> = spans
            .iter()
            .filter(|s| {
                s.get("name")
                    .and_then(Json::as_str)
                    .is_some_and(|n| n.starts_with("step "))
            })
            .collect();
        assert_eq!(steps.len(), 3);
        let mut prev_end = 0.0f64;
        for step in &steps {
            let ts = step.get("ts").and_then(Json::as_f64).unwrap();
            let dur = step.get("dur").and_then(Json::as_f64).unwrap();
            assert!(ts >= prev_end, "steps never overlap: {ts} < {prev_end}");
            prev_end = ts + dur;
        }
        assert!(spans
            .iter()
            .any(|s| s.get("name").and_then(Json::as_str) == Some("eval d")));

        // The plan profile lands on its own named track as nested node
        // spans (an atom node under the root conjunction).
        assert!(events.iter().any(|e| {
            e.get("ph").and_then(Json::as_str) == Some("M")
                && e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    == Some("plan d")
        }));
        let plan_spans: Vec<&&Json> = spans
            .iter()
            .filter(|s| s.get("tid").and_then(Json::as_u64) == Some(100))
            .collect();
        assert!(
            plan_spans.iter().any(|s| s
                .get("name")
                .and_then(Json::as_str)
                .is_some_and(|n| n.starts_with("atom("))),
            "plan-node spans present: {text}"
        );
        // Every plan-node span lies within its root span's interval.
        let root = plan_spans
            .iter()
            .find(|s| {
                s.get("args")
                    .and_then(|a| a.get("path"))
                    .and_then(Json::as_str)
                    == Some("body")
            })
            .expect("root body span");
        let root_ts = root.get("ts").and_then(Json::as_f64).unwrap();
        let root_end = root_ts + root.get("dur").and_then(Json::as_f64).unwrap();
        for span in &plan_spans {
            let path = span
                .get("args")
                .and_then(|a| a.get("path"))
                .and_then(Json::as_str)
                .unwrap_or("");
            if !path.starts_with("body") {
                continue;
            }
            let ts = span.get("ts").and_then(Json::as_f64).unwrap();
            let end = ts + span.get("dur").and_then(Json::as_f64).unwrap();
            const EPS: f64 = 1e-6;
            assert!(
                ts + EPS >= root_ts && end <= root_end + EPS,
                "node span [{ts}, {end}] nests in root [{root_ts}, {root_end}]"
            );
        }
    }
}
