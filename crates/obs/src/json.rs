//! Minimal JSON support: a value model, a writer, and a parser.
//!
//! The workspace has no serde (offline build), and the observability
//! surface only needs flat-ish documents: metrics snapshots, trace lines,
//! and the `rtic report` reader. Numbers are kept as `f64` (metrics are
//! counts and latencies, all well inside the 2^53 exact-integer range).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON document node.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (integers exact up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; BTreeMap keeps key order deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// An empty object.
    pub fn object() -> Json {
        Json::Obj(BTreeMap::new())
    }

    /// Inserts a field (builder-style); panics on non-objects.
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(map) => {
                map.insert(key.to_string(), value.into());
            }
            other => panic!("set({key:?}) on non-object {other:?}"),
        }
        self
    }

    /// Field lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as u64, if this is a non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().filter(|n| *n >= 0.0).map(|n| n as u64)
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The field map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(map) => Some(map),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_str(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                if !map.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_num(out: &mut String, n: f64) {
    if n.fract() == 0.0 && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! impl_from_num {
    ($($t:ty),+) => {$(
        impl From<$t> for Json {
            fn from(n: $t) -> Json { Json::Num(n as f64) }
        }
    )+};
}

impl_from_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

/// Parses one JSON document. Rejects trailing input.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes: Vec<char> = text.chars().collect();
    let mut p = ParseState {
        chars: bytes,
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(format!("trailing input at offset {}", p.pos));
    }
    Ok(value)
}

struct ParseState {
    chars: Vec<char>,
    pos: usize,
}

impl ParseState {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        match self.bump() {
            Some(c) if c == want => Ok(()),
            got => Err(format!("expected {want:?} at {}, got {got:?}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        for want in word.chars() {
            self.expect(want)?;
        }
        Ok(value)
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(Json::Str(self.string()?)),
            Some('t') => self.literal("true", Json::Bool(true)),
            Some('f') => self.literal("false", Json::Bool(false)),
            Some('n') => self.literal("null", Json::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            got => Err(format!("unexpected {got:?} at {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect('{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.bump();
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some('}') => return Ok(Json::Obj(map)),
                got => return Err(format!("expected , or }} at {}, got {got:?}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.bump();
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some(']') => return Ok(Json::Arr(items)),
                got => return Err(format!("expected , or ] at {}, got {got:?}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('r') => out.push('\r'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|c| c.to_digit(16))
                                .ok_or_else(|| format!("bad \\u escape at {}", self.pos))?;
                            code = code * 16 + d;
                        }
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("bad codepoint {code:#x}"))?,
                        );
                    }
                    got => return Err(format!("bad escape {got:?} at {}", self.pos)),
                },
                Some(c) => out.push(c),
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.bump();
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || "+-.eE".contains(c)) {
            self.bump();
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_documents() {
        let doc = Json::object()
            .set("steps", 500u64)
            .set("name", "incremental")
            .set("ok", true)
            .set("ratio", Json::Num(0.5))
            .set(
                "samples",
                Json::Arr(vec![Json::Num(1.0), Json::Null, Json::Str("a\"b\n".into())]),
            );
        let compact = doc.render();
        assert_eq!(parse(&compact).unwrap(), doc);
        let pretty = doc.render_pretty();
        assert_eq!(parse(&pretty).unwrap(), doc);
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::from(500u64).render(), "500");
        assert_eq!(Json::Num(0.25).render(), "0.25");
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(parse("\"\\u0041\\n\"").unwrap(), Json::Str("A\n".into()));
    }
}
