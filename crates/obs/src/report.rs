//! Human-readable rendering of a saved metrics snapshot (`rtic report`).

use std::fmt::Write as _;

use crate::json::Json;

/// Renders the document produced by
/// [`MetricsRegistry::render_json`](crate::MetricsRegistry::render_json)
/// as a fixed-width summary table. Errors describe the missing or
/// malformed field.
pub fn render(doc: &Json) -> Result<String, String> {
    let num = |key: &str| {
        doc.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("metrics file missing numeric field {key:?}"))
    };
    let steps = num("steps")?;
    let tuples = num("tuples_ingested")?;
    let violations = num("violations")?;
    let violating_steps = num("violating_steps")?;
    let saves = num("checkpoint_saves")?;
    let restores = num("checkpoint_restores")?;

    let checkers: Vec<&str> = doc
        .get("checkers")
        .and_then(Json::as_arr)
        .map(|items| items.iter().filter_map(Json::as_str).collect())
        .unwrap_or_default();

    let mut out = String::new();
    let _ = writeln!(out, "rtic run report");
    let _ = writeln!(out, "===============");
    let _ = writeln!(out);
    let _ = writeln!(out, "  steps            {steps}");
    let _ = writeln!(out, "  tuples ingested  {tuples}");
    let _ = writeln!(
        out,
        "  violations       {violations} witness(es) over {violating_steps} step(s)"
    );
    if saves + restores > 0 {
        let _ = writeln!(out, "  checkpoints      {saves} saved, {restores} restored");
    }
    let _ = writeln!(
        out,
        "  checkers         {}",
        if checkers.is_empty() {
            "(none)".to_string()
        } else {
            checkers.join(", ")
        }
    );

    if let Some(hist) = doc.get("step_latency_us") {
        let _ = writeln!(out);
        let _ = writeln!(out, "step latency (us)");
        let field = |key: &str| hist.get(key).and_then(Json::as_f64).unwrap_or(0.0);
        let _ = writeln!(
            out,
            "  count {:<8} mean {:<10.1} p50 {:<10.1} p90 {:<10.1} p95 {:<10.1} p99 {:<10.1} max {:.1}",
            field("count"),
            field("mean_us"),
            field("p50_us"),
            field("p90_us"),
            field("p95_us"),
            field("p99_us"),
            field("max_us"),
        );
    }

    if let Some(by) = doc.get("violations_by_constraint").and_then(Json::as_obj) {
        if !by.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(out, "violations by constraint");
            let width = by.keys().map(String::len).max().unwrap_or(0).max(10);
            for (name, n) in by {
                let n = n.as_u64().unwrap_or(0);
                let _ = writeln!(out, "  {name:<width$}  {n}");
            }
        }
    }

    if let Some(space) = doc.get("space") {
        let field = |key: &str| space.get(key).and_then(Json::as_u64).unwrap_or(0);
        let _ = writeln!(out);
        let _ = writeln!(out, "space (latest)");
        let _ = writeln!(
            out,
            "  aux_keys {}  aux_ts {}  states {}  stored_tuples {}  retained {}",
            field("aux_keys"),
            field("aux_timestamps"),
            field("stored_states"),
            field("stored_tuples"),
            field("retained_units"),
        );
    }

    if let Some(serve) = doc.get("serve") {
        let field = |key: &str| serve.get(key).and_then(Json::as_u64).unwrap_or(0);
        let _ = writeln!(out);
        let _ = writeln!(out, "serve");
        let _ = writeln!(
            out,
            "  queue depth      {}/{} (peak {})",
            field("queue_depth"),
            field("queue_capacity"),
            field("queue_peak"),
        );
        let _ = writeln!(out, "  shed (BUSY)      {}", field("shed"));
        let _ = writeln!(
            out,
            "  connections      {} active, {} disconnected",
            field("connections"),
            field("disconnected"),
        );
        if let Some(age) = serve.get("last_checkpoint_age_ms").and_then(Json::as_u64) {
            let _ = writeln!(out, "  checkpoint age   {age} ms");
        }
        if let Some(ms) = serve.get("drain_ms").and_then(Json::as_u64) {
            let _ = writeln!(out, "  drain duration   {ms} ms");
        }
    }

    if let Some(samples) = doc.get("space_samples").and_then(Json::as_arr) {
        if !samples.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(out, "space trajectory ({} samples)", samples.len());
            let retained: Vec<u64> = samples
                .iter()
                .map(|s| s.get("retained_units").and_then(Json::as_u64).unwrap_or(0))
                .collect();
            let peak = retained.iter().copied().max().unwrap_or(0);
            for (sample, units) in samples.iter().zip(&retained) {
                let step = sample.get("step").and_then(Json::as_u64).unwrap_or(0);
                let checker = sample.get("checker").and_then(Json::as_str).unwrap_or("?");
                let bar_len = if peak == 0 {
                    0
                } else {
                    (units * 40 / peak.max(1)) as usize
                };
                let _ = writeln!(
                    out,
                    "  step {step:<8} {checker:<12} {units:>8}  {}",
                    "#".repeat(bar_len)
                );
            }
            let _ = writeln!(out, "  peak retained units: {peak}");
        }
    }

    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    /// A handcrafted snapshot in the exact shape `MetricsRegistry` emits.
    pub const FIXTURE: &str = r#"{
        "steps": 4,
        "transitions_started": 4,
        "tuples_ingested": 6,
        "violations": 2,
        "violating_steps": 1,
        "evals_by_constraint": {"unconfirmed": 4},
        "violations_by_constraint": {"unconfirmed": 2},
        "checkpoint_saves": 1,
        "checkpoint_restores": 0,
        "checkpoint_bytes": 321,
        "step_latency_us": {"count": 4, "min_us": 1.5, "max_us": 9.0,
            "mean_us": 4.0, "p50_us": 3.0, "p90_us": 8.0, "p95_us": 8.5,
            "p99_us": 9.0,
            "buckets": [{"le": 1, "count": 0}, {"le": "+Inf", "count": 4}]},
        "eval_latency_us": {"count": 4, "min_us": 1.0, "max_us": 8.0,
            "mean_us": 3.5, "p50_us": 2.5, "p90_us": 7.0, "p95_us": 7.5,
            "p99_us": 8.0,
            "buckets": [{"le": 1, "count": 1}, {"le": "+Inf", "count": 4}]},
        "space": {"aux_keys": 2, "aux_timestamps": 3, "stored_states": 1,
            "stored_tuples": 5, "retained_units": 10},
        "space_samples": [
            {"step": 0, "time": 0, "checker": "incremental", "constraint": "unconfirmed",
             "aux_keys": 1, "aux_timestamps": 1, "stored_states": 1,
             "stored_tuples": 2, "retained_units": 4},
            {"step": 2, "time": 2, "checker": "incremental", "constraint": "unconfirmed",
             "aux_keys": 2, "aux_timestamps": 3, "stored_states": 1,
             "stored_tuples": 5, "retained_units": 10}
        ],
        "checkers": ["incremental"]
    }"#;

    #[test]
    fn golden_rendering() {
        let doc = json::parse(FIXTURE).unwrap();
        let rendered = render(&doc).unwrap();
        let expected = "\
rtic run report
===============

  steps            4
  tuples ingested  6
  violations       2 witness(es) over 1 step(s)
  checkpoints      1 saved, 0 restored
  checkers         incremental

step latency (us)
  count 4        mean 4.0        p50 3.0        p90 8.0        p95 8.5        p99 9.0        max 9.0

violations by constraint
  unconfirmed  2

space (latest)
  aux_keys 2  aux_ts 3  states 1  stored_tuples 5  retained 10

space trajectory (2 samples)
  step 0        incremental         4  ################
  step 2        incremental        10  ########################################
  peak retained units: 10
";
        assert_eq!(rendered, expected);
    }

    #[test]
    fn serve_section_renders_when_present() {
        let doc = json::parse(FIXTURE).unwrap();
        // The batch fixture has no serve section…
        assert!(!render(&doc).unwrap().contains("serve"));
        // …and a resident-server snapshot grows one.
        let with_serve = FIXTURE.trim_end().trim_end_matches('}').to_string()
            + r#", "serve": {"queue_depth": 3, "queue_capacity": 64,
                "queue_peak": 17, "shed": 5, "connections": 2,
                "disconnected": 1, "last_checkpoint_age_ms": 250,
                "drain_ms": 12}}"#;
        let rendered = render(&json::parse(&with_serve).unwrap()).unwrap();
        assert!(
            rendered.contains("queue depth      3/64 (peak 17)"),
            "{rendered}"
        );
        assert!(rendered.contains("shed (BUSY)      5"), "{rendered}");
        assert!(
            rendered.contains("connections      2 active, 1 disconnected"),
            "{rendered}"
        );
        assert!(rendered.contains("checkpoint age   250 ms"), "{rendered}");
        assert!(rendered.contains("drain duration   12 ms"), "{rendered}");
    }

    #[test]
    fn missing_fields_are_reported() {
        let doc = json::parse(r#"{"steps": 3}"#).unwrap();
        let err = render(&doc).unwrap_err();
        assert!(err.contains("tuples_ingested"), "got: {err}");
    }

    #[test]
    fn registry_output_renders() {
        // End-to-end: a real registry snapshot renders without error.
        use rtic_core::{Checker, IncrementalChecker};
        use rtic_relation::{tuple, Catalog, Schema, Sort, Update};
        use rtic_temporal::parser::parse_constraint;
        use rtic_temporal::TimePoint;
        use std::sync::Arc;

        let catalog = Arc::new(
            Catalog::new()
                .with("p", Schema::of(&[("x", Sort::Str)]))
                .unwrap(),
        );
        let mut checker = IncrementalChecker::new(
            parse_constraint("deny d: p(x) && hist[0,1] p(x)").unwrap(),
            catalog,
        )
        .unwrap();
        let mut registry = crate::MetricsRegistry::new();
        let dyn_c: &mut dyn Checker = &mut checker;
        dyn_c
            .step_observed(
                TimePoint(1),
                &Update::new().with_insert("p", tuple!["a"]),
                &mut registry,
            )
            .unwrap();
        let doc = json::parse(&registry.render_json()).unwrap();
        let rendered = render(&doc).unwrap();
        assert!(rendered.contains("steps            1"));
    }
}
