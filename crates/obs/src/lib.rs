//! # rtic-obs — run telemetry for rtic checkers
//!
//! Concrete [`StepObserver`]s that plug into the hook layer defined in
//! `rtic_core::observe`:
//!
//! * [`MetricsRegistry`] — counters, gauges, and fixed-bucket latency
//!   histograms, with JSON and Prometheus text exposition.
//! * [`TraceWriter`] — span-style structured trace: one JSON line per
//!   step event, to a file or stderr.
//! * [`ChromeTraceWriter`] — the same event stream as a Chrome trace
//!   format JSON array, viewable in Perfetto / `chrome://tracing`.
//! * [`SpaceSampler`] — periodic [`rtic_core::SpaceStats`] snapshots, the
//!   measurement backing the paper's bounded-space claim.
//! * [`MultiObserver`] — fans one event stream out to several observers.
//! * [`report`] — renders a saved metrics JSON file as a summary table
//!   (the `rtic report` subcommand).
//!
//! The hooks themselves live in rtic-core so checkers gain instrumentation
//! without depending on this crate; plain `Checker::step` stays untouched
//! and [`NopObserver`] compiles to nothing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod report;
pub mod sampler;
pub mod trace;

mod multi;

pub use metrics::MetricsRegistry;
pub use multi::MultiObserver;
pub use rtic_core::{NopObserver, StepEvent, StepObserver};
pub use sampler::SpaceSampler;
pub use trace::{ChromeTraceWriter, TraceWriter};
