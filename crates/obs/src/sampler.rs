//! Periodic space sampling.

use rtic_core::observe::sample_space;
use rtic_core::{Checker, StepObserver};
use rtic_temporal::TimePoint;

/// Drives [`sample_space`] on a fixed schedule: one sample per checker
/// every `every` completed steps (counting from step 0), routed to
/// whatever observer the caller passes — typically a
/// [`crate::MetricsRegistry`] and/or [`crate::TraceWriter`].
///
/// This is the measurement loop behind the paper's bounded-space claim:
/// sampling a run long enough shows the incremental checker's retained
/// units plateau while the naive checker's grow with history length.
#[derive(Clone, Copy, Debug)]
pub struct SpaceSampler {
    every: u64,
    taken: u64,
}

impl SpaceSampler {
    /// Samples every `every` steps; `every = 0` disables sampling.
    pub fn new(every: u64) -> SpaceSampler {
        SpaceSampler { every, taken: 0 }
    }

    /// A disabled sampler.
    pub fn disabled() -> SpaceSampler {
        SpaceSampler::new(0)
    }

    /// Whether `step_index` lands on the sampling schedule. Callers that
    /// sample a source [`sample_space`] cannot reach (e.g. a
    /// `ConstraintSet`) use this to keep the same cadence, then record
    /// the round with [`SpaceSampler::note_sampled`].
    pub fn due(&self, step_index: u64) -> bool {
        self.every != 0 && step_index.is_multiple_of(self.every)
    }

    /// Records an externally-taken sampling round.
    pub fn note_sampled(&mut self) {
        self.taken += 1;
    }

    /// Called after each completed step; emits `SpaceSample` events when
    /// `step_index` lands on the schedule. Returns whether it sampled.
    pub fn after_step(
        &mut self,
        checkers: &[Box<dyn Checker>],
        time: TimePoint,
        step_index: u64,
        obs: &mut dyn StepObserver,
    ) -> bool {
        if !self.due(step_index) {
            return false;
        }
        sample_space(checkers, time, step_index, obs);
        self.taken += 1;
        true
    }

    /// Number of sampling rounds taken so far.
    pub fn rounds(&self) -> u64 {
        self.taken
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtic_core::observe::CollectingObserver;
    use rtic_core::IncrementalChecker;
    use rtic_relation::{Catalog, Schema, Sort, Update};
    use rtic_temporal::parser::parse_constraint;
    use std::sync::Arc;

    fn checkers() -> Vec<Box<dyn Checker>> {
        let catalog = Arc::new(
            Catalog::new()
                .with("p", Schema::of(&[("x", Sort::Str)]))
                .unwrap(),
        );
        vec![Box::new(
            IncrementalChecker::new(
                parse_constraint("deny d: p(x) && hist[0,1] p(x)").unwrap(),
                catalog,
            )
            .unwrap(),
        )]
    }

    #[test]
    fn samples_on_schedule_only() {
        let mut cs = checkers();
        let mut obs = CollectingObserver::default();
        let mut sampler = SpaceSampler::new(3);
        for step in 0..10u64 {
            cs[0].step(TimePoint(step), &Update::new()).unwrap();
            sampler.after_step(&cs, TimePoint(step), step, &mut obs);
        }
        // Steps 0, 3, 6, 9.
        assert_eq!(sampler.rounds(), 4);
        assert_eq!(obs.events.len(), 4);
    }

    #[test]
    fn disabled_sampler_never_fires() {
        let cs = checkers();
        let mut obs = CollectingObserver::default();
        let mut sampler = SpaceSampler::disabled();
        for step in 0..5u64 {
            assert!(!sampler.after_step(&cs, TimePoint(step), step, &mut obs));
        }
        assert!(obs.events.is_empty());
    }
}
