//! Fan-out to several observers.

use rtic_core::{StepEvent, StepObserver};

/// Delivers every event to each registered observer, in registration
/// order. Lets a run feed a [`crate::MetricsRegistry`] and a
/// [`crate::TraceWriter`] (and anything else) from one event stream.
#[derive(Default)]
pub struct MultiObserver<'a> {
    sinks: Vec<&'a mut dyn StepObserver>,
}

impl<'a> MultiObserver<'a> {
    /// An empty fan-out.
    pub fn new() -> MultiObserver<'a> {
        MultiObserver { sinks: Vec::new() }
    }

    /// Adds an observer (builder style).
    pub fn with(mut self, obs: &'a mut dyn StepObserver) -> MultiObserver<'a> {
        self.sinks.push(obs);
        self
    }

    /// Adds an observer.
    pub fn push(&mut self, obs: &'a mut dyn StepObserver) {
        self.sinks.push(obs);
    }

    /// Number of registered observers.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// Whether no observers are registered.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl StepObserver for MultiObserver<'_> {
    fn observe(&mut self, event: &StepEvent<'_>) {
        for sink in &mut self.sinks {
            sink.observe(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtic_core::observe::CollectingObserver;
    use rtic_temporal::TimePoint;

    #[test]
    fn fans_out_in_order() {
        let mut a = CollectingObserver::default();
        let mut b = CollectingObserver::default();
        {
            let mut multi = MultiObserver::new().with(&mut a).with(&mut b);
            assert_eq!(multi.len(), 2);
            multi.observe(&StepEvent::StepStart {
                checker: "incremental",
                time: TimePoint(1),
                tuples: 3,
            });
        }
        assert_eq!(a.events.len(), 1);
        assert_eq!(b.events.len(), 1);
    }
}
