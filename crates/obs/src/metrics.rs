//! Metrics registry: counters, gauges, latency histograms, and their JSON
//! and Prometheus text expositions.

use std::collections::BTreeMap;

use rtic_core::{
    PlanProfile, ProfiledNode, RuntimePlanStats, ShardStats, SpaceStats, StepEvent, StepObserver,
};

use crate::json::Json;

/// Upper bucket bounds for step latencies, in microseconds. The final
/// implicit bucket is `+Inf`.
pub const LATENCY_BUCKETS_US: [f64; 12] = [
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 10_000.0,
];

/// A fixed-bucket latency histogram over microseconds.
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    counts: [u64; LATENCY_BUCKETS_US.len() + 1],
    count: u64,
    sum_us: f64,
    min_us: f64,
    max_us: f64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram {
            counts: [0; LATENCY_BUCKETS_US.len() + 1],
            count: 0,
            sum_us: 0.0,
            min_us: f64::INFINITY,
            max_us: 0.0,
        }
    }
}

impl LatencyHistogram {
    /// Records one latency observation.
    pub fn record_ns(&mut self, ns: u64) {
        let us = ns as f64 / 1000.0;
        let idx = LATENCY_BUCKETS_US
            .iter()
            .position(|&le| us <= le)
            .unwrap_or(LATENCY_BUCKETS_US.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum_us += us;
        self.min_us = self.min_us.min(us);
        self.max_us = self.max_us.max(us);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us / self.count as f64
        }
    }

    /// Estimated quantile (`q` in 0..=1) by linear interpolation within
    /// the containing bucket; exact at the recorded min/max extremes.
    pub fn quantile_us(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut seen = 0u64;
        for (idx, &n) in self.counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let lo_seen = seen;
            seen += n;
            if (seen as f64) < rank {
                continue;
            }
            let lo = if idx == 0 {
                self.min_us.min(LATENCY_BUCKETS_US[0])
            } else {
                LATENCY_BUCKETS_US[idx - 1]
            };
            let hi = if idx == LATENCY_BUCKETS_US.len() {
                self.max_us.max(lo)
            } else {
                LATENCY_BUCKETS_US[idx]
            };
            let lo = lo.max(self.min_us).min(hi);
            let hi = hi.min(self.max_us).max(lo);
            let frac = ((rank - lo_seen as f64) / n as f64).clamp(0.0, 1.0);
            // Defensive clamp: whatever the bucket interpolation yields,
            // a quantile can never leave the recorded [min, max] range
            // (saturated edge buckets have bounds far from the extremes).
            return (lo + (hi - lo) * frac).clamp(self.min_us, self.max_us);
        }
        self.max_us
    }

    /// Cumulative `(le_us, count)` pairs, Prometheus-style, ending with
    /// the `+Inf` bucket (`le = f64::INFINITY`).
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut cum = 0u64;
        let mut out = Vec::with_capacity(self.counts.len());
        for (idx, &n) in self.counts.iter().enumerate() {
            cum += n;
            let le = LATENCY_BUCKETS_US
                .get(idx)
                .copied()
                .unwrap_or(f64::INFINITY);
            out.push((le, cum));
        }
        out
    }

    fn to_json(&self) -> Json {
        let buckets: Vec<Json> = self
            .cumulative_buckets()
            .into_iter()
            .map(|(le, count)| {
                Json::object()
                    .set(
                        "le",
                        if le.is_finite() {
                            Json::Num(le)
                        } else {
                            Json::Str("+Inf".into())
                        },
                    )
                    .set("count", count)
            })
            .collect();
        Json::object()
            .set("count", self.count)
            .set(
                "min_us",
                round3(if self.count == 0 { 0.0 } else { self.min_us }),
            )
            .set("max_us", round3(self.max_us))
            .set("mean_us", round3(self.mean_us()))
            .set("p50_us", round3(self.quantile_us(0.50)))
            .set("p90_us", round3(self.quantile_us(0.90)))
            .set("p95_us", round3(self.quantile_us(0.95)))
            .set("p99_us", round3(self.quantile_us(0.99)))
            .set("buckets", Json::Arr(buckets))
    }
}

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

/// One profiled plan node as a JSON row (shared by the per-constraint
/// profile listing and the aggregated hot-node list).
fn profiled_node_json(node: &ProfiledNode) -> Json {
    let mut doc = Json::object()
        .set("path", node.desc.path.clone())
        .set("label", node.desc.label.clone())
        .set("depth", node.desc.depth)
        .set("memoized", node.desc.memoized)
        .set("probe", node.desc.probe)
        .set("materialize", node.desc.materialize)
        .set("calls", node.counts.calls)
        .set("time_ns", node.counts.time_ns)
        .set("rows_in", node.counts.rows_in)
        .set("rows_out", node.counts.rows_out)
        .set("cache_hits", node.counts.cache_hits)
        .set("cache_misses", node.counts.cache_misses);
    // Vectorized nodes report their columnar batch shape.
    if let Some(rpb) = node.counts.rows_per_block() {
        doc = doc
            .set("blocks", node.counts.blocks)
            .set("rows_per_block", rpb);
    }
    doc
}

/// The latest ingest-plane gauges of a resident server (`rtic serve`),
/// mirrored from [`StepEvent::ServeSample`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeGauges {
    /// Updates currently waiting in the bounded ingest queue.
    pub queue_depth: usize,
    /// The queue's configured bound.
    pub queue_capacity: usize,
    /// High-water mark of the queue depth over the run.
    pub queue_peak: usize,
    /// Updates rejected with `BUSY` because the queue was full.
    pub shed: u64,
    /// Currently connected clients.
    pub connections: usize,
    /// Slow or stalled clients disconnected after the write timeout.
    pub disconnected: u64,
    /// Milliseconds since the last durable checkpoint, if any.
    pub last_checkpoint_age_ms: Option<u64>,
    /// Total graceful-drain duration in milliseconds, once drained.
    pub drain_ms: Option<u64>,
}

/// The running trajectory of a statistical model-checking run (`rtic
/// smc`), mirrored from [`StepEvent::SmcSample`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SmcGauges {
    /// The scenario being sampled.
    pub scenario: &'static str,
    /// Samples completed so far.
    pub samples: u64,
    /// Current worst-case sample bound.
    pub bound: u64,
    /// Per-constraint count of samples with at least one violation.
    pub violated_samples: BTreeMap<&'static str, u64>,
}

#[derive(Clone, Debug)]
struct SpaceSampleRow {
    step_index: u64,
    time: u64,
    checker: &'static str,
    constraint: &'static str,
    stats: SpaceStats,
}

/// A [`StepObserver`] that aggregates the event stream into counters,
/// gauges, and histograms, and renders them as JSON or Prometheus text.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    steps: u64,
    transitions_started: u64,
    tuples_ingested: u64,
    violations: u64,
    violating_steps: u64,
    evals_by_constraint: BTreeMap<&'static str, u64>,
    violations_by_constraint: BTreeMap<&'static str, u64>,
    checkpoint_saves: u64,
    checkpoint_restores: u64,
    checkpoint_bytes: u64,
    checkpoint_fallbacks: u64,
    batches: u64,
    batch_lines: u64,
    batch_tuples: u64,
    /// Lines in the most recent ingest batch (0 before the first batch).
    last_batch_size: u64,
    quarantines: u64,
    quarantined_constraints: Vec<&'static str>,
    bad_lines: u64,
    step_latency: LatencyHistogram,
    eval_latency: LatencyHistogram,
    checkers: BTreeMap<&'static str, SpaceStats>,
    /// Latest shard-lifecycle sample per sharded constraint.
    shards: BTreeMap<&'static str, ShardStats>,
    space_samples: Vec<SpaceSampleRow>,
    plan_stats: BTreeMap<(&'static str, &'static str), RuntimePlanStats>,
    plan_profiles: BTreeMap<(&'static str, &'static str), PlanProfile>,
    /// Latest resident-server ingest gauges (`rtic serve` runs only).
    serve: Option<ServeGauges>,
    /// Running SMC sampling trajectory (`rtic smc` runs only).
    smc: Option<SmcGauges>,
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Completed steps (one per transition, regardless of checker count).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Total violation witnesses across all constraints.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Tuples inserted plus deleted across all observed transitions.
    pub fn tuples_ingested(&self) -> u64 {
        self.tuples_ingested
    }

    /// The step-latency histogram.
    pub fn step_latency(&self) -> &LatencyHistogram {
        &self.step_latency
    }

    /// Constraint engines quarantined after a panic.
    pub fn quarantines(&self) -> u64 {
        self.quarantines
    }

    /// Names of quarantined constraints, in quarantine order.
    pub fn quarantined_constraints(&self) -> &[&'static str] {
        &self.quarantined_constraints
    }

    /// Corrupt checkpoint candidates rejected during recovery.
    pub fn checkpoint_fallbacks(&self) -> u64 {
        self.checkpoint_fallbacks
    }

    /// Malformed history lines skipped under a lenient bad-line policy.
    pub fn bad_lines(&self) -> u64 {
        self.bad_lines
    }

    /// Ingest batches applied via the amortized batch path.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// History lines absorbed through batched ingestion.
    pub fn batch_lines(&self) -> u64 {
        self.batch_lines
    }

    /// Lines in the most recent ingest batch (0 before the first batch).
    pub fn last_batch_size(&self) -> u64 {
        self.last_batch_size
    }

    /// Latest observed space stats, summed across checkers.
    pub fn space_now(&self) -> SpaceStats {
        let mut total = SpaceStats::default();
        for stats in self.checkers.values() {
            total.aux_keys += stats.aux_keys;
            total.aux_timestamps += stats.aux_timestamps;
            total.stored_states += stats.stored_states;
            total.stored_tuples += stats.stored_tuples;
        }
        total
    }

    /// Latest observed space stats per checker backend.
    pub fn space_by_checker(&self) -> impl Iterator<Item = (&'static str, SpaceStats)> + '_ {
        self.checkers.iter().map(|(name, stats)| (*name, *stats))
    }

    /// Number of space samples recorded.
    pub fn space_sample_count(&self) -> usize {
        self.space_samples.len()
    }

    /// Latest shard-lifecycle counters per sharded constraint, in name
    /// order. Empty when no constraint runs sharded.
    pub fn shard_stats(&self) -> impl Iterator<Item = (&'static str, ShardStats)> + '_ {
        self.shards.iter().map(|(name, stats)| (*name, *stats))
    }

    /// The latest resident-server ingest gauges, when the event stream
    /// came from an `rtic serve` run.
    pub fn serve_gauges(&self) -> Option<ServeGauges> {
        self.serve
    }

    /// The running SMC sampling trajectory, when the event stream came
    /// from an `rtic smc` run.
    pub fn smc_gauges(&self) -> Option<&SmcGauges> {
        self.smc.as_ref()
    }

    /// Latest compiled-plan statistics per checker backend, aggregated
    /// across that backend's constraints (plan shapes add up, the scratch
    /// high-water mark takes the maximum). Empty when every checker runs
    /// the interpreting evaluator.
    pub fn plan_stats_by_checker(&self) -> BTreeMap<&'static str, RuntimePlanStats> {
        let mut by_checker: BTreeMap<&'static str, RuntimePlanStats> = BTreeMap::new();
        for ((checker, _constraint), stats) in &self.plan_stats {
            by_checker.entry(checker).or_default().absorb(*stats);
        }
        by_checker
    }

    /// Latest per-plan-node execution profile per `(checker, constraint)`,
    /// in key order. Empty unless a profiled run sampled its checkers.
    pub fn plan_profiles(
        &self,
    ) -> impl Iterator<Item = (&'static str, &'static str, &PlanProfile)> + '_ {
        self.plan_profiles
            .iter()
            .map(|((checker, constraint), profile)| (*checker, *constraint, profile))
    }

    /// The `limit` hottest plan nodes by inclusive wall time across every
    /// profiled constraint: `(constraint, node)`, hottest first, ties
    /// broken by constraint name and node id for determinism.
    pub fn hot_nodes(&self, limit: usize) -> Vec<(&'static str, &ProfiledNode)> {
        let mut rows: Vec<(&'static str, &ProfiledNode)> = self
            .plan_profiles
            .iter()
            .flat_map(|((_, constraint), profile)| {
                profile.nodes.iter().map(move |n| (*constraint, n))
            })
            .collect();
        rows.sort_by(|a, b| {
            b.1.counts
                .time_ns
                .cmp(&a.1.counts.time_ns)
                .then(a.0.cmp(b.0))
                .then(a.1.desc.id.cmp(&b.1.desc.id))
        });
        rows.truncate(limit);
        rows
    }

    /// The most recent space sample per constraint, in first-sampled
    /// order: `(constraint, checker, stats)`.
    pub fn latest_space_by_constraint(&self) -> Vec<(&'static str, &'static str, SpaceStats)> {
        let mut order: Vec<&'static str> = Vec::new();
        let mut latest: BTreeMap<&'static str, (&'static str, SpaceStats)> = BTreeMap::new();
        for row in &self.space_samples {
            if !latest.contains_key(row.constraint) {
                order.push(row.constraint);
            }
            latest.insert(row.constraint, (row.checker, row.stats));
        }
        order
            .into_iter()
            .map(|constraint| {
                let (checker, stats) = latest[constraint];
                (constraint, checker, stats)
            })
            .collect()
    }

    /// The full snapshot as a JSON document.
    pub fn to_json(&self) -> Json {
        let by = |map: &BTreeMap<&'static str, u64>| {
            let mut obj = Json::object();
            for (name, n) in map {
                obj = obj.set(name, *n);
            }
            obj
        };
        let space = self.space_now();
        let samples: Vec<Json> = self
            .space_samples
            .iter()
            .map(|row| {
                Json::object()
                    .set("step", row.step_index)
                    .set("time", row.time)
                    .set("checker", row.checker)
                    .set("constraint", row.constraint)
                    .set("aux_keys", row.stats.aux_keys)
                    .set("aux_timestamps", row.stats.aux_timestamps)
                    .set("stored_states", row.stats.stored_states)
                    .set("stored_tuples", row.stats.stored_tuples)
                    .set("retained_units", row.stats.retained_units())
            })
            .collect();
        let checkers: Vec<Json> = self
            .checkers
            .keys()
            .map(|name| Json::Str((*name).into()))
            .collect();
        let mut doc = Json::object()
            .set("steps", self.steps)
            .set("transitions_started", self.transitions_started)
            .set("tuples_ingested", self.tuples_ingested)
            .set("violations", self.violations)
            .set("violating_steps", self.violating_steps)
            .set("evals_by_constraint", by(&self.evals_by_constraint))
            .set(
                "violations_by_constraint",
                by(&self.violations_by_constraint),
            )
            .set("checkpoint_saves", self.checkpoint_saves)
            .set("checkpoint_restores", self.checkpoint_restores)
            .set("checkpoint_bytes", self.checkpoint_bytes)
            .set("checkpoint_fallbacks", self.checkpoint_fallbacks)
            .set("quarantines", self.quarantines)
            .set(
                "quarantined_constraints",
                Json::Arr(
                    self.quarantined_constraints
                        .iter()
                        .map(|name| Json::Str((*name).into()))
                        .collect(),
                ),
            )
            .set("bad_lines", self.bad_lines)
            .set("batches", self.batches)
            .set("batch_lines", self.batch_lines)
            .set("batch_tuples", self.batch_tuples)
            .set("last_batch_size", self.last_batch_size)
            .set("step_latency_us", self.step_latency.to_json())
            .set("eval_latency_us", self.eval_latency.to_json())
            .set(
                "space",
                Json::object()
                    .set("aux_keys", space.aux_keys)
                    .set("aux_timestamps", space.aux_timestamps)
                    .set("stored_states", space.stored_states)
                    .set("stored_tuples", space.stored_tuples)
                    .set("retained_units", space.retained_units()),
            )
            .set("space_samples", Json::Arr(samples))
            .set("checkers", Json::Arr(checkers))
            .set("shards", {
                let mut obj = Json::object();
                for (name, stats) in &self.shards {
                    obj = obj.set(
                        name,
                        Json::object()
                            .set("live", stats.live)
                            .set("created", stats.created)
                            .set("evicted", stats.evicted)
                            .set("peak", stats.peak),
                    );
                }
                obj
            })
            .set("plan_stats", {
                let mut obj = Json::object();
                for (name, stats) in self.plan_stats_by_checker() {
                    obj = obj.set(
                        name,
                        Json::object()
                            .set("nodes", stats.plan.nodes)
                            .set("atom_shapes", stats.plan.atom_shapes)
                            .set("join_shapes", stats.plan.join_shapes)
                            .set("probe_nodes", stats.plan.probe_nodes)
                            .set("cached_nodes", stats.plan.cached_nodes)
                            .set("scratch_high_water", stats.scratch_high_water),
                    );
                }
                obj
            })
            .set("plan_profiles", {
                let mut obj = Json::object();
                for ((checker, constraint), profile) in &self.plan_profiles {
                    let nodes: Vec<Json> = profile.nodes.iter().map(profiled_node_json).collect();
                    obj = obj.set(
                        constraint,
                        Json::object()
                            .set("checker", *checker)
                            .set("total_time_ns", profile.total_time_ns())
                            .set("nodes", Json::Arr(nodes)),
                    );
                }
                obj
            })
            .set(
                "plan_hot_nodes",
                Json::Arr(
                    self.hot_nodes(5)
                        .into_iter()
                        .map(|(constraint, node)| {
                            profiled_node_json(node).set("constraint", constraint)
                        })
                        .collect(),
                ),
            );
        if let Some(s) = &self.serve {
            let mut obj = Json::object()
                .set("queue_depth", s.queue_depth)
                .set("queue_capacity", s.queue_capacity)
                .set("queue_peak", s.queue_peak)
                .set("shed", s.shed)
                .set("connections", s.connections)
                .set("disconnected", s.disconnected);
            if let Some(age) = s.last_checkpoint_age_ms {
                obj = obj.set("last_checkpoint_age_ms", age);
            }
            if let Some(ms) = s.drain_ms {
                obj = obj.set("drain_ms", ms);
            }
            doc = doc.set("serve", obj);
        }
        if let Some(s) = &self.smc {
            let mut violated = Json::object();
            for (name, n) in &s.violated_samples {
                violated = violated.set(name, *n);
            }
            doc = doc.set(
                "smc",
                Json::object()
                    .set("scenario", s.scenario)
                    .set("samples", s.samples)
                    .set("bound", s.bound)
                    .set("violated_samples", violated),
            );
        }
        doc
    }

    /// Pretty-printed JSON exposition.
    pub fn render_json(&self) -> String {
        self.to_json().render_pretty()
    }

    /// Prometheus text exposition (metric names under the `rtic_` prefix).
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut counter = |name: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP rtic_{name} {help}");
            let _ = writeln!(out, "# TYPE rtic_{name} counter");
            let _ = writeln!(out, "rtic_{name} {value}");
        };
        counter(
            "steps_total",
            "Completed logical steps (transitions).",
            self.steps,
        );
        counter(
            "tuples_ingested_total",
            "Tuples inserted plus deleted across all transitions.",
            self.tuples_ingested,
        );
        counter(
            "violations_total",
            "Violation witnesses across all constraints.",
            self.violations,
        );
        counter(
            "violating_steps_total",
            "Steps with at least one violation witness.",
            self.violating_steps,
        );
        counter(
            "checkpoint_saves_total",
            "Checkpoints serialized.",
            self.checkpoint_saves,
        );
        counter(
            "checkpoint_restores_total",
            "Checkpoints restored.",
            self.checkpoint_restores,
        );
        counter(
            "checkpoint_fallbacks_total",
            "Corrupt checkpoint candidates rejected during recovery.",
            self.checkpoint_fallbacks,
        );
        counter(
            "quarantines_total",
            "Constraint engines quarantined after a panic.",
            self.quarantines,
        );
        counter(
            "bad_lines_total",
            "Malformed history lines skipped under a lenient policy.",
            self.bad_lines,
        );
        if self.batches > 0 {
            counter(
                "batches_total",
                "Ingest batches applied via the amortized batch path.",
                self.batches,
            );
            counter(
                "batch_lines_total",
                "History lines absorbed through batched ingestion.",
                self.batch_lines,
            );
            counter(
                "batch_tuples_total",
                "Tuples absorbed through batched ingestion.",
                self.batch_tuples,
            );
            let _ = writeln!(
                out,
                "# HELP rtic_batch_size Lines in the most recent ingest batch."
            );
            let _ = writeln!(out, "# TYPE rtic_batch_size gauge");
            let _ = writeln!(out, "rtic_batch_size {}", self.last_batch_size);
        }

        let _ = writeln!(out, "# HELP rtic_evals_total Constraint evaluations.");
        let _ = writeln!(out, "# TYPE rtic_evals_total counter");
        for (name, n) in &self.evals_by_constraint {
            let _ = writeln!(out, "rtic_evals_total{{constraint=\"{name}\"}} {n}");
        }
        let _ = writeln!(
            out,
            "# HELP rtic_constraint_violations_total Violation witnesses per constraint."
        );
        let _ = writeln!(out, "# TYPE rtic_constraint_violations_total counter");
        for (name, n) in &self.violations_by_constraint {
            let _ = writeln!(
                out,
                "rtic_constraint_violations_total{{constraint=\"{name}\"}} {n}"
            );
        }

        let _ = writeln!(
            out,
            "# HELP rtic_step_latency_seconds Wall-clock latency per logical step."
        );
        let _ = writeln!(out, "# TYPE rtic_step_latency_seconds histogram");
        for (le_us, count) in self.step_latency.cumulative_buckets() {
            let le = if le_us.is_finite() {
                format!("{}", le_us / 1e6)
            } else {
                "+Inf".to_string()
            };
            let _ = writeln!(
                out,
                "rtic_step_latency_seconds_bucket{{le=\"{le}\"}} {count}"
            );
        }
        let _ = writeln!(
            out,
            "rtic_step_latency_seconds_sum {}",
            self.step_latency.mean_us() * self.step_latency.count() as f64 / 1e6
        );
        let _ = writeln!(
            out,
            "rtic_step_latency_seconds_count {}",
            self.step_latency.count()
        );

        let _ = writeln!(
            out,
            "# HELP rtic_retained_units Current space footprint per checker backend."
        );
        let _ = writeln!(out, "# TYPE rtic_retained_units gauge");
        for (name, stats) in &self.checkers {
            let _ = writeln!(
                out,
                "rtic_retained_units{{checker=\"{name}\"}} {}",
                stats.retained_units()
            );
        }
        let _ = writeln!(
            out,
            "# HELP rtic_stored_tuples Currently stored tuples per checker backend."
        );
        let _ = writeln!(out, "# TYPE rtic_stored_tuples gauge");
        for (name, stats) in &self.checkers {
            let _ = writeln!(
                out,
                "rtic_stored_tuples{{checker=\"{name}\"}} {}",
                stats.stored_tuples
            );
        }
        if !self.shards.is_empty() {
            let mut shard_gauge = |name: &str, help: &str, pick: &dyn Fn(&ShardStats) -> u64| {
                let _ = writeln!(out, "# HELP rtic_{name} {help}");
                let _ = writeln!(out, "# TYPE rtic_{name} gauge");
                for (constraint, stats) in &self.shards {
                    let _ = writeln!(
                        out,
                        "rtic_{name}{{constraint=\"{constraint}\"}} {}",
                        pick(stats)
                    );
                }
            };
            shard_gauge(
                "shards_live",
                "Currently materialized entity-key shards per constraint.",
                &|s| s.live as u64,
            );
            shard_gauge(
                "shards_created_total",
                "Shards created since the run (or resume) began.",
                &|s| s.created,
            );
            shard_gauge(
                "shards_evicted_total",
                "Idle shards evicted back into the phantom.",
                &|s| s.evicted,
            );
            shard_gauge(
                "shards_peak",
                "High-water mark of live shards per constraint.",
                &|s| s.peak as u64,
            );
        }
        let plans = self.plan_stats_by_checker();
        if !plans.is_empty() {
            let _ = writeln!(
                out,
                "# HELP rtic_plan_nodes Compiled evaluation-plan nodes per checker backend."
            );
            let _ = writeln!(out, "# TYPE rtic_plan_nodes gauge");
            for (name, stats) in &plans {
                let _ = writeln!(
                    out,
                    "rtic_plan_nodes{{checker=\"{name}\"}} {}",
                    stats.plan.nodes
                );
            }
            let _ = writeln!(
                out,
                "# HELP rtic_plan_scratch_high_water Peak reusable scratch-buffer size per checker backend."
            );
            let _ = writeln!(out, "# TYPE rtic_plan_scratch_high_water gauge");
            for (name, stats) in &plans {
                let _ = writeln!(
                    out,
                    "rtic_plan_scratch_high_water{{checker=\"{name}\"}} {}",
                    stats.scratch_high_water
                );
            }
        }
        let hot = self.hot_nodes(10);
        if !hot.is_empty() {
            let _ = writeln!(
                out,
                "# HELP rtic_plan_node_time_seconds Inclusive wall time of the hottest plan nodes."
            );
            let _ = writeln!(out, "# TYPE rtic_plan_node_time_seconds gauge");
            for (constraint, node) in &hot {
                let _ = writeln!(
                    out,
                    "rtic_plan_node_time_seconds{{constraint=\"{constraint}\",node=\"{}\"}} {}",
                    node.desc.path,
                    node.counts.time_ns as f64 / 1e9
                );
            }
            let _ = writeln!(
                out,
                "# HELP rtic_plan_node_calls Executions of the hottest plan nodes."
            );
            let _ = writeln!(out, "# TYPE rtic_plan_node_calls gauge");
            for (constraint, node) in &hot {
                let _ = writeln!(
                    out,
                    "rtic_plan_node_calls{{constraint=\"{constraint}\",node=\"{}\"}} {}",
                    node.desc.path, node.counts.calls
                );
            }
            let _ = writeln!(
                out,
                "# HELP rtic_plan_node_rows_out Output rows of the hottest plan nodes."
            );
            let _ = writeln!(out, "# TYPE rtic_plan_node_rows_out gauge");
            for (constraint, node) in &hot {
                let _ = writeln!(
                    out,
                    "rtic_plan_node_rows_out{{constraint=\"{constraint}\",node=\"{}\"}} {}",
                    node.desc.path, node.counts.rows_out
                );
            }
        }
        if let Some(s) = &self.serve {
            let mut gauge = |name: &str, help: &str, value: f64| {
                let _ = writeln!(out, "# HELP rtic_{name} {help}");
                let _ = writeln!(out, "# TYPE rtic_{name} gauge");
                let _ = writeln!(out, "rtic_{name} {value}");
            };
            gauge(
                "serve_queue_depth",
                "Updates waiting in the resident server's ingest queue.",
                s.queue_depth as f64,
            );
            gauge(
                "serve_queue_capacity",
                "Bound of the resident server's ingest queue.",
                s.queue_capacity as f64,
            );
            gauge(
                "serve_queue_peak",
                "High-water mark of the ingest queue depth.",
                s.queue_peak as f64,
            );
            gauge(
                "serve_shed_total",
                "Updates rejected with BUSY because the ingest queue was full.",
                s.shed as f64,
            );
            gauge(
                "serve_connections",
                "Currently connected clients.",
                s.connections as f64,
            );
            gauge(
                "serve_disconnected_total",
                "Clients disconnected for stalling past the write timeout.",
                s.disconnected as f64,
            );
            if let Some(age) = s.last_checkpoint_age_ms {
                gauge(
                    "serve_last_checkpoint_age_seconds",
                    "Seconds since the resident server's last checkpoint.",
                    age as f64 / 1e3,
                );
            }
            if let Some(ms) = s.drain_ms {
                gauge(
                    "serve_drain_duration_seconds",
                    "Wall time the graceful drain took.",
                    ms as f64 / 1e3,
                );
            }
        }
        if let Some(s) = &self.smc {
            let mut gauge = |name: &str, help: &str, value: f64| {
                let _ = writeln!(out, "# HELP rtic_{name} {help}");
                let _ = writeln!(out, "# TYPE rtic_{name} gauge");
                let _ = writeln!(out, "rtic_{name} {value}");
            };
            gauge(
                "smc_samples_total",
                "SMC samples completed so far.",
                s.samples as f64,
            );
            gauge(
                "smc_sample_bound",
                "Current worst-case SMC sample bound.",
                s.bound as f64,
            );
            let _ = writeln!(
                out,
                "# HELP rtic_smc_violated_samples_total SMC samples with at least one violation, per constraint."
            );
            let _ = writeln!(out, "# TYPE rtic_smc_violated_samples_total counter");
            for (name, n) in &s.violated_samples {
                let _ = writeln!(
                    out,
                    "rtic_smc_violated_samples_total{{scenario=\"{}\",constraint=\"{name}\"}} {n}",
                    s.scenario
                );
            }
        }
        out
    }
}

impl StepObserver for MetricsRegistry {
    fn observe(&mut self, event: &StepEvent<'_>) {
        match event {
            StepEvent::StepStart { tuples, .. } => {
                self.transitions_started += 1;
                self.tuples_ingested += *tuples as u64;
            }
            StepEvent::ConstraintEval {
                checker,
                constraint,
                violations,
                latency_ns,
                ..
            } => {
                *self
                    .evals_by_constraint
                    .entry(constraint.as_str())
                    .or_default() += 1;
                if *violations > 0 {
                    *self
                        .violations_by_constraint
                        .entry(constraint.as_str())
                        .or_default() += *violations as u64;
                }
                self.eval_latency.record_ns(*latency_ns);
                self.checkers.entry(checker).or_default();
            }
            StepEvent::Violation { .. } => {}
            StepEvent::StepEnd {
                violations,
                latency_ns,
                ..
            } => {
                self.steps += 1;
                self.violations += *violations as u64;
                if *violations > 0 {
                    self.violating_steps += 1;
                }
                self.step_latency.record_ns(*latency_ns);
            }
            StepEvent::CheckpointSave { bytes, .. } => {
                self.checkpoint_saves += 1;
                self.checkpoint_bytes += *bytes as u64;
            }
            StepEvent::CheckpointRestore { .. } => {
                self.checkpoint_restores += 1;
            }
            StepEvent::ConstraintQuarantined { constraint, .. } => {
                self.quarantines += 1;
                self.quarantined_constraints.push(constraint.as_str());
            }
            StepEvent::CheckpointFallback { .. } => {
                self.checkpoint_fallbacks += 1;
            }
            StepEvent::BadLine { .. } => {
                self.bad_lines += 1;
            }
            StepEvent::PlanStatsSample {
                checker,
                constraint,
                stats,
            } => {
                // Keyed per (checker, constraint) so re-sampling replaces the
                // previous snapshot instead of double-counting plan shapes.
                self.plan_stats
                    .insert((checker, constraint.as_str()), *stats);
            }
            StepEvent::PlanProfileSample {
                checker,
                constraint,
                profile,
            } => {
                // Counters are cumulative over the run, so the latest
                // sample replaces any earlier snapshot.
                self.plan_profiles
                    .insert((checker, constraint.as_str()), (*profile).clone());
            }
            StepEvent::SpaceSample {
                checker,
                constraint,
                time,
                step_index,
                stats,
            } => {
                self.checkers.insert(checker, *stats);
                self.space_samples.push(SpaceSampleRow {
                    step_index: *step_index,
                    time: time.0,
                    checker,
                    constraint: constraint.as_str(),
                    stats: *stats,
                });
            }
            StepEvent::ServeSample {
                queue_depth,
                queue_capacity,
                queue_peak,
                shed,
                connections,
                disconnected,
                last_checkpoint_age_ms,
                drain_ms,
            } => {
                // Gauges: the latest sample replaces the previous one.
                self.serve = Some(ServeGauges {
                    queue_depth: *queue_depth,
                    queue_capacity: *queue_capacity,
                    queue_peak: *queue_peak,
                    shed: *shed,
                    connections: *connections,
                    disconnected: *disconnected,
                    last_checkpoint_age_ms: *last_checkpoint_age_ms,
                    drain_ms: *drain_ms,
                });
            }
            StepEvent::SmcSample {
                scenario,
                sample,
                bound,
                violated_constraints,
            } => {
                let gauges = self.smc.get_or_insert_with(SmcGauges::default);
                gauges.scenario = scenario.as_str();
                gauges.samples = *sample + 1;
                gauges.bound = *bound;
                for name in violated_constraints {
                    *gauges.violated_samples.entry(name.as_str()).or_default() += 1;
                }
            }
            StepEvent::BatchIngest { lines, tuples } => {
                self.batches += 1;
                self.batch_lines += *lines as u64;
                self.batch_tuples += *tuples as u64;
                self.last_batch_size = *lines as u64;
            }
            StepEvent::ShardSample {
                constraint, stats, ..
            } => {
                // Gauges: the latest sample replaces the previous one.
                self.shards.insert(constraint.as_str(), *stats);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use rtic_core::{Checker, IncrementalChecker};
    use rtic_relation::{tuple, Catalog, Schema, Sort, Update};
    use rtic_temporal::parser::parse_constraint;
    use rtic_temporal::TimePoint;
    use std::sync::Arc;

    fn run_workload(registry: &mut MetricsRegistry) {
        let catalog = Arc::new(
            Catalog::new()
                .with("p", Schema::of(&[("x", Sort::Str)]))
                .unwrap(),
        );
        let mut checker = IncrementalChecker::new(
            parse_constraint("deny d: p(x) && hist[0,1] p(x)").unwrap(),
            catalog,
        )
        .unwrap();
        let dyn_c: &mut dyn Checker = &mut checker;
        dyn_c
            .step_observed(
                TimePoint(1),
                &Update::new().with_insert("p", tuple!["a"]),
                registry,
            )
            .unwrap();
        dyn_c
            .step_observed(TimePoint(2), &Update::new(), registry)
            .unwrap();
    }

    #[test]
    fn counters_track_the_run() {
        let mut registry = MetricsRegistry::new();
        run_workload(&mut registry);
        assert_eq!(registry.steps(), 2);
        assert_eq!(registry.tuples_ingested(), 1);
        // Both steps violate: hist over the empty prefix is vacuously true.
        assert_eq!(registry.violations(), 2);
        assert_eq!(registry.evals_by_constraint.get("d"), Some(&2));
        assert_eq!(registry.violations_by_constraint.get("d"), Some(&2));
        assert_eq!(registry.step_latency().count(), 2);
    }

    #[test]
    fn json_exposition_is_parseable_and_consistent() {
        let mut registry = MetricsRegistry::new();
        run_workload(&mut registry);
        let doc = json::parse(&registry.render_json()).unwrap();
        assert_eq!(doc.get("steps").and_then(Json::as_u64), Some(2));
        assert_eq!(doc.get("violations").and_then(Json::as_u64), Some(2));
        let hist = doc.get("step_latency_us").unwrap();
        assert_eq!(hist.get("count").and_then(Json::as_u64), Some(2));
        let buckets = hist.get("buckets").and_then(Json::as_arr).unwrap();
        assert_eq!(buckets.len(), LATENCY_BUCKETS_US.len() + 1);
        assert_eq!(
            buckets.last().unwrap().get("count").and_then(Json::as_u64),
            Some(2),
            "+Inf bucket holds every observation"
        );
    }

    #[test]
    fn prometheus_exposition_has_core_families() {
        let mut registry = MetricsRegistry::new();
        run_workload(&mut registry);
        let text = registry.render_prometheus();
        assert!(text.contains("rtic_steps_total 2"));
        assert!(text.contains("rtic_violations_total 2"));
        assert!(text.contains("rtic_constraint_violations_total{constraint=\"d\"} 2"));
        assert!(text.contains("rtic_step_latency_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("# TYPE rtic_step_latency_seconds histogram"));
    }

    #[test]
    fn resilience_events_reach_counters_and_expositions() {
        use rtic_relation::Symbol;
        let mut registry = MetricsRegistry::new();
        registry.observe(&StepEvent::ConstraintQuarantined {
            checker: "set",
            constraint: Symbol::intern("flaky"),
            time: TimePoint(7),
            detail: "boom".into(),
        });
        registry.observe(&StepEvent::CheckpointFallback {
            path: "ckpt.1".into(),
            detail: "checksum mismatch".into(),
        });
        registry.observe(&StepEvent::BadLine {
            line: 12,
            detail: "expected `@`".into(),
        });
        registry.observe(&StepEvent::BadLine {
            line: 19,
            detail: "expected a value".into(),
        });
        assert_eq!(registry.quarantines(), 1);
        assert_eq!(registry.quarantined_constraints(), ["flaky"]);
        assert_eq!(registry.checkpoint_fallbacks(), 1);
        assert_eq!(registry.bad_lines(), 2);
        let doc = json::parse(&registry.render_json()).unwrap();
        assert_eq!(doc.get("quarantines").and_then(Json::as_u64), Some(1));
        assert_eq!(doc.get("bad_lines").and_then(Json::as_u64), Some(2));
        assert_eq!(
            doc.get("checkpoint_fallbacks").and_then(Json::as_u64),
            Some(1)
        );
        let text = registry.render_prometheus();
        assert!(text.contains("rtic_quarantines_total 1"));
        assert!(text.contains("rtic_checkpoint_fallbacks_total 1"));
        assert!(text.contains("rtic_bad_lines_total 2"));
    }

    #[test]
    fn plan_stats_samples_aggregate_per_checker() {
        use rtic_core::RuntimePlanStats;
        use rtic_relation::Symbol;
        let mut registry = MetricsRegistry::new();
        let sample = |constraint: &str, nodes: usize, high: usize| StepEvent::PlanStatsSample {
            checker: "incremental",
            constraint: Symbol::intern(constraint),
            stats: RuntimePlanStats {
                plan: rtic_core::PlanStats {
                    nodes,
                    atom_shapes: 2,
                    join_shapes: 1,
                    probe_nodes: 1,
                    cached_nodes: 1,
                },
                scratch_high_water: high,
            },
        };
        registry.observe(&sample("a", 5, 8));
        registry.observe(&sample("b", 3, 2));
        // Re-sampling the same constraint replaces, never double-counts.
        registry.observe(&sample("a", 5, 16));
        let by = registry.plan_stats_by_checker();
        let inc = by.get("incremental").unwrap();
        assert_eq!(inc.plan.nodes, 8);
        assert_eq!(inc.scratch_high_water, 16);
        let doc = json::parse(&registry.render_json()).unwrap();
        let plans = doc.get("plan_stats").unwrap().get("incremental").unwrap();
        assert_eq!(plans.get("nodes").and_then(Json::as_u64), Some(8));
        assert_eq!(
            plans.get("scratch_high_water").and_then(Json::as_u64),
            Some(16)
        );
        let text = registry.render_prometheus();
        assert!(text.contains("rtic_plan_nodes{checker=\"incremental\"} 8"));
        assert!(text.contains("rtic_plan_scratch_high_water{checker=\"incremental\"} 16"));
    }

    #[test]
    fn histogram_quantiles_are_ordered_and_bounded() {
        let mut h = LatencyHistogram::default();
        for ns in [800, 1_500, 3_000, 40_000, 90_000, 2_000_000] {
            h.record_ns(ns);
        }
        let (p50, p95, p99) = (h.quantile_us(0.5), h.quantile_us(0.95), h.quantile_us(0.99));
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!(p99 <= h.max_us);
        assert!(h.quantile_us(0.0) >= 0.0);
        assert_eq!(h.count(), 6);
    }

    #[test]
    fn empty_histogram_renders_zeros() {
        let h = LatencyHistogram::default();
        assert_eq!(h.mean_us(), 0.0);
        assert_eq!(h.quantile_us(0.99), 0.0);
        assert_eq!(h.quantile_us(0.0), 0.0);
        assert_eq!(h.count(), 0);
        let doc = h.to_json();
        assert_eq!(doc.get("min_us").and_then(Json::as_f64), Some(0.0));
        assert_eq!(doc.get("p50_us").and_then(Json::as_f64), Some(0.0));
        assert_eq!(doc.get("p90_us").and_then(Json::as_f64), Some(0.0));
        let buckets = doc.get("buckets").and_then(Json::as_arr).unwrap();
        assert!(buckets
            .iter()
            .all(|b| b.get("count").and_then(Json::as_u64) == Some(0)));
    }

    #[test]
    fn observations_beyond_the_last_bucket_land_in_plus_inf() {
        let mut h = LatencyHistogram::default();
        // All far past the last finite bound (10ms).
        for ns in [20_000_000u64, 50_000_000, 90_000_000] {
            h.record_ns(ns);
        }
        let buckets = h.cumulative_buckets();
        let (le, count) = *buckets.last().unwrap();
        assert!(le.is_infinite());
        assert_eq!(count, 3);
        assert!(
            buckets[..buckets.len() - 1].iter().all(|&(_, c)| c == 0),
            "finite buckets stay empty"
        );
        // Quantiles interpolate between the last bound and the seen max.
        let p50 = h.quantile_us(0.5);
        assert!(p50 >= *LATENCY_BUCKETS_US.last().unwrap(), "{p50}");
        assert!(p50 <= h.max_us, "{p50} vs max {}", h.max_us);
        assert_eq!(h.quantile_us(1.0), h.max_us);
    }

    #[test]
    fn saturated_bucket_quantiles_stay_within_recorded_extremes() {
        // Every observation saturates one finite bucket (2.5ms..10ms]
        // whose bounds sit far outside the recorded extremes; quantiles
        // must stay clamped to [min, max] anyway.
        let mut h = LatencyHistogram::default();
        for ns in [2_600_000u64, 3_000_000, 3_100_000, 3_200_000] {
            h.record_ns(ns);
        }
        for i in 0..=100u32 {
            let q = f64::from(i) / 100.0;
            let v = h.quantile_us(q);
            assert!(
                v + 1e-9 >= h.min_us && v <= h.max_us + 1e-9,
                "q={q}: {v} outside [{}, {}]",
                h.min_us,
                h.max_us
            );
        }
        assert_eq!(h.quantile_us(1.0), h.max_us);
        assert!(
            h.quantile_us(0.0) + 1e-9 >= 2_600.0,
            "p0 is the recorded min, not the bucket floor"
        );
    }

    #[test]
    fn shard_samples_reach_json_and_prometheus() {
        use rtic_relation::Symbol;
        let mut registry = MetricsRegistry::new();
        let sample = |live, created, evicted, peak| StepEvent::ShardSample {
            checker: "set",
            constraint: Symbol::intern("keyed"),
            time: TimePoint(9),
            step_index: 3,
            stats: ShardStats {
                live,
                created,
                evicted,
                peak,
            },
        };
        registry.observe(&sample(4, 7, 3, 5));
        // Gauges: re-sampling replaces the earlier snapshot.
        registry.observe(&sample(2, 9, 7, 5));
        let got: Vec<_> = registry.shard_stats().collect();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, "keyed");
        assert_eq!(got[0].1.live, 2);
        let doc = json::parse(&registry.render_json()).unwrap();
        let shards = doc.get("shards").unwrap().get("keyed").unwrap();
        assert_eq!(shards.get("live").and_then(Json::as_u64), Some(2));
        assert_eq!(shards.get("created").and_then(Json::as_u64), Some(9));
        assert_eq!(shards.get("evicted").and_then(Json::as_u64), Some(7));
        assert_eq!(shards.get("peak").and_then(Json::as_u64), Some(5));
        let text = registry.render_prometheus();
        assert!(text.contains("rtic_shards_live{constraint=\"keyed\"} 2"));
        assert!(text.contains("rtic_shards_created_total{constraint=\"keyed\"} 9"));
        assert!(text.contains("rtic_shards_evicted_total{constraint=\"keyed\"} 7"));
        assert!(text.contains("rtic_shards_peak{constraint=\"keyed\"} 5"));
    }

    #[test]
    fn serve_samples_reach_json_and_prometheus() {
        let mut registry = MetricsRegistry::new();
        // Batch runs never emit ServeSample, so the section stays absent.
        assert!(registry.serve_gauges().is_none());
        let sample = |depth, shed| StepEvent::ServeSample {
            queue_depth: depth,
            queue_capacity: 64,
            queue_peak: 17,
            shed,
            connections: 2,
            disconnected: 1,
            last_checkpoint_age_ms: Some(250),
            drain_ms: None,
        };
        registry.observe(&sample(9, 3));
        // Gauges: re-sampling replaces the earlier snapshot.
        registry.observe(&sample(3, 5));
        let gauges = registry.serve_gauges().unwrap();
        assert_eq!(gauges.queue_depth, 3);
        assert_eq!(gauges.shed, 5);
        let doc = json::parse(&registry.render_json()).unwrap();
        let serve = doc.get("serve").unwrap();
        assert_eq!(serve.get("queue_depth").and_then(Json::as_u64), Some(3));
        assert_eq!(serve.get("queue_capacity").and_then(Json::as_u64), Some(64));
        assert_eq!(serve.get("queue_peak").and_then(Json::as_u64), Some(17));
        assert_eq!(serve.get("shed").and_then(Json::as_u64), Some(5));
        assert_eq!(serve.get("connections").and_then(Json::as_u64), Some(2));
        assert_eq!(
            serve.get("last_checkpoint_age_ms").and_then(Json::as_u64),
            Some(250)
        );
        assert!(serve.get("drain_ms").is_none());
        let text = registry.render_prometheus();
        assert!(text.contains("rtic_serve_queue_depth 3"));
        assert!(text.contains("rtic_serve_queue_capacity 64"));
        assert!(text.contains("rtic_serve_queue_peak 17"));
        assert!(text.contains("rtic_serve_shed_total 5"));
        assert!(text.contains("rtic_serve_connections 2"));
        assert!(text.contains("rtic_serve_disconnected_total 1"));
        assert!(text.contains("rtic_serve_last_checkpoint_age_seconds 0.25"));
        assert!(!text.contains("rtic_serve_drain_duration_seconds"));
    }

    #[test]
    fn smc_samples_reach_json_and_prometheus() {
        use rtic_relation::Symbol;
        let mut registry = MetricsRegistry::new();
        // Batch runs never emit SmcSample, so the section stays absent.
        assert!(registry.smc_gauges().is_none());
        let sample = |i, bound, violated: &[&str]| StepEvent::SmcSample {
            scenario: Symbol::intern("fraud"),
            sample: i,
            bound,
            violated_constraints: violated.iter().map(|n| Symbol::intern(n)).collect(),
        };
        registry.observe(&sample(0, 738, &["structuring"]));
        registry.observe(&sample(1, 738, &["structuring", "screened"]));
        registry.observe(&sample(2, 120, &[]));
        let gauges = registry.smc_gauges().unwrap();
        assert_eq!(gauges.scenario, "fraud");
        assert_eq!(gauges.samples, 3);
        assert_eq!(gauges.bound, 120, "bound is a gauge: latest wins");
        assert_eq!(gauges.violated_samples.get("structuring"), Some(&2));
        assert_eq!(gauges.violated_samples.get("screened"), Some(&1));
        let doc = json::parse(&registry.render_json()).unwrap();
        let smc = doc.get("smc").unwrap();
        assert_eq!(smc.get("scenario").and_then(Json::as_str), Some("fraud"));
        assert_eq!(smc.get("samples").and_then(Json::as_u64), Some(3));
        assert_eq!(smc.get("bound").and_then(Json::as_u64), Some(120));
        assert_eq!(
            smc.get("violated_samples")
                .and_then(|v| v.get("structuring"))
                .and_then(Json::as_u64),
            Some(2)
        );
        let text = registry.render_prometheus();
        assert!(text.contains("rtic_smc_samples_total 3"));
        assert!(text.contains("rtic_smc_sample_bound 120"));
        assert!(text.contains(
            "rtic_smc_violated_samples_total{scenario=\"fraud\",constraint=\"structuring\"} 2"
        ));
    }

    #[test]
    fn batch_ingest_events_reach_counters_and_expositions() {
        let mut registry = MetricsRegistry::new();
        // Line-at-a-time runs never emit BatchIngest: the families stay
        // out of the Prometheus exposition entirely.
        assert!(!registry.render_prometheus().contains("rtic_batch"));
        registry.observe(&StepEvent::BatchIngest {
            lines: 64,
            tuples: 192,
        });
        registry.observe(&StepEvent::BatchIngest {
            lines: 17,
            tuples: 40,
        });
        assert_eq!(registry.batches(), 2);
        assert_eq!(registry.batch_lines(), 81);
        assert_eq!(registry.last_batch_size(), 17);
        let doc = json::parse(&registry.render_json()).unwrap();
        assert_eq!(doc.get("batches").and_then(Json::as_u64), Some(2));
        assert_eq!(doc.get("batch_lines").and_then(Json::as_u64), Some(81));
        assert_eq!(doc.get("batch_tuples").and_then(Json::as_u64), Some(232));
        assert_eq!(doc.get("last_batch_size").and_then(Json::as_u64), Some(17));
        let text = registry.render_prometheus();
        assert!(text.contains("rtic_batches_total 2"));
        assert!(text.contains("rtic_batch_lines_total 81"));
        assert!(text.contains("rtic_batch_tuples_total 232"));
        assert!(text.contains("rtic_batch_size 17"));
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let mut h = LatencyHistogram::default();
        let mut seed = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..500 {
            seed = seed
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            h.record_ns(seed % 20_000_000);
        }
        let mut last = 0.0f64;
        for i in 0..=100u32 {
            let q = f64::from(i) / 100.0;
            let v = h.quantile_us(q);
            assert!(v + 1e-9 >= last, "not monotone at q={q}: {v} < {last}");
            last = v;
        }
        assert!(h.quantile_us(1.0) <= h.max_us + 1e-9);
        assert!(h.quantile_us(0.0) + 1e-9 >= h.min_us);
    }

    #[test]
    fn json_exposes_interpolated_quantile_ladder() {
        let mut registry = MetricsRegistry::new();
        run_workload(&mut registry);
        let doc = json::parse(&registry.render_json()).unwrap();
        let hist = doc.get("step_latency_us").unwrap();
        let p50 = hist.get("p50_us").and_then(Json::as_f64).unwrap();
        let p90 = hist.get("p90_us").and_then(Json::as_f64).unwrap();
        let p95 = hist.get("p95_us").and_then(Json::as_f64).unwrap();
        let p99 = hist.get("p99_us").and_then(Json::as_f64).unwrap();
        assert!(
            p50 <= p90 && p90 <= p95 && p95 <= p99,
            "{p50} {p90} {p95} {p99}"
        );
    }

    #[test]
    fn plan_profile_samples_expose_hot_nodes() {
        use rtic_core::observe::sample_plan_profiles;
        use rtic_core::EncodingOptions;

        let catalog = Arc::new(
            Catalog::new()
                .with("p", Schema::of(&[("x", Sort::Str)]))
                .unwrap(),
        );
        let mut checkers: Vec<Box<dyn Checker>> = vec![Box::new(
            IncrementalChecker::with_options(
                parse_constraint("deny d: p(x) && hist[0,1] p(x)").unwrap(),
                catalog,
                EncodingOptions {
                    profile_plans: true,
                    ..Default::default()
                },
            )
            .unwrap(),
        )];
        let mut registry = MetricsRegistry::new();
        for t in 1..=4u64 {
            rtic_core::observe::step_all(
                &mut checkers,
                TimePoint(t),
                &Update::new().with_insert("p", tuple!["a"]),
                &mut registry,
            )
            .unwrap();
        }
        sample_plan_profiles(&checkers, &mut registry);
        let hot = registry.hot_nodes(3);
        assert!(!hot.is_empty(), "profiled run must surface hot nodes");
        assert_eq!(hot[0].0, "d");
        assert!(hot[0].1.counts.calls > 0);
        let doc = json::parse(&registry.render_json()).unwrap();
        let profiles = doc.get("plan_profiles").unwrap();
        let d = profiles.get("d").expect("constraint profile in JSON");
        assert!(d.get("total_time_ns").and_then(Json::as_u64).is_some());
        assert!(!d.get("nodes").and_then(Json::as_arr).unwrap().is_empty());
        let hot_json = doc.get("plan_hot_nodes").and_then(Json::as_arr).unwrap();
        assert_eq!(hot_json.len().min(5), hot_json.len());
        assert!(!hot_json.is_empty());
        let text = registry.render_prometheus();
        assert!(
            text.contains("rtic_plan_node_time_seconds{constraint=\"d\""),
            "{text}"
        );
        assert!(
            text.contains("rtic_plan_node_calls{constraint=\"d\""),
            "{text}"
        );
    }
}
