//! Golden-file and determinism tests for every registered scenario.
//!
//! Each scenario has a committed golden under `tests/golden/` capturing
//! the constraints, the injected `Expected` set, and the full transition
//! stream for one pinned parameterization. Same seed ⇒ byte-identical
//! golden, across machines and releases; a diff here means generator
//! behavior changed and the golden must be consciously re-blessed:
//!
//! ```text
//! RTIC_BLESS=1 cargo test -p rtic-workload --test scenario_golden
//! ```
//!
//! The proptest half pins determinism over the whole parameter space:
//! any `(steps, entities, events, rate, seed)` generates the same
//! history and expectations twice in a row.

use proptest::prelude::*;
use rtic_history::log::format_log;
use rtic_workload::{library, ScenarioParams};
use std::fmt::Write as _;
use std::path::PathBuf;

/// The pinned parameterization every golden was recorded at.
fn golden_params() -> ScenarioParams {
    ScenarioParams {
        steps: 60,
        entities: 16,
        events_per_step: 4,
        violation_rate: 0.1,
        seed: 7,
    }
}

/// Renders a scenario run as the canonical golden text: constraints,
/// expectations (constraint, tick, witness), then the transition log.
fn render(name: &str, params: &ScenarioParams) -> String {
    let scenario = library::find(name).expect("registered scenario");
    let gen = scenario.generate(params);
    let mut out = String::new();
    let _ = writeln!(out, "# scenario: {name}");
    let _ = writeln!(
        out,
        "# params: steps={} entities={} events={} rate={} seed={}",
        params.steps, params.entities, params.events_per_step, params.violation_rate, params.seed
    );
    for c in &gen.constraints {
        let _ = writeln!(out, "constraint {c}");
    }
    for e in &gen.expected {
        let _ = write!(out, "expected {} {}", e.constraint, e.time);
        for (var, value) in &e.witness {
            let _ = write!(out, " {var}={value:?}");
        }
        out.push('\n');
    }
    let _ = writeln!(out, "---");
    out.push_str(&format_log(&gen.transitions));
    out
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.golden"))
}

#[test]
fn every_scenario_matches_its_committed_golden() {
    let params = golden_params();
    let bless = std::env::var("RTIC_BLESS").is_ok();
    let mut mismatches = Vec::new();
    for scenario in library::all() {
        let current = render(scenario.name, &params);
        let path = golden_path(scenario.name);
        if bless {
            std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir");
            std::fs::write(&path, &current).expect("write golden");
            continue;
        }
        let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden for {}: {e} (run with RTIC_BLESS=1 to record)",
                scenario.name
            )
        });
        if committed != current {
            mismatches.push(scenario.name);
        }
    }
    assert!(
        mismatches.is_empty(),
        "scenario generators drifted from their goldens: {mismatches:?} \
         (if intentional, re-bless with RTIC_BLESS=1)"
    );
}

#[test]
fn goldens_contain_injected_expectations() {
    // The pinned parameterization must actually exercise the injection
    // paths — a golden with no expectations pins nothing interesting.
    let params = golden_params();
    for scenario in library::all() {
        if scenario.name == "random" {
            continue; // random churn injects nothing by design
        }
        let gen = scenario.generate(&params);
        assert!(
            !gen.expected.is_empty(),
            "{} golden has no injected violations at the pinned seed",
            scenario.name
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn generation_is_deterministic_across_the_parameter_space(
        steps in 1usize..60,
        entities in 4usize..32,
        events in 0usize..6,
        rate in 0.0f64..0.3,
        seed in any::<u64>(),
    ) {
        let params = ScenarioParams {
            steps,
            entities,
            events_per_step: events,
            violation_rate: rate,
            seed,
        };
        for scenario in library::all() {
            let a = scenario.generate(&params);
            let b = scenario.generate(&params);
            prop_assert_eq!(
                format_log(&a.transitions),
                format_log(&b.transitions),
                "{} transitions not deterministic",
                scenario.name
            );
            prop_assert_eq!(&a.expected, &b.expected, "{} expectations not deterministic", scenario.name);
            for e in &a.expected {
                prop_assert!(
                    e.time.0 >= 1 && e.time.0 <= steps as u64,
                    "{} expectation at {} outside the horizon",
                    scenario.name,
                    e.time
                );
            }
        }
    }
}
