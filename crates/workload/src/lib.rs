//! # rtic-workload — deterministic workload generators
//!
//! Drives the examples, tests and experiments with three domain scenarios
//! (one per constraint style the paper motivates) plus a parameterized
//! random workload for scaling sweeps:
//!
//! * [`Reservations`] — confirm-within-deadline (`once` with a bounded
//!   window, negated `once`);
//! * [`Library`] — return-within-period (`since` with an unbounded bound);
//! * [`Monitor`] — acknowledge-within-window and no-spike
//!   (`hist` + `prev` + order comparisons);
//! * [`RandomWorkload`] — uniform random churn with tunable domain, update
//!   size, and metric bound;
//! * [`Audit`] — transaction auditing (assert-mode constraints, `exists`
//!   under negation over a temporal operator).
//!
//! Every generator is deterministic given its parameters (seeded
//! [`rand::rngs::StdRng`]), emits transitions one tick apart, and records
//! the violations it *injects* as [`Expected`] witnesses: a violation is
//! expected at the first state where it becomes definite (e.g. the
//! deadline), which the T4 experiment asserts the checkers report exactly.
//!
//! ```
//! use rtic_core::{Checker, IncrementalChecker};
//! use rtic_workload::Reservations;
//! use std::sync::Arc;
//!
//! let generated = Reservations { steps: 60, violation_rate: 0.2, ..Default::default() }
//!     .generate();
//! let mut checker = IncrementalChecker::new(
//!     generated.constraints[0].clone(),
//!     Arc::clone(&generated.catalog),
//! )
//! .unwrap();
//! let reports = checker.run(generated.transitions.clone()).unwrap();
//! // Every injected violation is reported at its deadline state.
//! for expected in &generated.expected {
//!     assert!(reports.iter().any(|r| expected.found_in(r)));
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod audit;
mod expected;
mod library;
mod monitor;
mod random;
mod reservations;

use std::sync::Arc;

use rtic_history::Transition;
use rtic_relation::Catalog;
use rtic_temporal::Constraint;

pub use audit::Audit;
pub use expected::Expected;
pub use library::Library;
pub use monitor::Monitor;
pub use random::RandomWorkload;
pub use reservations::Reservations;

/// A generated workload: schema, constraints, the transition stream, and
/// the injected violations' expected detections.
#[derive(Clone, Debug)]
pub struct Generated {
    /// Relation schemas the transitions use.
    pub catalog: Arc<Catalog>,
    /// The constraints this workload is checked against.
    pub constraints: Vec<Constraint>,
    /// The transition stream, timestamps strictly increasing.
    pub transitions: Vec<Transition>,
    /// Injected violations, each at its first-definite state.
    pub expected: Vec<Expected>,
}
