//! # rtic-workload — deterministic workload generators
//!
//! Drives the examples, tests and experiments with the paper-styled
//! domain scenarios, a production scenario library, and a parameterized
//! random workload for scaling sweeps:
//!
//! * [`Reservations`] — confirm-within-deadline (`once` with a bounded
//!   window, negated `once`);
//! * [`Library`] — return-within-period (`since` with an unbounded bound);
//! * [`Monitor`] — acknowledge-within-window and no-spike
//!   (`hist` + `prev` + order comparisons);
//! * [`RandomWorkload`] — uniform random churn with tunable domain, update
//!   size, and metric bound;
//! * [`Audit`] — transaction auditing (assert-mode constraints, `exists`
//!   under negation over a temporal operator).
//!
//! The production library (see `docs/SCENARIOS.md` in the repository)
//! scales to 10⁵–10⁶ entity keys to soak the sharded data plane:
//!
//! * [`Fraud`] — fraud/AML monitoring: structuring bursts via a windowed
//!   `count` aggregate plus large-transfer screening;
//! * [`Telemetry`] — IoT heartbeat-liveness and delivery-freshness SLAs
//!   over churning device sessions;
//! * [`RateLimit`] — consecutive-tick hammering and a banned-client gate,
//!   fully sharded;
//! * [`Access`] — session TTLs, sudo gating, and approval trails.
//!
//! All of them are enumerable by name through the [`library`] registry
//! (`library::all()`, `library::find(name)`), which the CLI, the bench
//! recorder, and the SMC harness share.
//!
//! Every generator is deterministic given its parameters (seeded
//! [`rand::rngs::StdRng`]), emits transitions one tick apart, and records
//! the violations it *injects* as [`Expected`] witnesses: a violation is
//! expected at the first state where it becomes definite (e.g. the
//! deadline), which the T4 experiment asserts the checkers report exactly.
//!
//! ```
//! use rtic_core::{Checker, IncrementalChecker};
//! use rtic_workload::Reservations;
//! use std::sync::Arc;
//!
//! let generated = Reservations { steps: 60, violation_rate: 0.2, ..Default::default() }
//!     .generate();
//! let mut checker = IncrementalChecker::new(
//!     generated.constraints[0].clone(),
//!     Arc::clone(&generated.catalog),
//! )
//! .unwrap();
//! let reports = checker.run(generated.transitions.clone()).unwrap();
//! // Every injected violation is reported at its deadline state.
//! for expected in &generated.expected {
//!     assert!(reports.iter().any(|r| expected.found_in(r)));
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod access;
mod audit;
mod expected;
mod fraud;
pub mod library;
mod loans;
mod monitor;
mod random;
mod ratelimit;
mod reservations;
mod telemetry;

use std::sync::Arc;

use rtic_history::Transition;
use rtic_relation::Catalog;
use rtic_temporal::Constraint;

pub use access::Access;
pub use audit::Audit;
pub use expected::Expected;
pub use fraud::Fraud;
pub use library::{Scenario, ScenarioParams};
pub use loans::Library;
pub use monitor::Monitor;
pub use random::RandomWorkload;
pub use ratelimit::RateLimit;
pub use reservations::Reservations;
pub use telemetry::Telemetry;

/// A generated workload: schema, constraints, the transition stream, and
/// the injected violations' expected detections.
#[derive(Clone, Debug)]
pub struct Generated {
    /// Relation schemas the transitions use.
    pub catalog: Arc<Catalog>,
    /// The constraints this workload is checked against.
    pub constraints: Vec<Constraint>,
    /// The transition stream, timestamps strictly increasing.
    pub transitions: Vec<Transition>,
    /// Injected violations, each at its first-definite state.
    pub expected: Vec<Expected>,
}
