//! Library loans: every borrowed book must come back within the loan
//! period. Exercises `since` with an unbounded upper bound.
//!
//! Relations:
//! * `loan(b, m)` — book `b` out with member `m`, held until returned;
//! * `checkout(b, m)` — transient checkout event.
//!
//! Constraint (loan period `D`):
//!
//! ```text
//! deny overdue: loan(b, m) && (loan(b, m) since[D,*] checkout(b, m))
//! ```
//!
//! i.e. the loan has been held continuously for at least `D` ticks since
//! its checkout. First flagged at exactly `t₀ + D`.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtic_history::Transition;
use rtic_relation::{tuple, Catalog, Schema, Sort, Update, Value};
use rtic_temporal::parser::parse_constraint;
use rtic_temporal::TimePoint;

use crate::{Expected, Generated};

/// Parameters for the library workload.
#[derive(Clone, Copy, Debug)]
pub struct Library {
    /// Number of transitions (one tick apart).
    pub steps: usize,
    /// Checkouts per step.
    pub checkouts_per_step: usize,
    /// Loan period `D`.
    pub period: u64,
    /// Probability a loan is returned late (injected violation).
    pub violation_rate: f64,
    /// How many ticks past the deadline a late loan stays out.
    pub late_by: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Library {
    fn default() -> Library {
        Library {
            steps: 200,
            checkouts_per_step: 2,
            period: 7,
            violation_rate: 0.05,
            late_by: 2,
            seed: 42,
        }
    }
}

struct Loan {
    b: String,
    m: String,
    return_at: u64,
}

impl Library {
    /// The constraint text for period `D`.
    pub fn constraint_text(&self) -> String {
        format!(
            "deny overdue: loan(b, m) && (loan(b, m) since[{},*] checkout(b, m))",
            self.period
        )
    }

    /// Generates the workload.
    pub fn generate(&self) -> Generated {
        assert!(
            self.period >= 2,
            "period must leave room for on-time returns"
        );
        let catalog = Arc::new(
            Catalog::new()
                .with("loan", Schema::of(&[("b", Sort::Str), ("m", Sort::Str)]))
                .expect("static workload schema")
                .with(
                    "checkout",
                    Schema::of(&[("b", Sort::Str), ("m", Sort::Str)]),
                )
                .expect("static workload schema"),
        );
        let constraint = parse_constraint(&self.constraint_text()).expect("template parses");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut transitions = Vec::with_capacity(self.steps);
        let mut expected = Vec::new();
        let mut loans: Vec<Loan> = Vec::new();
        let mut last_events: Vec<(String, String)> = Vec::new();
        let mut next_book = 0u64;
        for t in 1..=self.steps as u64 {
            let mut u = Update::new();
            for (b, m) in last_events.drain(..) {
                u.delete("checkout", tuple![b.as_str(), m.as_str()]);
            }
            for _ in 0..self.checkouts_per_step {
                let b = format!("b{next_book}");
                next_book += 1;
                let m = format!("m{}", rng.gen_range(0..30));
                u.insert("loan", tuple![b.as_str(), m.as_str()]);
                u.insert("checkout", tuple![b.as_str(), m.as_str()]);
                let late = rng.gen_bool(self.violation_rate);
                let return_at = if late {
                    if t + self.period <= self.steps as u64 {
                        expected.push(Expected {
                            constraint: "overdue".into(),
                            time: TimePoint(t + self.period),
                            witness: vec![("b", Value::str(&b)), ("m", Value::str(&m))],
                        });
                    }
                    t + self.period + self.late_by
                } else {
                    t + rng.gen_range(1..self.period)
                };
                last_events.push((b.clone(), m.clone()));
                loans.push(Loan { b, m, return_at });
            }
            loans.retain(|l| {
                if l.return_at == t {
                    u.delete("loan", tuple![l.b.as_str(), l.m.as_str()]);
                    false
                } else {
                    true
                }
            });
            transitions.push(Transition::new(t, u));
        }
        Generated {
            catalog,
            constraints: vec![constraint],
            transitions,
            expected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtic_core::{Checker, IncrementalChecker, WindowedChecker};

    #[test]
    fn deterministic() {
        let a = Library::default().generate();
        let b = Library::default().generate();
        assert_eq!(a.transitions, b.transitions);
    }

    #[test]
    fn overdue_loans_flagged_at_deadline() {
        let gen = Library {
            steps: 100,
            violation_rate: 0.25,
            ..Default::default()
        }
        .generate();
        assert!(!gen.expected.is_empty());
        let mut checker =
            IncrementalChecker::new(gen.constraints[0].clone(), Arc::clone(&gen.catalog)).unwrap();
        let reports = checker.run(gen.transitions.clone()).unwrap();
        for exp in &gen.expected {
            let report = reports.iter().find(|r| r.time == exp.time).unwrap();
            assert!(exp.found_in(report), "missing overdue loan at {}", exp.time);
        }
    }

    #[test]
    fn on_time_returns_never_flagged() {
        let gen = Library {
            steps: 80,
            violation_rate: 0.0,
            ..Default::default()
        }
        .generate();
        let mut checker =
            IncrementalChecker::new(gen.constraints[0].clone(), Arc::clone(&gen.catalog)).unwrap();
        for r in checker.run(gen.transitions.clone()).unwrap() {
            assert!(r.ok(), "spurious violation at {}", r.time);
        }
    }

    #[test]
    fn unbounded_since_makes_windowed_degenerate() {
        // since[D,*] has an unbounded horizon: the windowed checker cannot
        // prune on this workload (documented fallback).
        let gen = Library {
            steps: 30,
            ..Default::default()
        }
        .generate();
        let mut w =
            WindowedChecker::new(gen.constraints[0].clone(), Arc::clone(&gen.catalog)).unwrap();
        w.run(gen.transitions.clone()).unwrap();
        assert_eq!(w.space().stored_states, 30);
    }
}
