//! Parameterized random workload for the scaling experiments (domain size,
//! update size, metric bound sweeps).

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtic_history::Transition;
use rtic_relation::{tuple, Catalog, Schema, Sort, Update};
use rtic_temporal::parser::parse_constraint;

use crate::Generated;

/// Parameters for the random workload.
#[derive(Clone, Copy, Debug)]
pub struct RandomWorkload {
    /// Number of transitions (one tick apart).
    pub steps: usize,
    /// Key domain size (keys are integers `0..domain`).
    pub domain: usize,
    /// Tuple changes per step.
    pub updates_per_step: usize,
    /// The metric bound `B` in the constraint `base(k) && once[0,B] ev(k)`.
    pub bound: u64,
    /// Maximum clock gap between states (gaps are uniform in `1..=max_gap`;
    /// 1 = one state per tick).
    pub max_gap: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomWorkload {
    fn default() -> RandomWorkload {
        RandomWorkload {
            steps: 200,
            domain: 64,
            updates_per_step: 8,
            bound: 8,
            max_gap: 1,
            seed: 42,
        }
    }
}

impl RandomWorkload {
    /// The constraint text.
    pub fn constraint_text(&self) -> String {
        format!("deny hit: base(k) && once[0,{}] ev(k)", self.bound)
    }

    /// Generates the workload: half the changes are transient `ev` events,
    /// half toggle `base` membership.
    pub fn generate(&self) -> Generated {
        let catalog = Arc::new(
            Catalog::new()
                .with("base", Schema::of(&[("k", Sort::Int)]))
                .expect("static workload schema")
                .with("ev", Schema::of(&[("k", Sort::Int)]))
                .expect("static workload schema"),
        );
        let constraint = parse_constraint(&self.constraint_text()).expect("template parses");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut in_base = vec![false; self.domain];
        let mut last_events: Vec<i64> = Vec::new();
        assert!(self.max_gap >= 1, "gaps are at least one tick");
        let mut transitions = Vec::with_capacity(self.steps);
        let mut t = 0u64;
        for _ in 0..self.steps {
            t += if self.max_gap == 1 {
                1
            } else {
                rng.gen_range(1..=self.max_gap)
            };
            let mut u = Update::new();
            for k in last_events.drain(..) {
                u.delete("ev", tuple![k]);
            }
            for c in 0..self.updates_per_step {
                let k = rng.gen_range(0..self.domain);
                if c % 2 == 0 {
                    u.insert("ev", tuple![k as i64]);
                    last_events.push(k as i64);
                } else if in_base[k] {
                    u.delete("base", tuple![k as i64]);
                    in_base[k] = false;
                } else {
                    u.insert("base", tuple![k as i64]);
                    in_base[k] = true;
                }
            }
            transitions.push(Transition::new(t, u));
        }
        Generated {
            catalog,
            constraints: vec![constraint],
            transitions,
            expected: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtic_core::{Checker, IncrementalChecker, NaiveChecker};

    #[test]
    fn deterministic() {
        let a = RandomWorkload::default().generate();
        let b = RandomWorkload::default().generate();
        assert_eq!(a.transitions, b.transitions);
    }

    #[test]
    fn checkers_agree_on_random_workload() {
        let gen = RandomWorkload {
            steps: 60,
            domain: 8,
            updates_per_step: 4,
            bound: 3,
            seed: 9,
            ..Default::default()
        }
        .generate();
        let mut inc =
            IncrementalChecker::new(gen.constraints[0].clone(), Arc::clone(&gen.catalog)).unwrap();
        let mut naive =
            NaiveChecker::new(gen.constraints[0].clone(), Arc::clone(&gen.catalog)).unwrap();
        for tr in &gen.transitions {
            let a = inc.step(tr.time, &tr.update).unwrap();
            let b = naive.step(tr.time, &tr.update).unwrap();
            assert_eq!(a, b, "diverged at {}", tr.time);
        }
    }

    #[test]
    fn update_size_is_respected() {
        let gen = RandomWorkload {
            updates_per_step: 10,
            steps: 5,
            ..Default::default()
        }
        .generate();
        for tr in &gen.transitions {
            // Each step carries the new changes plus last step's event
            // retractions; toggles may coincide, so just sanity-bound it.
            assert!(tr.update.len() <= 2 * 10);
            assert!(tr.update.len() >= 5);
        }
    }
}
