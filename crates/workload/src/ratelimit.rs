//! Rate-limit / abuse rules at production flavor: a consecutive-tick
//! hammering rule and a banned-client gate.
//!
//! Relations:
//! * `req(c, i)` — transient request `i` from client `c`;
//! * `banned(c)` — held while client `c` is banned.
//!
//! Constraints (hammer window `W`):
//!
//! ```text
//! deny hammer:     req(c, i) && hist[1,W] (exists j . req(c, j))
//! deny banned_req: req(c, i) && banned(c)
//! ```
//!
//! `hammer` fires exactly when a client has requested at `W + 1`
//! consecutive ticks — `hist[1,W]` demands a request at every one of the
//! `W` preceding ticks. Honest clients issue request runs of length at
//! most `W`, starting no earlier than tick 2 and separated by at least
//! one quiet tick, so no honest span ever reaches `W + 1` consecutive
//! ticks and a clean run is provably quiet (the clipped `hist` window in
//! the first ticks always contains a request-free state for them). An
//! injected abuser fires a run of exactly `W + 1` requests from tick
//! `s ≥ 2`, definite once at `s + W`. Banned clients never request
//! honestly; an injected banned request trips `banned_req` at its own
//! tick. Both rules shard on `c`, so the scenario runs fully sharded.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtic_history::Transition;
use rtic_relation::{tuple, Catalog, Schema, Sort, Tuple, Update, Value};
use rtic_temporal::parser::parse_constraint;
use rtic_temporal::{Constraint, TimePoint};

use crate::{Expected, Generated};

/// Parameters for the rate-limit workload.
#[derive(Clone, Copy, Debug)]
pub struct RateLimit {
    /// Number of transitions (one tick apart).
    pub steps: usize,
    /// Clients in play (entity-key domain; scale to 10⁵–10⁶).
    pub clients: usize,
    /// Honest request runs started per step.
    pub events_per_step: usize,
    /// Hammer window `W`: `W + 1` consecutive request ticks violate.
    pub window: u64,
    /// Fraction of clients banned from the start.
    pub ban_fraction: f64,
    /// Per-step probability of starting an injected hammer run and of an
    /// injected banned request.
    pub violation_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RateLimit {
    fn default() -> RateLimit {
        RateLimit {
            steps: 200,
            clients: 64,
            events_per_step: 8,
            window: 4,
            ban_fraction: 0.1,
            violation_rate: 0.05,
            seed: 42,
        }
    }
}

impl RateLimit {
    /// The two constraints.
    pub fn constraint_texts(&self) -> [String; 2] {
        let w = self.window;
        [
            format!("deny hammer: req(c, i) && hist[1,{w}] (exists j . req(c, j))"),
            "deny banned_req: req(c, i) && banned(c)".to_string(),
        ]
    }

    /// Generates the workload.
    pub fn generate(&self) -> Generated {
        assert!(self.clients >= 4, "need a few clients to rotate through");
        assert!(self.window >= 1, "window must be at least one tick");
        let catalog = Arc::new(
            Catalog::new()
                .with("req", Schema::of(&[("c", Sort::Str), ("i", Sort::Int)]))
                .expect("static workload schema")
                .with("banned", Schema::of(&[("c", Sort::Str)]))
                .expect("static workload schema"),
        );
        let constraints: Vec<Constraint> = self
            .constraint_texts()
            .iter()
            .map(|t| parse_constraint(t).expect("template parses"))
            .collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let w = self.window;
        let banned_count = ((self.clients as f64) * self.ban_fraction) as usize;
        let mut transitions = Vec::with_capacity(self.steps);
        let mut expected = Vec::new();
        let mut next_id: i64 = 0;
        // Per-client run state: requesting through `until`; after a run
        // ends the client stays quiet through `cool` (≥ one tick) so two
        // honest runs can never fuse into a W + 1 consecutive span.
        struct Run {
            until: u64,
            cool: u64,
            abusive: bool,
        }
        let mut runs: Vec<Option<Run>> = (0..self.clients).map(|_| None).collect();
        let mut last_events: Vec<(&'static str, Tuple)> = Vec::new();
        for t in 1..=self.steps as u64 {
            let mut u = Update::new();
            for (rel, tuple) in last_events.drain(..) {
                u.delete(rel, tuple);
            }
            if t == 1 {
                // The ban list is part of the initial state and never churns;
                // banned clients are the top of the index space.
                for c in 0..banned_count {
                    u.insert("banned", tuple![format!("b{c}").as_str()]);
                }
            }
            // Honest runs start at tick ≥ 2 (the clipped hist window at
            // tick 1 is vacuously full, so a tick-1 request would be a
            // false positive) and last at most W ticks.
            if t >= 2 {
                for _ in 0..self.events_per_step {
                    let c = banned_count + rng.gen_range(0..(self.clients - banned_count));
                    if runs[c].as_ref().is_some_and(|r| t <= r.cool) {
                        continue;
                    }
                    let len = rng.gen_range(1..=w);
                    runs[c] = Some(Run {
                        until: t + len - 1,
                        cool: t + len, // ≥ one quiet tick after the run
                        abusive: false,
                    });
                }
                // Injected hammer: a cold client fires W + 1 consecutive
                // requests; `hammer` turns definite at the run's last tick.
                if rng.gen_bool(self.violation_rate) && t + w <= self.steps as u64 {
                    let candidate = (0..8)
                        .map(|_| banned_count + rng.gen_range(0..(self.clients - banned_count)))
                        .find(|&c| runs[c].as_ref().is_none_or(|r| t > r.cool));
                    if let Some(c) = candidate {
                        runs[c] = Some(Run {
                            until: t + w,
                            cool: t + w + 1,
                            abusive: true,
                        });
                    }
                }
            }
            for (c, run) in runs.iter().enumerate() {
                let Some(run) = run else { continue };
                if t > run.until {
                    continue;
                }
                let name = format!("b{c}");
                let id = next_id;
                next_id += 1;
                let row = tuple![name.as_str(), id];
                u.insert("req", row.clone());
                last_events.push(("req", row));
                if run.abusive && t == run.until {
                    expected.push(Expected {
                        constraint: "hammer".into(),
                        time: TimePoint(t),
                        witness: vec![("c", Value::str(&name)), ("i", Value::Int(id))],
                    });
                }
            }
            // Injected banned request: banned clients never request
            // honestly, so this trips `banned_req` immediately. Tick ≥ 2
            // keeps it clear of the clipped hammer window, and one-off
            // requests can never hammer.
            if t >= 2 && banned_count > 0 && rng.gen_bool(self.violation_rate) {
                let c = rng.gen_range(0..banned_count);
                let name = format!("b{c}");
                let id = next_id;
                next_id += 1;
                let row = tuple![name.as_str(), id];
                u.insert("req", row.clone());
                last_events.push(("req", row));
                expected.push(Expected {
                    constraint: "banned_req".into(),
                    time: TimePoint(t),
                    witness: vec![("c", Value::str(&name)), ("i", Value::Int(id))],
                });
            }
            transitions.push(Transition::new(t, u));
        }
        Generated {
            catalog,
            constraints,
            transitions,
            expected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtic_core::{Checker, IncrementalChecker};

    fn run_all(gen: &Generated) -> Vec<rtic_core::StepReport> {
        let mut checkers: Vec<IncrementalChecker> = gen
            .constraints
            .iter()
            .map(|c| IncrementalChecker::new(c.clone(), Arc::clone(&gen.catalog)).unwrap())
            .collect();
        let mut reports = Vec::new();
        for tr in &gen.transitions {
            for c in &mut checkers {
                reports.push(c.step(tr.time, &tr.update).unwrap());
            }
        }
        reports
    }

    #[test]
    fn deterministic() {
        let a = RateLimit::default().generate();
        let b = RateLimit::default().generate();
        assert_eq!(a.transitions, b.transitions);
        assert_eq!(a.expected, b.expected);
    }

    #[test]
    fn injected_hammers_and_banned_requests_detected() {
        let gen = RateLimit {
            steps: 160,
            violation_rate: 0.15,
            ..Default::default()
        }
        .generate();
        assert!(
            gen.expected
                .iter()
                .any(|e| e.constraint.as_str() == "hammer"),
            "some hammer runs injected"
        );
        assert!(
            gen.expected
                .iter()
                .any(|e| e.constraint.as_str() == "banned_req"),
            "some banned requests injected"
        );
        let reports = run_all(&gen);
        for exp in &gen.expected {
            assert!(
                reports.iter().any(|r| exp.found_in(r)),
                "missing expected {} violation at {}",
                exp.constraint,
                exp.time
            );
        }
    }

    #[test]
    fn honest_traffic_is_quiet() {
        let gen = RateLimit {
            steps: 140,
            violation_rate: 0.0,
            ..Default::default()
        }
        .generate();
        assert!(gen.expected.is_empty());
        for r in run_all(&gen) {
            assert!(r.ok(), "spurious {} violation at {}", r.constraint, r.time);
        }
    }

    #[test]
    fn hammer_fires_exactly_once_per_injected_run() {
        let gen = RateLimit {
            steps: 160,
            violation_rate: 0.2,
            events_per_step: 0,
            ban_fraction: 0.0,
            ..Default::default()
        }
        .generate();
        let hammer = gen.constraints[0].clone();
        let mut checker = IncrementalChecker::new(hammer, Arc::clone(&gen.catalog)).unwrap();
        let reports = checker.run(gen.transitions.clone()).unwrap();
        let fired: usize = reports.iter().map(|r| r.violation_count()).sum();
        assert_eq!(fired, gen.expected.len(), "one firing per injected run");
    }
}
