//! Fraud/AML transaction monitoring at production flavor: structuring
//! (smurfing) detection via a windowed `count` aggregate, and compliance
//! screening of large transfers via an assert over `once`.
//!
//! Relations:
//! * `xfer(a, i)` — transient transfer event `i` on account `a`;
//! * `large(a, i)` — transient large-transfer event (reportable size);
//! * `review(a)` — transient compliance-review event on account `a`.
//!
//! Constraints (burst window `W`, burst threshold `N`, review window `R`):
//!
//! ```text
//! deny structuring: xfer(a, i) && count j . (once[0,W] xfer(a, j)) > N
//! assert screened:  large(a, i) -> once[0,R] review(a)
//! ```
//!
//! `structuring` fires when an account lands more than `N` transfers
//! inside any `W`-tick window — the classic AML smurfing rule. The
//! `count` aggregate disqualifies entity-key sharding, so this rule runs
//! unsharded while `screened` (keyed on `a`) shards — a realistic mixed
//! fleet. Honest traffic is generated under the per-account budget, so a
//! zero violation rate yields a provably quiet run; injected bursts are
//! `N + 1` transfers on consecutive ticks, definite at the burst's last
//! tick. Injected unscreened large transfers are definite immediately.

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtic_history::Transition;
use rtic_relation::{tuple, Catalog, Schema, Sort, Tuple, Update, Value};
use rtic_temporal::parser::parse_constraint;
use rtic_temporal::{Constraint, TimePoint};

use crate::{Expected, Generated};

/// Parameters for the fraud/AML workload.
#[derive(Clone, Copy, Debug)]
pub struct Fraud {
    /// Number of transitions (one tick apart).
    pub steps: usize,
    /// Accounts in play (entity-key domain; scale to 10⁵–10⁶).
    pub accounts: usize,
    /// Honest transfers attempted per step.
    pub events_per_step: usize,
    /// Structuring window `W`.
    pub burst_window: u64,
    /// Structuring threshold `N` (deny fires beyond `N` transfers in `W`).
    pub burst_threshold: u64,
    /// Review look-back window `R` for large transfers.
    pub review_window: u64,
    /// Per-step probability of starting an injected structuring burst and
    /// of emitting an injected unscreened large transfer.
    pub violation_rate: f64,
    /// Per-step probability of a (properly screened) large transfer.
    pub large_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fraud {
    fn default() -> Fraud {
        Fraud {
            steps: 200,
            accounts: 64,
            events_per_step: 8,
            burst_window: 6,
            burst_threshold: 3,
            review_window: 4,
            violation_rate: 0.05,
            large_rate: 0.1,
            seed: 42,
        }
    }
}

/// An injected burst in flight: one transfer per tick until `until`.
struct Burst {
    acct: u32,
    until: u64,
}

impl Fraud {
    /// The two constraints.
    pub fn constraint_texts(&self) -> [String; 2] {
        let (w, n, r) = (self.burst_window, self.burst_threshold, self.review_window);
        [
            format!("deny structuring: xfer(a, i) && count j . (once[0,{w}] xfer(a, j)) > {n}"),
            format!("assert screened: large(a, i) -> once[0,{r}] review(a)"),
        ]
    }

    /// Generates the workload.
    pub fn generate(&self) -> Generated {
        assert!(self.accounts >= 4, "need a few accounts to rotate through");
        assert!(
            self.burst_window >= self.burst_threshold,
            "the window must be able to hold a burst"
        );
        let catalog = Arc::new(
            Catalog::new()
                .with("xfer", Schema::of(&[("a", Sort::Str), ("i", Sort::Int)]))
                .expect("static workload schema")
                .with("large", Schema::of(&[("a", Sort::Str), ("i", Sort::Int)]))
                .expect("static workload schema")
                .with("review", Schema::of(&[("a", Sort::Str)]))
                .expect("static workload schema"),
        );
        let constraints: Vec<Constraint> = self
            .constraint_texts()
            .iter()
            .map(|t| parse_constraint(t).expect("template parses"))
            .collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let w = self.burst_window;
        let n = self.burst_threshold;
        let mut transitions = Vec::with_capacity(self.steps);
        let mut expected = Vec::new();
        let mut next_id: i64 = 0;
        // Transfer timestamps per account, pruned to the live window — the
        // honest-traffic budget that keeps clean accounts at ≤ N.
        let mut recent: HashMap<u32, Vec<u64>> = HashMap::new();
        // Last review tick per account (screened large transfers).
        let mut last_review: HashMap<u32, u64> = HashMap::new();
        // Screened large transfers scheduled after their review: (t, acct).
        let mut scheduled_large: Vec<(u64, u32)> = Vec::new();
        let mut bursts: Vec<Burst> = Vec::new();
        let mut last_events: Vec<(&'static str, Tuple)> = Vec::new();
        for t in 1..=self.steps as u64 {
            let mut u = Update::new();
            for (rel, tuple) in last_events.drain(..) {
                u.delete(rel, tuple);
            }
            let xfer = |acct: u32,
                        id: i64,
                        u: &mut Update,
                        recent: &mut HashMap<u32, Vec<u64>>,
                        last_events: &mut Vec<(&'static str, Tuple)>| {
                let name = format!("a{acct}");
                let row = tuple![name.as_str(), id];
                u.insert("xfer", row.clone());
                last_events.push(("xfer", row));
                recent.entry(acct).or_default().push(t);
            };
            // Honest traffic: accounts draw transfers under the budget —
            // an account already at N transfers inside the window sits the
            // step out instead of tripping the structuring rule.
            for _ in 0..self.events_per_step {
                let acct = rng.gen_range(0..self.accounts as u32);
                let times = recent.entry(acct).or_default();
                times.retain(|&at| at + w >= t);
                let bursting = bursts.iter().any(|b| b.acct == acct);
                if times.len() as u64 >= n || bursting {
                    continue;
                }
                let id = next_id;
                next_id += 1;
                xfer(acct, id, &mut u, &mut recent, &mut last_events);
            }
            // Injected structuring: a quiet account fires N + 1 transfers
            // on consecutive ticks; the count rule turns definite at the
            // burst's last tick.
            if rng.gen_bool(self.violation_rate) && t + n <= self.steps as u64 {
                let candidate =
                    (0..8)
                        .map(|_| rng.gen_range(0..self.accounts as u32))
                        .find(|acct| {
                            let quiet = recent.get(acct).is_none_or(|ts| {
                                ts.iter().all(|&at| at + w < t) // nothing live in-window
                            });
                            quiet && !bursts.iter().any(|b| b.acct == *acct)
                        });
                if let Some(acct) = candidate {
                    bursts.push(Burst { acct, until: t + n });
                }
            }
            let mut finished = Vec::new();
            for b in &bursts {
                let id = next_id;
                next_id += 1;
                xfer(b.acct, id, &mut u, &mut recent, &mut last_events);
                if t == b.until {
                    expected.push(Expected {
                        constraint: "structuring".into(),
                        time: TimePoint(t),
                        witness: vec![
                            ("a", Value::str(&format!("a{}", b.acct))),
                            ("i", Value::Int(id)),
                        ],
                    });
                    finished.push(b.acct);
                }
            }
            bursts.retain(|b| !finished.contains(&b.acct));
            // Screened large transfers: review now, large a few ticks
            // later (inside the review window).
            if rng.gen_bool(self.large_rate) {
                let acct = rng.gen_range(0..self.accounts as u32);
                let name = format!("a{acct}");
                let row = tuple![name.as_str()];
                u.insert("review", row.clone());
                last_events.push(("review", row));
                last_review.insert(acct, t);
                scheduled_large.push((t + rng.gen_range(0..=self.review_window), acct));
            }
            scheduled_large.retain(|&(due, acct)| {
                if due == t {
                    let name = format!("a{acct}");
                    let id = next_id;
                    next_id += 1;
                    let row = tuple![name.as_str(), id];
                    u.insert("large", row.clone());
                    last_events.push(("large", row));
                    false
                } else {
                    due > t
                }
            });
            // Injected unscreened large transfer: an account with no
            // review inside the window — the assert is violated at once.
            if rng.gen_bool(self.violation_rate) {
                let candidate =
                    (0..8)
                        .map(|_| rng.gen_range(0..self.accounts as u32))
                        .find(|acct| {
                            last_review
                                .get(acct)
                                .is_none_or(|&at| at + self.review_window < t)
                                && !scheduled_large.iter().any(|&(_, a)| a == *acct)
                        });
                if let Some(acct) = candidate {
                    let name = format!("a{acct}");
                    let id = next_id;
                    next_id += 1;
                    let row = tuple![name.as_str(), id];
                    u.insert("large", row.clone());
                    last_events.push(("large", row));
                    expected.push(Expected {
                        constraint: "screened".into(),
                        time: TimePoint(t),
                        witness: vec![("a", Value::str(&name)), ("i", Value::Int(id))],
                    });
                }
            }
            transitions.push(Transition::new(t, u));
        }
        Generated {
            catalog,
            constraints,
            transitions,
            expected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtic_core::{Checker, IncrementalChecker};

    fn run_all(gen: &Generated) -> Vec<rtic_core::StepReport> {
        let mut checkers: Vec<IncrementalChecker> = gen
            .constraints
            .iter()
            .map(|c| IncrementalChecker::new(c.clone(), Arc::clone(&gen.catalog)).unwrap())
            .collect();
        let mut reports = Vec::new();
        for tr in &gen.transitions {
            for c in &mut checkers {
                reports.push(c.step(tr.time, &tr.update).unwrap());
            }
        }
        reports
    }

    #[test]
    fn deterministic() {
        let a = Fraud::default().generate();
        let b = Fraud::default().generate();
        assert_eq!(a.transitions, b.transitions);
        assert_eq!(a.expected, b.expected);
    }

    #[test]
    fn injected_bursts_and_unscreened_larges_detected() {
        let gen = Fraud {
            steps: 150,
            violation_rate: 0.15,
            ..Default::default()
        }
        .generate();
        assert!(
            gen.expected
                .iter()
                .any(|e| e.constraint.as_str() == "structuring"),
            "some bursts injected"
        );
        assert!(
            gen.expected
                .iter()
                .any(|e| e.constraint.as_str() == "screened"),
            "some unscreened larges injected"
        );
        let reports = run_all(&gen);
        for exp in &gen.expected {
            assert!(
                reports.iter().any(|r| exp.found_in(r)),
                "missing expected {} violation at {}",
                exp.constraint,
                exp.time
            );
        }
    }

    #[test]
    fn honest_traffic_is_quiet() {
        let gen = Fraud {
            steps: 120,
            violation_rate: 0.0,
            ..Default::default()
        }
        .generate();
        assert!(gen.expected.is_empty());
        for r in run_all(&gen) {
            assert!(r.ok(), "spurious {} violation at {}", r.constraint, r.time);
        }
    }

    #[test]
    fn structuring_fires_exactly_once_per_burst() {
        let gen = Fraud {
            steps: 150,
            violation_rate: 0.2,
            large_rate: 0.0,
            events_per_step: 0,
            ..Default::default()
        }
        .generate();
        let structuring = gen.constraints[0].clone();
        let mut checker = IncrementalChecker::new(structuring, Arc::clone(&gen.catalog)).unwrap();
        let reports = checker.run(gen.transitions.clone()).unwrap();
        let fired: usize = reports.iter().map(|r| r.violation_count()).sum();
        let injected = gen
            .expected
            .iter()
            .filter(|e| e.constraint.as_str() == "structuring")
            .count();
        assert_eq!(fired, injected, "one firing per injected burst");
    }
}
