//! Transaction auditing: exercises **assert-mode** constraints (compiled
//! through implication + negation pushing) and `exists` under negation
//! over a temporal operator.
//!
//! Relations:
//! * `txn(id, acct)` — transient transaction event;
//! * `approved(id)` — transient pre-approval event;
//! * `flagged(acct)` — the account is under review, held until cleared.
//!
//! Constraints (approval window `W`, staleness window `S`):
//!
//! ```text
//! assert approval:  txn(i, a) -> once[0,W] approved(i)
//! deny stale_flag:  flagged(a) && hist[0,S] flagged(a)
//!                   && !(exists i . once[0,S] txn(i, a))
//! ```
//!
//! `approval` (an assertion) is violated by any transaction whose id was
//! not approved within the last `W` ticks — detected at the transaction's
//! own state. `stale_flag` fires when an account has been continuously
//! flagged for `S` ticks with no transaction on it in that span — a review
//! that is going nowhere.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtic_history::Transition;
use rtic_relation::{tuple, Catalog, Schema, Sort, Update, Value};
use rtic_temporal::parser::parse_constraint;
use rtic_temporal::{Constraint, TimePoint};

use crate::{Expected, Generated};

/// Parameters for the audit workload.
#[derive(Clone, Copy, Debug)]
pub struct Audit {
    /// Number of transitions (one tick apart).
    pub steps: usize,
    /// Accounts in play.
    pub accounts: usize,
    /// Transactions per step.
    pub txns_per_step: usize,
    /// Approval look-back window `W`.
    pub approval_window: u64,
    /// Staleness window `S`.
    pub stale_window: u64,
    /// Probability a transaction is injected unapproved.
    pub unapproved_rate: f64,
    /// Per-step probability an idle account gets flagged; flagged accounts
    /// that see no transactions go stale (injected) with probability ½.
    pub flag_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Audit {
    fn default() -> Audit {
        Audit {
            steps: 200,
            accounts: 12,
            txns_per_step: 2,
            approval_window: 3,
            stale_window: 6,
            unapproved_rate: 0.06,
            flag_rate: 0.05,
            seed: 42,
        }
    }
}

enum FlagState {
    Idle { cooldown_until: u64 },
    Flagged { raised: u64, stale: bool },
}

impl Audit {
    /// The two constraints.
    pub fn constraint_texts(&self) -> [String; 2] {
        let w = self.approval_window;
        let s = self.stale_window;
        [
            format!("assert approval: txn(i, a) -> once[0,{w}] approved(i)"),
            format!(
                "deny stale_flag: flagged(a) && hist[0,{s}] flagged(a) \
                 && !(exists i . once[0,{s}] txn(i, a))"
            ),
        ]
    }

    /// Generates the workload.
    pub fn generate(&self) -> Generated {
        assert!(self.approval_window >= 1 && self.stale_window >= 2);
        let catalog = Arc::new(
            Catalog::new()
                .with("txn", Schema::of(&[("id", Sort::Int), ("acct", Sort::Str)]))
                .expect("static workload schema")
                .with("approved", Schema::of(&[("id", Sort::Int)]))
                .expect("static workload schema")
                .with("flagged", Schema::of(&[("acct", Sort::Str)]))
                .expect("static workload schema"),
        );
        let constraints: Vec<Constraint> = self
            .constraint_texts()
            .iter()
            .map(|t| parse_constraint(t).expect("template parses"))
            .collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let w = self.approval_window;
        let s = self.stale_window;
        let mut transitions = Vec::with_capacity(self.steps);
        let mut expected = Vec::new();
        let mut next_id: i64 = 0;
        // Events to retract next step: (relation, tuple).
        let mut last_events: Vec<(&'static str, rtic_relation::Tuple)> = Vec::new();
        // Approvals scheduled ahead of their transactions: (time, id).
        let mut future_txns: Vec<(u64, i64, String)> = Vec::new();
        let mut flags: Vec<FlagState> = (0..self.accounts)
            .map(|_| FlagState::Idle {
                cooldown_until: s + 2,
            })
            .collect();
        for t in 1..=self.steps as u64 {
            let mut u = Update::new();
            for (rel, tup) in last_events.drain(..) {
                u.delete(rel, tup);
            }
            // Emit transactions scheduled for now.
            future_txns.retain(|(when, id, acct)| {
                if *when == t {
                    u.insert("txn", tuple![*id, acct.as_str()]);
                    last_events.push(("txn", tuple![*id, acct.as_str()]));
                    false
                } else {
                    true
                }
            });
            // Schedule new transactions; approvals precede them (or don't).
            for _ in 0..self.txns_per_step {
                let id = next_id;
                next_id += 1;
                // Flagged accounts see no scheduled transactions, so stale
                // flags stay stale.
                let acct = loop {
                    let i = rng.gen_range(0..self.accounts);
                    if matches!(flags[i], FlagState::Idle { .. }) {
                        break format!("acct{i}");
                    }
                };
                let delay = rng.gen_range(0..w);
                let txn_at = t + delay;
                let unapproved = rng.gen_bool(self.unapproved_rate);
                if unapproved {
                    if txn_at <= self.steps as u64 {
                        expected.push(Expected {
                            constraint: "approval".into(),
                            time: TimePoint(txn_at),
                            witness: vec![("i", Value::Int(id)), ("a", Value::str(&acct))],
                        });
                    }
                } else {
                    u.insert("approved", tuple![id]);
                    last_events.push(("approved", tuple![id]));
                }
                if txn_at == t {
                    u.insert("txn", tuple![id, acct.as_str()]);
                    last_events.push(("txn", tuple![id, acct.as_str()]));
                } else {
                    future_txns.push((txn_at, id, acct));
                }
            }
            // Flag lifecycle. An account with a transaction already landed
            // this step or still scheduled cannot go stale (the txn would
            // fall inside the staleness window), so it is not flagged now.
            let busy: std::collections::BTreeSet<String> = future_txns
                .iter()
                .map(|(_, _, acct)| acct.clone())
                .chain(
                    last_events
                        .iter()
                        .filter(|(rel, _)| *rel == "txn")
                        .map(|(_, tup)| tup[1].as_symbol().expect("acct col").to_string()),
                )
                .collect();
            for (i, st) in flags.iter_mut().enumerate() {
                let acct = format!("acct{i}");
                match st {
                    FlagState::Idle { cooldown_until } => {
                        if t >= *cooldown_until
                            && !busy.contains(&acct)
                            && rng.gen_bool(self.flag_rate)
                        {
                            u.insert("flagged", tuple![acct.as_str()]);
                            let stale = rng.gen_bool(0.5);
                            if stale && t + s <= self.steps as u64 {
                                expected.push(Expected {
                                    constraint: "stale_flag".into(),
                                    time: TimePoint(t + s),
                                    witness: vec![("a", Value::str(&acct))],
                                });
                            }
                            *st = FlagState::Flagged { raised: t, stale };
                        }
                    }
                    FlagState::Flagged { raised, stale } => {
                        // Active (non-stale) reviews see a transaction each
                        // step, keeping the flag fresh; all reviews clear
                        // after s + 1 ticks.
                        let clear_at = *raised + s + 1;
                        if !*stale && t < clear_at {
                            let id = next_id;
                            next_id += 1;
                            u.insert("txn", tuple![id, acct.as_str()]);
                            u.insert("approved", tuple![id]);
                            last_events.push(("txn", tuple![id, acct.as_str()]));
                            last_events.push(("approved", tuple![id]));
                        }
                        if t == clear_at {
                            u.delete("flagged", tuple![acct.as_str()]);
                            // Past txns linger in once[0,S]: long cooldown.
                            *st = FlagState::Idle {
                                cooldown_until: t + s + 2,
                            };
                        }
                    }
                }
            }
            transitions.push(Transition::new(t, u));
        }
        Generated {
            catalog,
            constraints,
            transitions,
            expected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtic_core::{Checker, IncrementalChecker, NaiveChecker};

    #[test]
    fn deterministic() {
        let a = Audit::default().generate();
        let b = Audit::default().generate();
        assert_eq!(a.transitions, b.transitions);
        assert_eq!(a.expected, b.expected);
    }

    #[test]
    fn assert_mode_constraint_compiles_and_detects() {
        let gen = Audit {
            steps: 120,
            unapproved_rate: 0.2,
            ..Default::default()
        }
        .generate();
        let approvals: Vec<_> = gen
            .expected
            .iter()
            .filter(|e| e.constraint.as_str() == "approval")
            .collect();
        assert!(!approvals.is_empty());
        let mut checker =
            IncrementalChecker::new(gen.constraints[0].clone(), Arc::clone(&gen.catalog)).unwrap();
        let reports = checker.run(gen.transitions.clone()).unwrap();
        for exp in &approvals {
            assert!(
                reports.iter().any(|r| exp.found_in(r)),
                "unapproved txn not flagged at {}",
                exp.time
            );
        }
        // Exactness: total approval violations == injected.
        let total: usize = reports.iter().map(|r| r.violation_count()).sum();
        assert_eq!(total, approvals.len(), "no spurious approval violations");
    }

    #[test]
    fn stale_flags_detected() {
        let gen = Audit {
            steps: 150,
            flag_rate: 0.1,
            ..Default::default()
        }
        .generate();
        let stales: Vec<_> = gen
            .expected
            .iter()
            .filter(|e| e.constraint.as_str() == "stale_flag")
            .collect();
        assert!(!stales.is_empty());
        let mut checker =
            IncrementalChecker::new(gen.constraints[1].clone(), Arc::clone(&gen.catalog)).unwrap();
        let reports = checker.run(gen.transitions.clone()).unwrap();
        for exp in &stales {
            assert!(
                reports.iter().any(|r| exp.found_in(r)),
                "stale flag not detected at {}",
                exp.time
            );
        }
    }

    #[test]
    fn incremental_and_naive_agree_on_audit() {
        let gen = Audit {
            steps: 60,
            ..Default::default()
        }
        .generate();
        for c in &gen.constraints {
            let mut inc = IncrementalChecker::new(c.clone(), Arc::clone(&gen.catalog)).unwrap();
            let mut nai = NaiveChecker::new(c.clone(), Arc::clone(&gen.catalog)).unwrap();
            for tr in &gen.transitions {
                let a = inc.step(tr.time, &tr.update).unwrap();
                let b = nai.step(tr.time, &tr.update).unwrap();
                assert_eq!(a, b, "diverged on `{c}` at {}", tr.time);
            }
        }
    }

    #[test]
    fn clean_run_is_quiet() {
        let gen = Audit {
            steps: 100,
            unapproved_rate: 0.0,
            flag_rate: 0.0,
            ..Default::default()
        }
        .generate();
        assert!(gen.expected.is_empty());
        for c in &gen.constraints {
            let mut checker = IncrementalChecker::new(c.clone(), Arc::clone(&gen.catalog)).unwrap();
            for r in checker.run(gen.transitions.clone()).unwrap() {
                assert!(r.ok(), "spurious {} violation at {}", r.constraint, r.time);
            }
        }
    }
}
