//! Expected-violation bookkeeping for generated workloads.

use rtic_core::StepReport;
use rtic_relation::{Symbol, Value};
use rtic_temporal::TimePoint;

/// A violation a generator injected on purpose: at `time`, the named
/// constraint should report a witness binding the named variables to the
/// given values.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Expected {
    /// The constraint expected to fire.
    pub constraint: Symbol,
    /// The first state at which the violation becomes definite.
    pub time: TimePoint,
    /// `(variable name, value)` pairs identifying the witness.
    pub witness: Vec<(&'static str, Value)>,
}

impl Expected {
    /// Whether `report` contains this witness (looked up by variable name,
    /// so independent of the checker's internal column order).
    pub fn found_in(&self, report: &StepReport) -> bool {
        if report.time != self.time || report.constraint != self.constraint {
            return false;
        }
        let vars = report.violations.vars().to_vec();
        let positions: Option<Vec<(usize, Value)>> = self
            .witness
            .iter()
            .map(|(name, v)| {
                vars.iter()
                    .position(|u| u.name().as_str() == *name)
                    .map(|i| (i, *v))
            })
            .collect();
        let Some(positions) = positions else {
            return false;
        };
        report
            .violations
            .rows()
            .any(|row| positions.iter().all(|&(i, v)| row[i] == v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtic_core::Bindings;
    use rtic_relation::{tuple, Symbol};
    use rtic_temporal::var;

    fn report(time: u64, rows: Vec<rtic_relation::Tuple>) -> StepReport {
        StepReport {
            constraint: Symbol::intern("c"),
            time: TimePoint(time),
            violations: Bindings::from_rows(vec![var("wp"), var("wf")], rows),
        }
    }

    fn exp(time: u64, witness: Vec<(&'static str, Value)>) -> Expected {
        Expected {
            constraint: Symbol::intern("c"),
            time: TimePoint(time),
            witness,
        }
    }

    #[test]
    fn finds_witness_by_name() {
        // Rows passed to from_rows follow the *given* var order (wp, wf);
        // canonicalization is internal, lookup is by name.
        let r = report(5, vec![tuple!["ann", 17]]);
        let e = exp(5, vec![("wf", Value::Int(17)), ("wp", Value::str("ann"))]);
        assert!(e.found_in(&r));
        let other = Expected {
            constraint: Symbol::intern("zzz"),
            ..e.clone()
        };
        assert!(!other.found_in(&r), "constraint name must match");
    }

    #[test]
    fn wrong_time_or_value_is_not_found() {
        let r = report(5, vec![tuple!["ann", 17]]);
        let e = exp(6, vec![("wp", Value::str("ann"))]);
        assert!(!e.found_in(&r));
        let e = exp(5, vec![("wp", Value::str("bob"))]);
        assert!(!e.found_in(&r));
    }

    #[test]
    fn unknown_variable_name_is_not_found() {
        let r = report(5, vec![tuple!["ann", 17]]);
        let e = exp(5, vec![("zz", Value::str("ann"))]);
        assert!(!e.found_in(&r));
    }
}
