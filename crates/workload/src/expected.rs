//! Expected-violation bookkeeping for generated workloads.

use rtic_core::StepReport;
use rtic_relation::{Symbol, Value};
use rtic_temporal::TimePoint;

/// A violation a generator injected on purpose: at `time`, the named
/// constraint should report a witness binding the named variables to the
/// given values.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Expected {
    /// The constraint expected to fire.
    pub constraint: Symbol,
    /// The first state at which the violation becomes definite.
    pub time: TimePoint,
    /// `(variable name, value)` pairs identifying the witness.
    pub witness: Vec<(&'static str, Value)>,
}

impl Expected {
    /// Whether `report` contains this witness (looked up by variable name,
    /// so independent of the checker's internal column order).
    pub fn found_in(&self, report: &StepReport) -> bool {
        if report.time != self.time || report.constraint != self.constraint {
            return false;
        }
        let vars = report.violations.vars().to_vec();
        let positions: Option<Vec<(usize, Value)>> = self
            .witness
            .iter()
            .map(|(name, v)| {
                vars.iter()
                    .position(|u| u.name().as_str() == *name)
                    .map(|i| (i, *v))
            })
            .collect();
        let Some(positions) = positions else {
            return false;
        };
        report
            .violations
            .rows()
            .any(|row| positions.iter().all(|&(i, v)| row[i] == v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtic_core::Bindings;
    use rtic_relation::{tuple, Symbol};
    use rtic_temporal::var;

    fn report(time: u64, rows: Vec<rtic_relation::Tuple>) -> StepReport {
        StepReport {
            constraint: Symbol::intern("c"),
            time: TimePoint(time),
            violations: Bindings::from_rows(vec![var("wp"), var("wf")], rows),
        }
    }

    fn exp(time: u64, witness: Vec<(&'static str, Value)>) -> Expected {
        Expected {
            constraint: Symbol::intern("c"),
            time: TimePoint(time),
            witness,
        }
    }

    #[test]
    fn finds_witness_by_name() {
        // Rows passed to from_rows follow the *given* var order (wp, wf);
        // canonicalization is internal, lookup is by name.
        let r = report(5, vec![tuple!["ann", 17]]);
        let e = exp(5, vec![("wf", Value::Int(17)), ("wp", Value::str("ann"))]);
        assert!(e.found_in(&r));
        let other = Expected {
            constraint: Symbol::intern("zzz"),
            ..e.clone()
        };
        assert!(!other.found_in(&r), "constraint name must match");
    }

    #[test]
    fn wrong_time_or_value_is_not_found() {
        let r = report(5, vec![tuple!["ann", 17]]);
        let e = exp(6, vec![("wp", Value::str("ann"))]);
        assert!(!e.found_in(&r));
        let e = exp(5, vec![("wp", Value::str("bob"))]);
        assert!(!e.found_in(&r));
    }

    #[test]
    fn unknown_variable_name_is_not_found() {
        let r = report(5, vec![tuple!["ann", 17]]);
        let e = exp(5, vec![("zz", Value::str("ann"))]);
        assert!(!e.found_in(&r));
    }

    #[test]
    fn violation_at_tick_zero_is_found() {
        // Histories normally start at t = 1, but nothing in the matcher
        // assumes that: a report for the origin state still matches.
        let r = report(0, vec![tuple!["ann", 17]]);
        let e = exp(0, vec![("wp", Value::str("ann")), ("wf", Value::Int(17))]);
        assert!(e.found_in(&r));
        // ... and tick 0 is distinct from tick 1, not a wildcard.
        let e = exp(1, vec![("wp", Value::str("ann"))]);
        assert!(!e.found_in(&r));
    }

    #[test]
    fn violation_at_the_horizon_boundary_is_found() {
        // The last state of a bounded run is matched exactly like any
        // other; one tick past the horizon is a different report.
        let horizon = u64::MAX;
        let r = report(horizon, vec![tuple!["ann", 17]]);
        let e = exp(horizon, vec![("wp", Value::str("ann"))]);
        assert!(e.found_in(&r));
        let e = exp(horizon - 1, vec![("wp", Value::str("ann"))]);
        assert!(!e.found_in(&r));
    }

    #[test]
    fn multiple_violations_in_one_step_are_found_independently() {
        // One entity ("ann") violating twice in a single step plus an
        // unrelated row: each expectation matches its own row, and a
        // witness mixing columns from different rows does not match.
        let r = report(
            9,
            vec![tuple!["ann", 17], tuple!["ann", 18], tuple!["bob", 3]],
        );
        let both_ann = [
            exp(9, vec![("wp", Value::str("ann")), ("wf", Value::Int(17))]),
            exp(9, vec![("wp", Value::str("ann")), ("wf", Value::Int(18))]),
        ];
        for e in &both_ann {
            assert!(e.found_in(&r));
        }
        let bob = exp(9, vec![("wp", Value::str("bob")), ("wf", Value::Int(3))]);
        assert!(bob.found_in(&r));
        let cross = exp(9, vec![("wp", Value::str("bob")), ("wf", Value::Int(17))]);
        assert!(!cross.found_in(&r), "witness must bind within a single row");
        // A partial witness (entity only) matches as long as *some* row
        // binds it — the generators rely on this for held-state rules.
        let partial = exp(9, vec![("wp", Value::str("ann"))]);
        assert!(partial.found_in(&r));
    }
}
