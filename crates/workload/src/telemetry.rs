//! IoT telemetry SLA windows at production flavor: heartbeat liveness for
//! online devices and delivery freshness for broker messages.
//!
//! Relations:
//! * `online(d)` — held while device `d` has an open session;
//! * `heartbeat(d)` — transient keep-alive from device `d`;
//! * `enqueue(d, m)` — transient: the broker accepted message `m` for `d`;
//! * `deliver(d, m)` — transient: message `m` was delivered downstream.
//!
//! Constraints (heartbeat SLA `P`, freshness SLA `L`):
//!
//! ```text
//! deny silent:  online(d) && !once[0,P] heartbeat(d)
//! assert fresh: deliver(d, m) -> once[0,L] enqueue(d, m)
//! ```
//!
//! Devices churn through sessions (online for a bounded stretch, then
//! offline), which exercises shard eviction in the sharded plane: both
//! constraints key on `d`. Honest devices heartbeat at their online tick
//! and every `hb_period ≤ P` ticks after, so a clean run is provably
//! quiet. An injected silent session heartbeats only at its online tick
//! and goes offline right after the SLA trips, so `silent` turns definite
//! exactly once, at `online_tick + P + 1`. An injected stale delivery has
//! no matching enqueue and trips `fresh` at its own tick.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtic_history::Transition;
use rtic_relation::{tuple, Catalog, Schema, Sort, Tuple, Update, Value};
use rtic_temporal::parser::parse_constraint;
use rtic_temporal::{Constraint, TimePoint};

use crate::{Expected, Generated};

/// Parameters for the IoT telemetry workload.
#[derive(Clone, Copy, Debug)]
pub struct Telemetry {
    /// Number of transitions (one tick apart).
    pub steps: usize,
    /// Devices in the fleet (entity-key domain; scale to 10⁵–10⁶).
    pub devices: usize,
    /// Broker messages enqueued per step (spread over online devices).
    pub events_per_step: usize,
    /// Heartbeat SLA `P`: an online device must heartbeat every `P` ticks.
    pub heartbeat_sla: u64,
    /// Honest heartbeat cadence (clamped to `heartbeat_sla`).
    pub hb_period: u64,
    /// Freshness SLA `L`: a delivery must follow its enqueue within `L`.
    pub freshness_sla: u64,
    /// Shortest honest session, in ticks.
    pub min_session: u64,
    /// Longest honest session, in ticks.
    pub max_session: u64,
    /// Probability that a new session is injected-silent, and per-step
    /// probability of an injected stale delivery.
    pub violation_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Telemetry {
    fn default() -> Telemetry {
        Telemetry {
            steps: 200,
            devices: 64,
            events_per_step: 8,
            heartbeat_sla: 6,
            hb_period: 4,
            freshness_sla: 3,
            min_session: 10,
            max_session: 30,
            violation_rate: 0.05,
            seed: 42,
        }
    }
}

/// Per-device session lifecycle.
enum DevState {
    /// Offline; comes online at `until`.
    Offline { until: u64 },
    /// Online with an open session.
    Online {
        /// `online(d)` is deleted at this tick.
        ends: u64,
        /// Next honest heartbeat tick; `None` for an injected-silent session.
        next_hb: Option<u64>,
    },
}

impl Telemetry {
    /// The two constraints.
    pub fn constraint_texts(&self) -> [String; 2] {
        let p = self.heartbeat_sla;
        let l = self.freshness_sla;
        [
            format!("deny silent: online(d) && !once[0,{p}] heartbeat(d)"),
            format!("assert fresh: deliver(d, m) -> once[0,{l}] enqueue(d, m)"),
        ]
    }

    /// Generates the workload.
    pub fn generate(&self) -> Generated {
        assert!(self.devices >= 2, "need at least two devices");
        assert!(
            self.min_session <= self.max_session,
            "session bounds inverted"
        );
        let hb = self.hb_period.clamp(1, self.heartbeat_sla);
        let catalog = Arc::new(
            Catalog::new()
                .with("online", Schema::of(&[("d", Sort::Str)]))
                .expect("static workload schema")
                .with("heartbeat", Schema::of(&[("d", Sort::Str)]))
                .expect("static workload schema")
                .with("enqueue", Schema::of(&[("d", Sort::Str), ("m", Sort::Int)]))
                .expect("static workload schema")
                .with("deliver", Schema::of(&[("d", Sort::Str), ("m", Sort::Int)]))
                .expect("static workload schema"),
        );
        let constraints: Vec<Constraint> = self
            .constraint_texts()
            .iter()
            .map(|t| parse_constraint(t).expect("template parses"))
            .collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let p = self.heartbeat_sla;
        let mut transitions = Vec::with_capacity(self.steps);
        let mut expected = Vec::new();
        let mut next_msg: i64 = 0;
        // Stagger first-online ticks so sessions don't move in lockstep.
        let mut states: Vec<DevState> = (0..self.devices)
            .map(|_| DevState::Offline {
                until: 1 + rng.gen_range(0..self.max_session.max(2)),
            })
            .collect();
        // Enqueued messages awaiting delivery: (deliver_at, device, msg).
        let mut in_flight: Vec<(u64, u32, i64)> = Vec::new();
        let mut last_events: Vec<(&'static str, Tuple)> = Vec::new();
        for t in 1..=self.steps as u64 {
            let mut u = Update::new();
            for (rel, tuple) in last_events.drain(..) {
                u.delete(rel, tuple);
            }
            for (idx, state) in states.iter_mut().enumerate() {
                let name = format!("d{idx}");
                match state {
                    DevState::Offline { until } if *until == t => {
                        u.insert("online", tuple![name.as_str()]);
                        let row = tuple![name.as_str()];
                        u.insert("heartbeat", row.clone());
                        last_events.push(("heartbeat", row));
                        // An injected-silent session never heartbeats again
                        // and ends right after the SLA trips, so the deny
                        // fires at exactly one tick: t + P + 1.
                        let silent = rng.gen_bool(self.violation_rate) && t + p < self.steps as u64;
                        if silent {
                            expected.push(Expected {
                                constraint: "silent".into(),
                                time: TimePoint(t + p + 1),
                                witness: vec![("d", Value::str(&name))],
                            });
                            *state = DevState::Online {
                                ends: t + p + 2,
                                next_hb: None,
                            };
                        } else {
                            let len = rng.gen_range(self.min_session..=self.max_session);
                            *state = DevState::Online {
                                ends: t + len,
                                next_hb: Some(t + hb),
                            };
                        }
                    }
                    DevState::Online { ends, .. } if *ends == t => {
                        u.delete("online", tuple![name.as_str()]);
                        let gap = rng.gen_range(2..=self.max_session.max(3));
                        *state = DevState::Offline { until: t + gap };
                    }
                    DevState::Online { next_hb, .. } => {
                        if let Some(due) = next_hb {
                            if *due <= t {
                                let row = tuple![name.as_str()];
                                u.insert("heartbeat", row.clone());
                                last_events.push(("heartbeat", row));
                                *next_hb = Some(t + hb);
                            }
                        }
                    }
                    DevState::Offline { .. } => {}
                }
            }
            // Broker traffic: enqueue now, deliver within the SLA.
            for _ in 0..self.events_per_step {
                let dev = rng.gen_range(0..self.devices as u32);
                if !matches!(states[dev as usize], DevState::Online { .. }) {
                    continue;
                }
                let name = format!("d{dev}");
                let msg = next_msg;
                next_msg += 1;
                let row = tuple![name.as_str(), msg];
                u.insert("enqueue", row.clone());
                last_events.push(("enqueue", row));
                in_flight.push((t + rng.gen_range(0..=self.freshness_sla), dev, msg));
            }
            in_flight.retain(|&(due, dev, msg)| {
                if due == t {
                    let name = format!("d{dev}");
                    let row = tuple![name.as_str(), msg];
                    u.insert("deliver", row.clone());
                    last_events.push(("deliver", row));
                    false
                } else {
                    due > t
                }
            });
            // Injected stale delivery: a message that was never enqueued.
            if rng.gen_bool(self.violation_rate) {
                let dev = rng.gen_range(0..self.devices as u32);
                let name = format!("d{dev}");
                let msg = next_msg;
                next_msg += 1;
                let row = tuple![name.as_str(), msg];
                u.insert("deliver", row.clone());
                last_events.push(("deliver", row));
                expected.push(Expected {
                    constraint: "fresh".into(),
                    time: TimePoint(t),
                    witness: vec![("d", Value::str(&name)), ("m", Value::Int(msg))],
                });
            }
            transitions.push(Transition::new(t, u));
        }
        // Sessions whose SLA trip falls beyond the horizon were filtered at
        // injection time, so every Expected is inside the stream.
        Generated {
            catalog,
            constraints,
            transitions,
            expected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtic_core::{Checker, IncrementalChecker};

    fn run_all(gen: &Generated) -> Vec<rtic_core::StepReport> {
        let mut checkers: Vec<IncrementalChecker> = gen
            .constraints
            .iter()
            .map(|c| IncrementalChecker::new(c.clone(), Arc::clone(&gen.catalog)).unwrap())
            .collect();
        let mut reports = Vec::new();
        for tr in &gen.transitions {
            for c in &mut checkers {
                reports.push(c.step(tr.time, &tr.update).unwrap());
            }
        }
        reports
    }

    #[test]
    fn deterministic() {
        let a = Telemetry::default().generate();
        let b = Telemetry::default().generate();
        assert_eq!(a.transitions, b.transitions);
        assert_eq!(a.expected, b.expected);
    }

    #[test]
    fn injected_silences_and_stale_deliveries_detected() {
        let gen = Telemetry {
            steps: 160,
            violation_rate: 0.12,
            ..Default::default()
        }
        .generate();
        assert!(
            gen.expected
                .iter()
                .any(|e| e.constraint.as_str() == "silent"),
            "some silent sessions injected"
        );
        assert!(
            gen.expected
                .iter()
                .any(|e| e.constraint.as_str() == "fresh"),
            "some stale deliveries injected"
        );
        let reports = run_all(&gen);
        for exp in &gen.expected {
            assert!(
                reports.iter().any(|r| exp.found_in(r)),
                "missing expected {} violation at {}",
                exp.constraint,
                exp.time
            );
        }
    }

    #[test]
    fn honest_fleet_is_quiet() {
        let gen = Telemetry {
            steps: 140,
            violation_rate: 0.0,
            ..Default::default()
        }
        .generate();
        assert!(gen.expected.is_empty());
        for r in run_all(&gen) {
            assert!(r.ok(), "spurious {} violation at {}", r.constraint, r.time);
        }
    }

    #[test]
    fn silent_fires_exactly_once_per_injected_session() {
        let gen = Telemetry {
            steps: 180,
            violation_rate: 0.2,
            events_per_step: 0,
            ..Default::default()
        }
        .generate();
        let silent = gen.constraints[0].clone();
        let mut checker = IncrementalChecker::new(silent, Arc::clone(&gen.catalog)).unwrap();
        let reports = checker.run(gen.transitions.clone()).unwrap();
        let fired: usize = reports.iter().map(|r| r.violation_count()).sum();
        let injected = gen
            .expected
            .iter()
            .filter(|e| e.constraint.as_str() == "silent")
            .count();
        assert_eq!(fired, injected, "one firing per injected silent session");
    }
}
