//! The paper's motivating scenario: airline reservations that must be
//! confirmed within a deadline.
//!
//! Relations:
//! * `reserved(p, f)` — the reservation, held from creation to retirement;
//! * `reserved_at(p, f)` — transient creation event (present for one state);
//! * `confirmed(p, f)` — the confirmation, recorded when it happens.
//!
//! Constraint (deadline `d`, retirement at `d + 2`):
//!
//! ```text
//! deny unconfirmed:
//!     reserved(p, f) && once[d, d+2] reserved_at(p, f)
//!                    && !once[0, d+2] confirmed(p, f)
//! ```
//!
//! A reservation created at `t₀` and never confirmed is flagged first at
//! exactly `t₀ + d` — the earliest state where the violation is definite.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtic_history::Transition;
use rtic_relation::{tuple, Catalog, Schema, Sort, Update};
use rtic_temporal::parser::parse_constraint;
use rtic_temporal::TimePoint;

use crate::{Expected, Generated};

/// Parameters for the reservations workload.
#[derive(Clone, Copy, Debug)]
pub struct Reservations {
    /// Number of transitions to generate (one tick apart).
    pub steps: usize,
    /// Reservations created per step.
    pub new_per_step: usize,
    /// Confirmation deadline `d` (ticks).
    pub deadline: u64,
    /// Probability a reservation is never confirmed (injected violation).
    pub violation_rate: f64,
    /// RNG seed (generation is fully deterministic given the parameters).
    pub seed: u64,
}

impl Default for Reservations {
    fn default() -> Reservations {
        Reservations {
            steps: 200,
            new_per_step: 2,
            deadline: 5,
            violation_rate: 0.05,
            seed: 42,
        }
    }
}

struct Pending {
    p: String,
    f: i64,
    created: u64,
    confirm_at: Option<u64>, // None = injected violator
    confirmed: bool,
}

impl Reservations {
    /// The constraint text for deadline `d`.
    pub fn constraint_text(&self) -> String {
        let d = self.deadline;
        let d2 = d + 2;
        format!(
            "deny unconfirmed: reserved(p, f) && once[{d},{d2}] reserved_at(p, f) \
             && !once[0,{d2}] confirmed(p, f)"
        )
    }

    /// Generates the workload.
    pub fn generate(&self) -> Generated {
        assert!(
            self.deadline >= 2,
            "deadline must leave room for confirmation"
        );
        let catalog = Arc::new(
            Catalog::new()
                .with(
                    "reserved",
                    Schema::of(&[("p", Sort::Str), ("f", Sort::Int)]),
                )
                .expect("static workload schema")
                .with(
                    "reserved_at",
                    Schema::of(&[("p", Sort::Str), ("f", Sort::Int)]),
                )
                .expect("static workload schema")
                .with(
                    "confirmed",
                    Schema::of(&[("p", Sort::Str), ("f", Sort::Int)]),
                )
                .expect("static workload schema"),
        );
        let constraint = parse_constraint(&self.constraint_text()).expect("template parses");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut pending: Vec<Pending> = Vec::new();
        let mut transitions = Vec::with_capacity(self.steps);
        let mut expected = Vec::new();
        let mut next_flight: i64 = 0;
        let mut last_events: Vec<(String, i64)> = Vec::new();
        for t in 1..=self.steps as u64 {
            let mut u = Update::new();
            // Retire yesterday's creation events.
            for (p, f) in last_events.drain(..) {
                u.delete("reserved_at", tuple![p.as_str(), f]);
            }
            // New reservations.
            for _ in 0..self.new_per_step {
                let p = format!("p{}", rng.gen_range(0..50));
                let f = next_flight;
                next_flight += 1;
                u.insert("reserved", tuple![p.as_str(), f]);
                u.insert("reserved_at", tuple![p.as_str(), f]);
                let violator = rng.gen_bool(self.violation_rate);
                let confirm_at = if violator {
                    if t + self.deadline <= self.steps as u64 {
                        expected.push(Expected {
                            constraint: "unconfirmed".into(),
                            time: TimePoint(t + self.deadline),
                            witness: vec![
                                ("p", rtic_relation::Value::str(&p)),
                                ("f", rtic_relation::Value::Int(f)),
                            ],
                        });
                    }
                    None
                } else {
                    Some(t + rng.gen_range(1..self.deadline))
                };
                last_events.push((p.clone(), f));
                pending.push(Pending {
                    p,
                    f,
                    created: t,
                    confirm_at,
                    confirmed: false,
                });
            }
            // Confirmations and retirements.
            pending.retain_mut(|r| {
                if r.confirm_at == Some(t) {
                    u.insert("confirmed", tuple![r.p.as_str(), r.f]);
                    r.confirmed = true;
                }
                if t == r.created + self.deadline + 2 {
                    u.delete("reserved", tuple![r.p.as_str(), r.f]);
                    if r.confirmed {
                        u.delete("confirmed", tuple![r.p.as_str(), r.f]);
                    }
                    false
                } else {
                    true
                }
            });
            transitions.push(Transition::new(t, u));
        }
        Generated {
            catalog,
            constraints: vec![constraint],
            transitions,
            expected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtic_core::{Checker, IncrementalChecker};

    #[test]
    fn deterministic_given_seed() {
        let a = Reservations::default().generate();
        let b = Reservations::default().generate();
        assert_eq!(a.transitions, b.transitions);
        assert_eq!(a.expected, b.expected);
        let c = Reservations {
            seed: 7,
            ..Default::default()
        }
        .generate();
        assert_ne!(a.transitions, c.transitions);
    }

    #[test]
    fn injected_violations_are_caught_exactly() {
        let spec = Reservations {
            steps: 120,
            violation_rate: 0.2,
            ..Default::default()
        };
        let gen = spec.generate();
        assert!(
            !gen.expected.is_empty(),
            "workload injected some violations"
        );
        let mut checker =
            IncrementalChecker::new(gen.constraints[0].clone(), Arc::clone(&gen.catalog)).unwrap();
        let reports = checker.run(gen.transitions.clone()).unwrap();
        // Every injected violation is found at its first-definite state.
        for exp in &gen.expected {
            let report = reports
                .iter()
                .find(|r| r.time == exp.time)
                .expect("a report exists at the expected time");
            assert!(
                exp.found_in(report),
                "missing expected violation at {}",
                exp.time
            );
        }
        // And no violation is reported before it could be definite: the
        // count of *distinct first detections* matches the injection count.
        let mut firsts = 0;
        let mut seen: std::collections::BTreeSet<Vec<rtic_relation::Value>> = Default::default();
        for r in &reports {
            for row in r.violations.rows() {
                if seen.insert(row.values().to_vec()) {
                    firsts += 1;
                }
            }
        }
        assert_eq!(firsts, gen.expected.len(), "no spurious violations");
    }

    #[test]
    fn clean_run_has_no_violations() {
        let gen = Reservations {
            violation_rate: 0.0,
            steps: 80,
            ..Default::default()
        }
        .generate();
        assert!(gen.expected.is_empty());
        let mut checker =
            IncrementalChecker::new(gen.constraints[0].clone(), Arc::clone(&gen.catalog)).unwrap();
        for r in checker.run(gen.transitions.clone()).unwrap() {
            assert!(r.ok(), "spurious violation at {}", r.time);
        }
    }
}
