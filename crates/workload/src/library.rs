//! The scenario registry: every workload generator, enumerable by name.
//!
//! The CLI (`rtic generate`, `rtic smc`), the bench recorder, and the SMC
//! harness all resolve scenarios here instead of hard-coding generator
//! structs. Each entry maps the shared [`ScenarioParams`] knobs onto the
//! generator's own parameters; scenario-specific knobs (windows, rates)
//! stay at their defaults so a `(name, params)` pair fully determines the
//! generated history.

use crate::{
    Access, Audit, Fraud, Generated, Library, Monitor, RandomWorkload, RateLimit, Reservations,
    Telemetry,
};

/// Shared generator knobs every scenario understands.
///
/// `entities` is the entity-key domain size (accounts, devices, clients,
/// users, sensors, …) — scale it to 10⁵–10⁶ to soak the sharded plane.
#[derive(Clone, Copy, Debug)]
pub struct ScenarioParams {
    /// Number of transitions (one tick apart).
    pub steps: usize,
    /// Entity-key domain size.
    pub entities: usize,
    /// Honest events per step.
    pub events_per_step: usize,
    /// Injected-violation probability (per step or per lifecycle start,
    /// scenario-dependent).
    pub violation_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ScenarioParams {
    fn default() -> ScenarioParams {
        ScenarioParams {
            steps: 200,
            entities: 64,
            events_per_step: 8,
            violation_rate: 0.05,
            seed: 42,
        }
    }
}

/// A named, registered workload generator.
pub struct Scenario {
    /// Registry name (CLI-facing).
    pub name: &'static str,
    /// One-line description.
    pub summary: &'static str,
    /// True for the production-flavor scenarios (fraud, telemetry,
    /// ratelimit, access); false for the paper-styled originals.
    pub production: bool,
    /// Builds the generated workload from the shared knobs.
    pub build: fn(&ScenarioParams) -> Generated,
}

impl Scenario {
    /// Generates this scenario's workload.
    pub fn generate(&self, params: &ScenarioParams) -> Generated {
        (self.build)(params)
    }
}

static SCENARIOS: &[Scenario] = &[
    Scenario {
        name: "fraud",
        summary: "fraud/AML: structuring bursts (windowed count) + large-transfer screening",
        production: true,
        build: |p| {
            Fraud {
                steps: p.steps,
                accounts: p.entities,
                events_per_step: p.events_per_step,
                violation_rate: p.violation_rate,
                seed: p.seed,
                ..Default::default()
            }
            .generate()
        },
    },
    Scenario {
        name: "telemetry",
        summary: "IoT telemetry: heartbeat liveness SLA + delivery freshness, churning sessions",
        production: true,
        build: |p| {
            Telemetry {
                steps: p.steps,
                devices: p.entities,
                events_per_step: p.events_per_step,
                violation_rate: p.violation_rate,
                seed: p.seed,
                ..Default::default()
            }
            .generate()
        },
    },
    Scenario {
        name: "ratelimit",
        summary: "rate limiting: consecutive-tick hammering + banned-client gate, fully sharded",
        production: true,
        build: |p| {
            RateLimit {
                steps: p.steps,
                clients: p.entities,
                events_per_step: p.events_per_step,
                violation_rate: p.violation_rate,
                seed: p.seed,
                ..Default::default()
            }
            .generate()
        },
    },
    Scenario {
        name: "access",
        summary: "access control: session TTLs, sudo gating, approval trails for grants",
        production: true,
        build: |p| {
            Access {
                steps: p.steps,
                users: p.entities,
                events_per_step: p.events_per_step,
                violation_rate: p.violation_rate,
                seed: p.seed,
                ..Default::default()
            }
            .generate()
        },
    },
    Scenario {
        name: "reservations",
        summary: "paper: confirm-within-deadline (bounded once under negation)",
        production: false,
        build: |p| {
            Reservations {
                steps: p.steps,
                new_per_step: p.events_per_step,
                violation_rate: p.violation_rate,
                seed: p.seed,
                ..Default::default()
            }
            .generate()
        },
    },
    Scenario {
        name: "library",
        summary: "paper: return-within-period (since with an unbounded bound)",
        production: false,
        build: |p| {
            Library {
                steps: p.steps,
                checkouts_per_step: p.events_per_step,
                violation_rate: p.violation_rate,
                seed: p.seed,
                ..Default::default()
            }
            .generate()
        },
    },
    Scenario {
        name: "monitor",
        summary: "paper: ack-within-window + no-spike (hist, prev, order comparisons)",
        production: false,
        build: |p| {
            Monitor {
                steps: p.steps,
                sensors: p.entities,
                violation_rate: p.violation_rate,
                seed: p.seed,
                ..Default::default()
            }
            .generate()
        },
    },
    Scenario {
        name: "audit",
        summary: "paper: transaction auditing (assert mode, exists under negation)",
        production: false,
        build: |p| {
            Audit {
                steps: p.steps,
                accounts: p.entities,
                txns_per_step: p.events_per_step,
                unapproved_rate: p.violation_rate,
                seed: p.seed,
                ..Default::default()
            }
            .generate()
        },
    },
    Scenario {
        name: "random",
        summary: "uniform random churn for scaling sweeps (no injected violations)",
        production: false,
        build: |p| {
            RandomWorkload {
                steps: p.steps,
                domain: p.entities,
                updates_per_step: p.events_per_step,
                seed: p.seed,
                ..Default::default()
            }
            .generate()
        },
    },
];

/// Every registered scenario, production-flavor entries first.
pub fn all() -> &'static [Scenario] {
    SCENARIOS
}

/// The four production-flavor scenarios.
pub fn production() -> impl Iterator<Item = &'static Scenario> {
    SCENARIOS.iter().filter(|s| s.production)
}

/// Looks a scenario up by registry name.
pub fn find(name: &str) -> Option<&'static Scenario> {
    SCENARIOS.iter().find(|s| s.name == name)
}

/// The registry names, for usage strings and error messages.
pub fn names() -> Vec<&'static str> {
    SCENARIOS.iter().map(|s| s.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_findable() {
        assert_eq!(all().len(), 9);
        assert_eq!(production().count(), 4);
        for s in all() {
            assert!(std::ptr::eq(find(s.name).unwrap(), s));
        }
        assert!(find("nope").is_none());
    }

    #[test]
    fn every_scenario_generates_under_shared_params() {
        let params = ScenarioParams {
            steps: 40,
            entities: 16,
            events_per_step: 4,
            violation_rate: 0.1,
            seed: 7,
        };
        for s in all() {
            let gen = s.generate(&params);
            assert_eq!(gen.transitions.len(), 40, "{} transition count", s.name);
            assert!(!gen.constraints.is_empty(), "{} has constraints", s.name);
            for exp in &gen.expected {
                assert!(
                    exp.time.0 >= 1 && exp.time.0 <= 40,
                    "{} expectation inside the horizon",
                    s.name
                );
            }
        }
    }

    #[test]
    fn production_scenarios_inject_violations() {
        let params = ScenarioParams {
            steps: 120,
            entities: 32,
            events_per_step: 6,
            violation_rate: 0.15,
            seed: 11,
        };
        for s in production() {
            let gen = s.generate(&params);
            assert!(!gen.expected.is_empty(), "{} injects at this seed", s.name);
        }
    }
}
