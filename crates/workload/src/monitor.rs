//! Process/alarm monitoring: the "real-time" flavor of the paper's title.
//! Exercises `hist` (continuous condition) and `prev` (state-to-state
//! comparison).
//!
//! Relations:
//! * `alarm(s)` — sensor `s` is in alarm, held until acknowledged/resolved;
//! * `ack(s)` — transient acknowledgement event;
//! * `reading(s, v)` — the current value of sensor `s` (replaced each step).
//!
//! Constraints (ack window `K`):
//!
//! ```text
//! deny unacked: alarm(s) && hist[0,K] alarm(s) && !once[0,K] ack(s)
//! deny spike:   reading(s, v) && prev[1,1] reading(s, w) && w < v
//! ```
//!
//! `unacked` fires first at exactly `t₀ + K` for an alarm raised at `t₀`
//! and never acknowledged; `spike` denies any increase of a (nominally
//! non-increasing) sensor value between consecutive states.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtic_history::Transition;
use rtic_relation::{tuple, Catalog, Schema, Sort, Update, Value};
use rtic_temporal::parser::parse_constraint;
use rtic_temporal::{Constraint, TimePoint};

use crate::{Expected, Generated};

/// Parameters for the monitoring workload.
#[derive(Clone, Copy, Debug)]
pub struct Monitor {
    /// Number of transitions (one tick apart).
    pub steps: usize,
    /// Number of sensors.
    pub sensors: usize,
    /// Per-step probability that an idle sensor raises an alarm.
    pub raise_rate: f64,
    /// Acknowledgement window `K`.
    pub ack_window: u64,
    /// Probability a raised alarm is never acknowledged (injected).
    pub violation_rate: f64,
    /// Per-step probability of an injected reading spike.
    pub spike_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Monitor {
    fn default() -> Monitor {
        Monitor {
            steps: 200,
            sensors: 10,
            raise_rate: 0.08,
            ack_window: 4,
            violation_rate: 0.1,
            spike_rate: 0.02,
            seed: 42,
        }
    }
}

/// Per-sensor alarm lifecycle.
enum SensorState {
    Idle { cooldown_until: u64 },
    Alarmed { raised: u64, ack_at: Option<u64> }, // None = injected violator
}

impl Monitor {
    /// The two constraints for window `K`.
    pub fn constraint_texts(&self) -> [String; 2] {
        let k = self.ack_window;
        [
            format!("deny unacked: alarm(s) && hist[0,{k}] alarm(s) && !once[0,{k}] ack(s)"),
            "deny spike: reading(s, v) && prev[1,1] reading(s, w) && w < v".to_string(),
        ]
    }

    /// Generates the workload.
    pub fn generate(&self) -> Generated {
        assert!(self.ack_window >= 2, "window must leave room for acks");
        let catalog = Arc::new(
            Catalog::new()
                .with("alarm", Schema::of(&[("s", Sort::Str)]))
                .expect("static workload schema")
                .with("ack", Schema::of(&[("s", Sort::Str)]))
                .expect("static workload schema")
                .with("reading", Schema::of(&[("s", Sort::Str), ("v", Sort::Int)]))
                .expect("static workload schema"),
        );
        let constraints: Vec<Constraint> = self
            .constraint_texts()
            .iter()
            .map(|t| parse_constraint(t).expect("template parses"))
            .collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut transitions = Vec::with_capacity(self.steps);
        let mut expected = Vec::new();
        let k = self.ack_window;
        // Warm-up: within the first K ticks the hist window is clipped at
        // the history start, so a just-raised alarm would be vacuously
        // "continuously on". Real deployments have history; we simply don't
        // raise alarms until enough states exist.
        let mut states: Vec<SensorState> = (0..self.sensors)
            .map(|_| SensorState::Idle {
                cooldown_until: k + 2,
            })
            .collect();
        let mut values: Vec<i64> = (0..self.sensors).map(|_| 1_000_000).collect();
        let mut last_acks: Vec<String> = Vec::new();
        for t in 1..=self.steps as u64 {
            let mut u = Update::new();
            for s in last_acks.drain(..) {
                u.delete("ack", tuple![s.as_str()]);
            }
            for (i, st) in states.iter_mut().enumerate() {
                let name = format!("s{i}");
                match st {
                    SensorState::Idle { cooldown_until } => {
                        if t >= *cooldown_until && rng.gen_bool(self.raise_rate) {
                            u.insert("alarm", tuple![name.as_str()]);
                            let violator = rng.gen_bool(self.violation_rate);
                            let ack_at = if violator {
                                if t + k <= self.steps as u64 {
                                    expected.push(Expected {
                                        constraint: "unacked".into(),
                                        time: TimePoint(t + k),
                                        witness: vec![("s", Value::str(&name))],
                                    });
                                }
                                None
                            } else {
                                Some(t + rng.gen_range(1..k))
                            };
                            *st = SensorState::Alarmed { raised: t, ack_at };
                        }
                    }
                    SensorState::Alarmed { raised, ack_at } => {
                        let resolve_unacked = ack_at.is_none() && t == *raised + k + 2;
                        if *ack_at == Some(t) {
                            u.insert("ack", tuple![name.as_str()]);
                            u.delete("alarm", tuple![name.as_str()]);
                            last_acks.push(name.clone());
                            // Ack events linger in once[0,K]: cool down past it.
                            *st = SensorState::Idle {
                                cooldown_until: t + k + 2,
                            };
                        } else if resolve_unacked {
                            u.delete("alarm", tuple![name.as_str()]);
                            *st = SensorState::Idle {
                                cooldown_until: t + k + 2,
                            };
                        }
                    }
                }
            }
            // Readings: non-increasing drift, with injected spikes.
            for (i, v) in values.iter_mut().enumerate() {
                let name = format!("s{i}");
                let old = *v;
                // No spike at t = 1: there is no previous reading for
                // `prev` to compare against.
                if t > 1 && rng.gen_bool(self.spike_rate) {
                    *v = old + 50;
                    expected.push(Expected {
                        constraint: "spike".into(),
                        time: TimePoint(t),
                        witness: vec![("s", Value::str(&name))],
                    });
                } else {
                    *v = old - rng.gen_range(0i64..3);
                }
                if t > 1 {
                    u.delete("reading", tuple![name.as_str(), old]);
                }
                u.insert("reading", tuple![name.as_str(), *v]);
            }
            transitions.push(Transition::new(t, u));
        }
        Generated {
            catalog,
            constraints,
            transitions,
            expected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtic_core::{Checker, IncrementalChecker};

    #[test]
    fn deterministic() {
        let a = Monitor::default().generate();
        let b = Monitor::default().generate();
        assert_eq!(a.transitions, b.transitions);
    }

    #[test]
    fn unacked_alarms_and_spikes_detected() {
        let gen = Monitor {
            steps: 120,
            ..Default::default()
        }
        .generate();
        assert!(!gen.expected.is_empty(), "some violations injected");
        let mut checkers: Vec<IncrementalChecker> = gen
            .constraints
            .iter()
            .map(|c| IncrementalChecker::new(c.clone(), Arc::clone(&gen.catalog)).unwrap())
            .collect();
        let mut reports = Vec::new();
        for tr in &gen.transitions {
            for c in &mut checkers {
                reports.push(c.step(tr.time, &tr.update).unwrap());
            }
        }
        for exp in &gen.expected {
            assert!(
                reports.iter().any(|r| exp.found_in(r)),
                "missing expected violation at {}",
                exp.time
            );
        }
    }

    #[test]
    fn clean_run_is_quiet() {
        let gen = Monitor {
            steps: 100,
            violation_rate: 0.0,
            spike_rate: 0.0,
            ..Default::default()
        }
        .generate();
        assert!(gen.expected.is_empty());
        for c in &gen.constraints {
            let mut checker = IncrementalChecker::new(c.clone(), Arc::clone(&gen.catalog)).unwrap();
            for r in checker.run(gen.transitions.clone()).unwrap() {
                assert!(
                    r.ok(),
                    "spurious violation of {} at {}",
                    r.constraint,
                    r.time
                );
            }
        }
    }

    #[test]
    fn spike_fires_only_at_injection() {
        let gen = Monitor {
            steps: 60,
            raise_rate: 0.0,
            spike_rate: 0.05,
            ..Default::default()
        }
        .generate();
        let spike = gen.constraints[1].clone();
        let mut checker = IncrementalChecker::new(spike, Arc::clone(&gen.catalog)).unwrap();
        let reports = checker.run(gen.transitions.clone()).unwrap();
        let fired: usize = reports.iter().map(|r| r.violation_count()).sum();
        assert_eq!(fired, gen.expected.len());
    }
}
