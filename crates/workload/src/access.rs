//! Access-control audit trails at production flavor: session staleness,
//! privileged-action gating, and approval trails for new grants.
//!
//! Relations:
//! * `session(u, s)` — held while session `s` of user `u` is open;
//! * `login(u, s)` — transient login event opening session `s`;
//! * `grant(u)` — held while user `u` holds elevated privileges;
//! * `approve(u)` — transient approval for granting `u`;
//! * `sudo(u, s)` — transient privileged action in session `s`.
//!
//! Constraints (session TTL `T`, approval window `A`):
//!
//! ```text
//! deny stale_session: session(u, s) && (session(u, s) since[T,*] login(u, s))
//! assert sudo_grant:  sudo(u, s) -> grant(u)
//! assert grant_trail: grant(u) && !(prev[1,1] grant(u)) -> once[0,A] approve(u)
//! ```
//!
//! `stale_session` is the paper's return-within-period shape applied to
//! session hygiene: a session still open `T` ticks after its login is
//! overdue for re-authentication, definite first at `login + T`.
//! `sudo_grant` is a pure-state gate, and `grant_trail` demands that the
//! tick a grant *appears* (true now, false at the previous state) lies
//! within `A` ticks of an approval. Honest sessions log out before the
//! TTL, honest sudo comes only from granted users, and honest grants
//! follow an approval within the window — a clean run is provably quiet.
//! Injected violations: a session held one tick past its TTL (fires once
//! at `login + T`), a sudo from an ungranted user, and a grant with no
//! approval on record.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtic_history::Transition;
use rtic_relation::{tuple, Catalog, Schema, Sort, Tuple, Update, Value};
use rtic_temporal::parser::parse_constraint;
use rtic_temporal::{Constraint, TimePoint};

use crate::{Expected, Generated};

/// Parameters for the access-control workload.
#[derive(Clone, Copy, Debug)]
pub struct Access {
    /// Number of transitions (one tick apart).
    pub steps: usize,
    /// Users in play (entity-key domain; scale to 10⁵–10⁶).
    pub users: usize,
    /// Honest logins started per step.
    pub events_per_step: usize,
    /// Session TTL `T`: a session open `T` ticks after login is stale.
    pub session_ttl: u64,
    /// Approval window `A` for new grants.
    pub approval_window: u64,
    /// Per-step probability of each injected violation kind (stale
    /// session, ungranted sudo, unapproved grant).
    pub violation_rate: f64,
    /// Per-step probability of an honest grant/revoke cycle starting.
    pub grant_rate: f64,
    /// Per-step probability that an open session runs a (granted) sudo.
    pub sudo_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Access {
    fn default() -> Access {
        Access {
            steps: 200,
            users: 64,
            events_per_step: 8,
            session_ttl: 8,
            approval_window: 3,
            violation_rate: 0.05,
            grant_rate: 0.2,
            sudo_rate: 0.3,
            seed: 42,
        }
    }
}

/// Per-user privilege lifecycle.
#[derive(Clone, Copy, PartialEq)]
enum Priv {
    None,
    /// Approved at the recorded tick; grant lands within the window.
    Approved {
        grant_at: u64,
    },
    Granted {
        revoke_at: u64,
    },
}

impl Access {
    /// The three constraints.
    pub fn constraint_texts(&self) -> [String; 3] {
        let t = self.session_ttl;
        let a = self.approval_window;
        [
            format!(
                "deny stale_session: session(u, s) && (session(u, s) since[{t},*] login(u, s))"
            ),
            "assert sudo_grant: sudo(u, s) -> grant(u)".to_string(),
            format!(
                "assert grant_trail: grant(u) && !(prev[1,1] grant(u)) -> once[0,{a}] approve(u)"
            ),
        ]
    }

    /// Generates the workload.
    pub fn generate(&self) -> Generated {
        assert!(self.users >= 4, "need a few users to rotate through");
        assert!(self.session_ttl >= 2, "TTL must leave room for sessions");
        let catalog = Arc::new(
            Catalog::new()
                .with("session", Schema::of(&[("u", Sort::Str), ("s", Sort::Int)]))
                .expect("static workload schema")
                .with("login", Schema::of(&[("u", Sort::Str), ("s", Sort::Int)]))
                .expect("static workload schema")
                .with("grant", Schema::of(&[("u", Sort::Str)]))
                .expect("static workload schema")
                .with("approve", Schema::of(&[("u", Sort::Str)]))
                .expect("static workload schema")
                .with("sudo", Schema::of(&[("u", Sort::Str), ("s", Sort::Int)]))
                .expect("static workload schema"),
        );
        let constraints: Vec<Constraint> = self
            .constraint_texts()
            .iter()
            .map(|t| parse_constraint(t).expect("template parses"))
            .collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let ttl = self.session_ttl;
        let mut transitions = Vec::with_capacity(self.steps);
        let mut expected = Vec::new();
        let mut next_session: i64 = 0;
        // Open sessions: (user, session id, logout tick). Stale-injected
        // sessions log out at login + T + 1, one tick past definite.
        let mut open: Vec<(u32, i64, u64)> = Vec::new();
        let mut privs: Vec<Priv> = vec![Priv::None; self.users];
        // Last approve tick per user (0 = never) — injected unapproved
        // grants must avoid users with an in-window approval on record.
        let mut last_approve: Vec<u64> = vec![0; self.users];
        let approve_p = (self.grant_rate * 8.0 / self.users as f64).min(1.0);
        let mut last_events: Vec<(&'static str, Tuple)> = Vec::new();
        for t in 1..=self.steps as u64 {
            let mut u = Update::new();
            for (rel, tuple) in last_events.drain(..) {
                u.delete(rel, tuple);
            }
            // Close expired sessions first so a user can re-login at the
            // same tick a prior session ends without overlap.
            open.retain(|&(user, sid, ends)| {
                if ends == t {
                    let name = format!("u{user}");
                    u.delete("session", tuple![name.as_str(), sid]);
                    false
                } else {
                    true
                }
            });
            // Honest logins: sessions that always log out before the TTL.
            for _ in 0..self.events_per_step {
                let user = rng.gen_range(0..self.users as u32);
                let name = format!("u{user}");
                let sid = next_session;
                next_session += 1;
                let row = tuple![name.as_str(), sid];
                u.insert("session", row.clone());
                u.insert("login", row.clone());
                last_events.push(("login", row));
                open.push((user, sid, t + rng.gen_range(1..ttl)));
            }
            // Injected stale session: held exactly one tick past the TTL,
            // so `stale_session` turns definite once, at t + T.
            if rng.gen_bool(self.violation_rate) && t + ttl <= self.steps as u64 {
                let user = rng.gen_range(0..self.users as u32);
                let name = format!("u{user}");
                let sid = next_session;
                next_session += 1;
                let row = tuple![name.as_str(), sid];
                u.insert("session", row.clone());
                u.insert("login", row.clone());
                last_events.push(("login", row));
                open.push((user, sid, t + ttl + 1));
                expected.push(Expected {
                    constraint: "stale_session".into(),
                    time: TimePoint(t + ttl),
                    witness: vec![("u", Value::str(&name)), ("s", Value::Int(sid))],
                });
            }
            // Honest privilege cycles: approve at t, grant inside the
            // window, revoke later.
            for (user, p) in privs.iter_mut().enumerate() {
                let name = format!("u{user}");
                match *p {
                    Priv::None if rng.gen_bool(approve_p) => {
                        let row = tuple![name.as_str()];
                        u.insert("approve", row.clone());
                        last_events.push(("approve", row));
                        last_approve[user] = t;
                        *p = Priv::Approved {
                            grant_at: t + rng.gen_range(0..=self.approval_window),
                        };
                    }
                    Priv::Approved { grant_at } if grant_at <= t => {
                        u.insert("grant", tuple![name.as_str()]);
                        *p = Priv::Granted {
                            revoke_at: t + rng.gen_range(2u64..=12),
                        };
                    }
                    Priv::Granted { revoke_at } if revoke_at == t => {
                        u.delete("grant", tuple![name.as_str()]);
                        *p = Priv::None;
                    }
                    _ => {}
                }
            }
            // Honest sudo: only from granted users with an open session.
            if rng.gen_bool(self.sudo_rate) {
                let pick = open.iter().find(|&&(user, _, _)| {
                    matches!(privs[user as usize], Priv::Granted { revoke_at } if revoke_at > t)
                });
                if let Some(&(user, sid, _)) = pick {
                    let name = format!("u{user}");
                    let row = tuple![name.as_str(), sid];
                    u.insert("sudo", row.clone());
                    last_events.push(("sudo", row));
                }
            }
            // Injected ungranted sudo: fires `sudo_grant` at this tick.
            let mut sudo_victim: Option<u32> = None;
            if rng.gen_bool(self.violation_rate) {
                let pick = open
                    .iter()
                    .find(|&&(user, _, _)| privs[user as usize] == Priv::None);
                if let Some(&(user, sid, _)) = pick {
                    let name = format!("u{user}");
                    let row = tuple![name.as_str(), sid];
                    u.insert("sudo", row.clone());
                    last_events.push(("sudo", row));
                    sudo_victim = Some(user);
                    expected.push(Expected {
                        constraint: "sudo_grant".into(),
                        time: TimePoint(t),
                        witness: vec![("u", Value::str(&name)), ("s", Value::Int(sid))],
                    });
                }
            }
            // Injected unapproved grant: no approval on record inside the
            // window (and not the user who just ran an ungranted sudo —
            // that would legalize the sudo), so `grant_trail` fires at the
            // grant tick. The user is revoked next tick.
            if rng.gen_bool(self.violation_rate) {
                let pick = (0..8).map(|_| rng.gen_range(0..self.users)).find(|&user| {
                    privs[user] == Priv::None
                        && sudo_victim != Some(user as u32)
                        && last_approve[user] + self.approval_window < t
                });
                if let Some(user) = pick {
                    let name = format!("u{user}");
                    u.insert("grant", tuple![name.as_str()]);
                    privs[user] = Priv::Granted { revoke_at: t + 1 };
                    expected.push(Expected {
                        constraint: "grant_trail".into(),
                        time: TimePoint(t),
                        witness: vec![("u", Value::str(&name))],
                    });
                }
            }
            transitions.push(Transition::new(t, u));
        }
        Generated {
            catalog,
            constraints,
            transitions,
            expected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtic_core::{Checker, IncrementalChecker};

    fn run_all(gen: &Generated) -> Vec<rtic_core::StepReport> {
        let mut checkers: Vec<IncrementalChecker> = gen
            .constraints
            .iter()
            .map(|c| IncrementalChecker::new(c.clone(), Arc::clone(&gen.catalog)).unwrap())
            .collect();
        let mut reports = Vec::new();
        for tr in &gen.transitions {
            for c in &mut checkers {
                reports.push(c.step(tr.time, &tr.update).unwrap());
            }
        }
        reports
    }

    #[test]
    fn deterministic() {
        let a = Access::default().generate();
        let b = Access::default().generate();
        assert_eq!(a.transitions, b.transitions);
        assert_eq!(a.expected, b.expected);
    }

    #[test]
    fn all_three_injected_violation_kinds_detected() {
        let gen = Access {
            steps: 200,
            violation_rate: 0.12,
            ..Default::default()
        }
        .generate();
        for kind in ["stale_session", "sudo_grant", "grant_trail"] {
            assert!(
                gen.expected.iter().any(|e| e.constraint.as_str() == kind),
                "no {kind} injected at this seed"
            );
        }
        let reports = run_all(&gen);
        for exp in &gen.expected {
            assert!(
                reports.iter().any(|r| exp.found_in(r)),
                "missing expected {} violation at {}",
                exp.constraint,
                exp.time
            );
        }
    }

    #[test]
    fn honest_traffic_is_quiet() {
        let gen = Access {
            steps: 160,
            violation_rate: 0.0,
            ..Default::default()
        }
        .generate();
        assert!(gen.expected.is_empty());
        for r in run_all(&gen) {
            assert!(r.ok(), "spurious {} violation at {}", r.constraint, r.time);
        }
    }

    #[test]
    fn stale_session_fires_exactly_once_per_injection() {
        let gen = Access {
            steps: 200,
            violation_rate: 0.15,
            events_per_step: 2,
            sudo_rate: 0.0,
            grant_rate: 0.0,
            ..Default::default()
        }
        .generate();
        let stale = gen.constraints[0].clone();
        let mut checker = IncrementalChecker::new(stale, Arc::clone(&gen.catalog)).unwrap();
        let reports = checker.run(gen.transitions.clone()).unwrap();
        let fired: usize = reports.iter().map(|r| r.violation_count()).sum();
        let injected = gen
            .expected
            .iter()
            .filter(|e| e.constraint.as_str() == "stale_session")
            .count();
        assert_eq!(fired, injected, "one firing per injected stale session");
    }
}
