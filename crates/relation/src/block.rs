//! Column-major tuple blocks: the columnar twin of row [`Tuple`] storage.
//!
//! A [`TupleBlock`] holds a fixed-arity set of tuples as one `Vec<Value>`
//! per column, with rows kept in **sorted-unique** order — the same order
//! every output boundary (reports, checkpoints, `Display`) already uses.
//! Values are `Copy` and strings are dictionary-interned [`crate::Symbol`]s
//! underneath [`Value`], so a column is a flat machine-word vector that
//! vectorized join/projection kernels can stream through without chasing
//! per-row allocations.
//!
//! Conversions are lossless and order-preserving: building a block from any
//! tuple iterator sorts and deduplicates, and [`TupleBlock::to_tuples`]
//! yields exactly the sorted-unique row sequence back. That makes the block
//! representation invisible at every existing sorted boundary — anything
//! printed or persisted through a round trip stays byte-identical.

use std::fmt;

use crate::tuple::Tuple;
use crate::value::Value;

/// A column-major block of same-arity tuples in sorted-unique row order.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TupleBlock {
    /// Number of rows (every column has exactly this length).
    rows: usize,
    /// One flat vector per column.
    cols: Vec<Vec<Value>>,
}

impl TupleBlock {
    /// An empty block of the given arity.
    pub fn empty(arity: usize) -> TupleBlock {
        TupleBlock {
            rows: 0,
            cols: vec![Vec::new(); arity],
        }
    }

    /// Builds a block from tuples, sorting and deduplicating rows.
    ///
    /// # Panics
    /// Panics when tuples disagree on arity.
    pub fn from_tuples(tuples: impl IntoIterator<Item = Tuple>) -> TupleBlock {
        let mut rows: Vec<Tuple> = tuples.into_iter().collect();
        rows.sort_unstable();
        rows.dedup();
        Self::from_sorted_unique(&rows)
    }

    /// Builds a block from rows already in sorted-unique order (the order
    /// [`crate::Relation`] iterates in and `sorted_rows` boundaries emit).
    ///
    /// # Panics
    /// Panics when rows disagree on arity; debug-asserts sortedness.
    pub fn from_sorted_unique(rows: &[Tuple]) -> TupleBlock {
        debug_assert!(
            rows.windows(2).all(|w| w[0] < w[1]),
            "rows must be sorted and unique"
        );
        let arity = rows.first().map_or(0, Tuple::arity);
        let mut cols: Vec<Vec<Value>> =
            (0..arity).map(|_| Vec::with_capacity(rows.len())).collect();
        for t in rows {
            assert_eq!(t.arity(), arity, "mixed arity in TupleBlock");
            for (c, col) in cols.iter_mut().enumerate() {
                col.push(t[c]);
            }
        }
        TupleBlock {
            rows: rows.len(),
            cols,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the block has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// The flat value vector of column `c`.
    ///
    /// # Panics
    /// Panics when `c` is out of range.
    pub fn column(&self, c: usize) -> &[Value] {
        &self.cols[c]
    }

    /// Materializes row `i` back into a [`Tuple`].
    ///
    /// # Panics
    /// Panics when `i` is out of range.
    pub fn row(&self, i: usize) -> Tuple {
        assert!(i < self.rows, "row index out of range");
        self.cols.iter().map(|col| col[i]).collect()
    }

    /// Iterates rows in sorted order, materializing each as a [`Tuple`].
    pub fn iter(&self) -> impl Iterator<Item = Tuple> + '_ {
        (0..self.rows).map(|i| self.row(i))
    }

    /// All rows, in sorted-unique order.
    pub fn to_tuples(&self) -> Vec<Tuple> {
        self.iter().collect()
    }

    /// A new block keeping only the columns at `positions` (in that order),
    /// re-sorted and deduplicated — projection as a column gather instead
    /// of a per-row rebuild.
    ///
    /// # Panics
    /// Panics on out-of-range positions.
    pub fn project(&self, positions: &[usize]) -> TupleBlock {
        // Gather columns first (pure memcpy of flat vectors), then restore
        // the sorted-unique invariant over the narrower rows.
        let gathered: Vec<&[Value]> = positions.iter().map(|&p| self.column(p)).collect();
        let mut rows: Vec<Tuple> = (0..self.rows)
            .map(|i| gathered.iter().map(|col| col[i]).collect())
            .collect();
        rows.sort_unstable();
        rows.dedup();
        TupleBlock::from_sorted_unique(&rows)
    }

    /// A new block without column `c` — `project_away` as a column drop.
    ///
    /// # Panics
    /// Panics when `c` is out of range.
    pub fn drop_column(&self, c: usize) -> TupleBlock {
        assert!(c < self.arity(), "column index out of range");
        let keep: Vec<usize> = (0..self.arity()).filter(|&i| i != c).collect();
        self.project(&keep)
    }
}

impl FromIterator<Tuple> for TupleBlock {
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> TupleBlock {
        TupleBlock::from_tuples(iter)
    }
}

impl fmt::Display for TupleBlock {
    /// Renders as `{ (a, 1), (b, 2) }` — byte-identical to a
    /// [`crate::Relation`] holding the same tuples.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for i in 0..self.rows {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, " {}", self.row(i))?;
        }
        f.write_str(" }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Relation;
    use crate::schema::Schema;
    use crate::tuple;
    use crate::value::Sort;

    #[test]
    fn from_tuples_sorts_and_dedups() {
        let b = TupleBlock::from_tuples([tuple!["b", 2], tuple!["a", 1], tuple!["b", 2]]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.arity(), 2);
        assert_eq!(b.row(0), tuple!["a", 1]);
        assert_eq!(b.row(1), tuple!["b", 2]);
    }

    #[test]
    fn columns_are_flat_value_vectors() {
        let b = TupleBlock::from_tuples([tuple!["a", 1], tuple!["b", 2]]);
        assert_eq!(b.column(1), &[Value::Int(1), Value::Int(2)]);
        assert_eq!(b.column(0), &[Value::str("a"), Value::str("b")]);
    }

    #[test]
    fn round_trip_is_lossless_and_ordered() {
        let tuples = vec![tuple![3, "c"], tuple![1, "a"], tuple![2, "b"]];
        let b: TupleBlock = tuples.clone().into_iter().collect();
        let mut sorted = tuples;
        sorted.sort_unstable();
        assert_eq!(b.to_tuples(), sorted);
        assert_eq!(b.iter().collect::<Vec<_>>(), sorted);
    }

    #[test]
    fn display_is_byte_identical_to_relation() {
        let schema = Schema::of(&[("x", Sort::Str), ("n", Sort::Int)]);
        let rows = vec![tuple!["b", 2], tuple!["a", 1]];
        let rel = Relation::from_tuples(schema, rows.clone()).unwrap();
        let block = TupleBlock::from_tuples(rows);
        assert_eq!(block.to_string(), rel.to_string());
        assert_eq!(
            TupleBlock::empty(2).to_string(),
            Relation::new(Schema::of(&[("x", Sort::Str), ("n", Sort::Int)])).to_string()
        );
    }

    #[test]
    fn sorted_boundary_conversion_preserves_row_order() {
        // The block's row order is exactly what sorted_rows-style
        // boundaries print, so converting at the boundary is a no-op.
        let rows = vec![tuple![2, 20], tuple![1, 10], tuple![3, 30]];
        let block = TupleBlock::from_tuples(rows.clone());
        let mut sorted = rows;
        sorted.sort_unstable();
        let printed_rows: Vec<String> = sorted.iter().map(ToString::to_string).collect();
        let printed_block: Vec<String> = block.iter().map(|t| t.to_string()).collect();
        assert_eq!(printed_block, printed_rows);
    }

    #[test]
    fn project_gathers_reorders_and_dedups() {
        let b = TupleBlock::from_tuples([tuple![1, 10], tuple![2, 10], tuple![3, 30]]);
        let p = b.project(&[1]);
        assert_eq!(p.len(), 2, "deduplicated after dropping the key column");
        assert_eq!(p.column(0), &[Value::Int(10), Value::Int(30)]);
        let swapped = b.project(&[1, 0]);
        assert_eq!(swapped.row(0), tuple![10, 1]);
    }

    #[test]
    fn drop_column_matches_project_away() {
        let b = TupleBlock::from_tuples([tuple![1, 10, 100], tuple![2, 20, 200]]);
        assert_eq!(b.drop_column(1), b.project(&[0, 2]));
        assert_eq!(b.drop_column(1).arity(), 2);
    }

    #[test]
    fn empty_blocks() {
        let b = TupleBlock::empty(3);
        assert!(b.is_empty());
        assert_eq!(b.arity(), 3);
        assert_eq!(TupleBlock::from_tuples([]).len(), 0);
    }

    #[test]
    #[should_panic(expected = "mixed arity")]
    fn mixed_arity_rejected() {
        let _ = TupleBlock::from_tuples([tuple![1], tuple![1, 2]]);
    }
}
