//! Relational algebra over [`Relation`]s.
//!
//! These are the classic set-semantics operators: selection, projection,
//! rename, union, intersection, difference, cartesian product, equi-join,
//! semijoin and antijoin. Every operator validates schemas up front and
//! produces a fresh relation; inputs are never mutated.
//!
//! Joins are hash joins: the smaller side is loaded into a [`HashMap`] keyed
//! by the join columns, the larger side probes it. With set semantics and
//! checked sorts this is `O(|L| + |R| + |out|)` expected time.

use std::collections::HashMap;

use crate::error::RelationError;
use crate::relation::Relation;
use crate::tuple::Tuple;
use crate::value::Value;

/// σ: tuples of `rel` satisfying `pred`.
pub fn select(rel: &Relation, mut pred: impl FnMut(&Tuple) -> bool) -> Relation {
    let mut out = Relation::new(rel.schema().clone());
    for t in rel.iter() {
        if pred(t) {
            out.insert(t.clone()).expect("selection preserves schema");
        }
    }
    out
}

/// σ with an equality-to-constant predicate on one column.
pub fn select_eq(rel: &Relation, column: usize, value: Value) -> Result<Relation, RelationError> {
    let arity = rel.schema().arity();
    if column >= arity {
        return Err(RelationError::NoSuchPosition {
            position: column,
            arity,
        });
    }
    Ok(select(rel, |t| t[column] == value))
}

/// π: projection onto `positions` (order matters, duplicates rejected by
/// the schema layer).
pub fn project(rel: &Relation, positions: &[usize]) -> Result<Relation, RelationError> {
    let schema = rel.schema().project(positions)?;
    let mut out = Relation::new(schema);
    for t in rel.iter() {
        out.insert(t.project(positions))
            .expect("projection preserves schema");
    }
    Ok(out)
}

/// ρ: rename one attribute.
pub fn rename(
    rel: &Relation,
    position: usize,
    name: crate::Symbol,
) -> Result<Relation, RelationError> {
    let schema = rel.schema().rename(position, name)?;
    let mut out = Relation::new(schema);
    for t in rel.iter() {
        out.insert(t.clone()).expect("rename preserves tuples");
    }
    Ok(out)
}

fn require_compatible(a: &Relation, b: &Relation) -> Result<(), RelationError> {
    if a.schema().union_compatible(b.schema()) {
        Ok(())
    } else {
        Err(RelationError::NotUnionCompatible)
    }
}

/// ∪: union of union-compatible relations (left schema wins for names).
pub fn union(a: &Relation, b: &Relation) -> Result<Relation, RelationError> {
    require_compatible(a, b)?;
    let mut out = a.clone();
    for t in b.iter() {
        out.insert(t.clone()).expect("compatible schemas");
    }
    Ok(out)
}

/// ∩: intersection of union-compatible relations.
pub fn intersection(a: &Relation, b: &Relation) -> Result<Relation, RelationError> {
    require_compatible(a, b)?;
    Ok(select(a, |t| b.contains(t)))
}

/// ∖: difference `a − b` of union-compatible relations.
pub fn difference(a: &Relation, b: &Relation) -> Result<Relation, RelationError> {
    require_compatible(a, b)?;
    Ok(select(a, |t| !b.contains(t)))
}

/// ×: cartesian product. Output schema is `a.schema ++ b.schema` (name
/// clashes are rejected; rename first).
pub fn product(a: &Relation, b: &Relation) -> Result<Relation, RelationError> {
    let schema = a.schema().concat(b.schema())?;
    let mut out = Relation::new(schema);
    for ta in a.iter() {
        for tb in b.iter() {
            out.insert(ta.concat(tb)).expect("product preserves sorts");
        }
    }
    Ok(out)
}

/// Validates an equi-join column pairing and returns it as `(left, right)`
/// position vectors.
fn check_join_on(a: &Relation, b: &Relation, on: &[(usize, usize)]) -> Result<(), RelationError> {
    for &(la, rb) in on {
        let sa = a
            .schema()
            .sort_at(la)
            .ok_or(RelationError::NoSuchPosition {
                position: la,
                arity: a.schema().arity(),
            })?;
        let sb = b
            .schema()
            .sort_at(rb)
            .ok_or(RelationError::NoSuchPosition {
                position: rb,
                arity: b.schema().arity(),
            })?;
        if sa != sb {
            return Err(RelationError::JoinSortMismatch {
                left: la,
                right: rb,
            });
        }
    }
    Ok(())
}

fn key_of(t: &Tuple, cols: impl Iterator<Item = usize>) -> Vec<Value> {
    cols.map(|c| t[c]).collect()
}

/// Builds a probe table from `rel` keyed by `cols`.
fn build_hash<'r>(rel: &'r Relation, cols: &[usize]) -> HashMap<Vec<Value>, Vec<&'r Tuple>> {
    let mut map: HashMap<Vec<Value>, Vec<&Tuple>> = HashMap::new();
    for t in rel.iter() {
        map.entry(key_of(t, cols.iter().copied()))
            .or_default()
            .push(t);
    }
    map
}

/// ⋈: equi-join on the column pairs `on`. Output schema is
/// `a.schema ++ b.schema` with the joined right columns *retained* (rename
/// beforehand if names clash).
pub fn join(a: &Relation, b: &Relation, on: &[(usize, usize)]) -> Result<Relation, RelationError> {
    check_join_on(a, b, on)?;
    let schema = a.schema().concat(b.schema())?;
    let rcols: Vec<usize> = on.iter().map(|&(_, r)| r).collect();
    let lcols: Vec<usize> = on.iter().map(|&(l, _)| l).collect();
    let table = build_hash(b, &rcols);
    let mut out = Relation::new(schema);
    for ta in a.iter() {
        if let Some(matches) = table.get(&key_of(ta, lcols.iter().copied())) {
            for tb in matches {
                out.insert(ta.concat(tb)).expect("join preserves sorts");
            }
        }
    }
    Ok(out)
}

/// ⋉: semijoin — tuples of `a` with at least one `on`-match in `b`.
pub fn semijoin(
    a: &Relation,
    b: &Relation,
    on: &[(usize, usize)],
) -> Result<Relation, RelationError> {
    check_join_on(a, b, on)?;
    let rcols: Vec<usize> = on.iter().map(|&(_, r)| r).collect();
    let lcols: Vec<usize> = on.iter().map(|&(l, _)| l).collect();
    let table = build_hash(b, &rcols);
    Ok(select(a, |t| {
        table.contains_key(&key_of(t, lcols.iter().copied()))
    }))
}

/// ▷: antijoin — tuples of `a` with *no* `on`-match in `b`.
pub fn antijoin(
    a: &Relation,
    b: &Relation,
    on: &[(usize, usize)],
) -> Result<Relation, RelationError> {
    check_join_on(a, b, on)?;
    let rcols: Vec<usize> = on.iter().map(|&(_, r)| r).collect();
    let lcols: Vec<usize> = on.iter().map(|&(l, _)| l).collect();
    let table = build_hash(b, &rcols);
    Ok(select(a, |t| {
        !table.contains_key(&key_of(t, lcols.iter().copied()))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::tuple;
    use crate::value::Sort;
    use crate::Symbol;

    fn rel_ab(rows: &[(&str, i64)]) -> Relation {
        Relation::from_tuples(
            Schema::of(&[("a", Sort::Str), ("b", Sort::Int)]),
            rows.iter().map(|&(a, b)| tuple![a, b]),
        )
        .unwrap()
    }

    fn rel_cd(rows: &[(i64, &str)]) -> Relation {
        Relation::from_tuples(
            Schema::of(&[("c", Sort::Int), ("d", Sort::Str)]),
            rows.iter().map(|&(c, d)| tuple![c, d]),
        )
        .unwrap()
    }

    #[test]
    fn select_filters() {
        let r = rel_ab(&[("x", 1), ("y", 2)]);
        let s = select(&r, |t| t[1] == Value::Int(2));
        assert_eq!(s.len(), 1);
        assert!(s.contains(&tuple!["y", 2]));
    }

    #[test]
    fn select_eq_bounds_checked() {
        let r = rel_ab(&[("x", 1)]);
        assert!(select_eq(&r, 5, Value::Int(1)).is_err());
        assert_eq!(select_eq(&r, 1, Value::Int(1)).unwrap().len(), 1);
    }

    #[test]
    fn project_deduplicates() {
        let r = rel_ab(&[("x", 1), ("y", 1)]);
        let p = project(&r, &[1]).unwrap();
        assert_eq!(p.len(), 1, "set semantics collapse duplicates");
    }

    #[test]
    fn project_to_empty_schema_yields_unit_or_zero() {
        let r = rel_ab(&[("x", 1)]);
        let p = project(&r, &[]).unwrap();
        assert_eq!(p.len(), 1, "nonempty input projects to the unit tuple");
        let e = project(&rel_ab(&[]), &[]).unwrap();
        assert!(e.is_empty());
    }

    #[test]
    fn union_difference_intersection() {
        let a = rel_ab(&[("x", 1), ("y", 2)]);
        let b = rel_ab(&[("y", 2), ("z", 3)]);
        assert_eq!(union(&a, &b).unwrap().len(), 3);
        assert_eq!(intersection(&a, &b).unwrap().len(), 1);
        let d = difference(&a, &b).unwrap();
        assert_eq!(d.len(), 1);
        assert!(d.contains(&tuple!["x", 1]));
    }

    #[test]
    fn set_ops_reject_incompatible() {
        let a = rel_ab(&[]);
        let c = rel_cd(&[]);
        assert!(union(&a, &c).is_err());
        assert!(intersection(&a, &c).is_err());
        assert!(difference(&a, &c).is_err());
    }

    #[test]
    fn product_sizes_multiply() {
        let a = rel_ab(&[("x", 1), ("y", 2)]);
        let c = rel_cd(&[(7, "p"), (8, "q"), (9, "r")]);
        let p = product(&a, &c).unwrap();
        assert_eq!(p.len(), 6);
        assert_eq!(p.schema().arity(), 4);
    }

    #[test]
    fn product_rejects_name_clash() {
        let a = rel_ab(&[]);
        assert!(product(&a, &a).is_err());
    }

    #[test]
    fn equi_join_matches() {
        let a = rel_ab(&[("x", 1), ("y", 2), ("z", 2)]);
        let c = rel_cd(&[(2, "p"), (3, "q")]);
        let j = join(&a, &c, &[(1, 0)]).unwrap();
        assert_eq!(j.len(), 2);
        assert!(j.contains(&tuple!["y", 2, 2, "p"]));
        assert!(j.contains(&tuple!["z", 2, 2, "p"]));
    }

    #[test]
    fn join_rejects_sort_mismatch() {
        let a = rel_ab(&[]);
        let c = rel_cd(&[]);
        assert!(matches!(
            join(&a, &c, &[(0, 0)]),
            Err(RelationError::JoinSortMismatch { .. })
        ));
    }

    #[test]
    fn join_on_empty_pairs_is_product() {
        let a = rel_ab(&[("x", 1)]);
        let c = rel_cd(&[(2, "p"), (3, "q")]);
        assert_eq!(join(&a, &c, &[]).unwrap().len(), 2);
    }

    #[test]
    fn semijoin_and_antijoin_partition() {
        let a = rel_ab(&[("x", 1), ("y", 2)]);
        let c = rel_cd(&[(2, "p")]);
        let s = semijoin(&a, &c, &[(1, 0)]).unwrap();
        let n = antijoin(&a, &c, &[(1, 0)]).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(n.len(), 1);
        assert!(s.contains(&tuple!["y", 2]));
        assert!(n.contains(&tuple!["x", 1]));
        assert_eq!(union(&s, &n).unwrap(), a);
    }

    #[test]
    fn rename_changes_only_name() {
        let a = rel_ab(&[("x", 1)]);
        let r = rename(&a, 0, Symbol::intern("a2")).unwrap();
        assert_eq!(r.schema().attributes()[0].name.as_str(), "a2");
        assert!(r.contains(&tuple!["x", 1]));
    }
}
