//! Tuples: fixed-arity sequences of values.

use std::fmt;
use std::ops::Index;

use smallvec::SmallVec;

use crate::value::Value;

/// Tuples up to this arity are stored inline, with no heap allocation.
const INLINE_ARITY: usize = 4;

/// A database tuple.
///
/// Tuples are immutable once constructed; the storage layer clones them
/// freely ([`Value`] is `Copy`, so a clone of a small tuple is a plain
/// memcpy). Tuples of arity ≤ 4 — the overwhelming majority in practice —
/// live entirely inline; wider tuples spill to a boxed slice. The inline
/// representation never leaks into semantics: equality, ordering and
/// hashing are exactly those of the underlying value slice.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Tuple(SmallVec<Value, INLINE_ARITY>);

impl Tuple {
    /// Builds a tuple from values.
    pub fn new(values: impl IntoIterator<Item = Value>) -> Tuple {
        Tuple(values.into_iter().collect())
    }

    /// The empty tuple (arity 0).
    pub fn empty() -> Tuple {
        Tuple(SmallVec::new())
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Field accessor; `None` when out of range.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.0.get(i)
    }

    /// All fields, in order.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// A new tuple containing the fields at `positions`, in that order.
    ///
    /// # Panics
    /// Panics if any position is out of range (schema checking happens at
    /// the [`crate::algebra`] layer; by the time a projection executes the
    /// positions are known valid).
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple(positions.iter().map(|&p| self.0[p]).collect())
    }

    /// Concatenation of `self` and `other`.
    pub fn concat(&self, other: &Tuple) -> Tuple {
        Tuple(self.0.iter().chain(other.0.iter()).copied().collect())
    }
}

impl Index<usize> for Tuple {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        &self.0[i]
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Tuple {
        Tuple(iter.into_iter().collect())
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str(")")
    }
}

/// Builds a tuple from a heterogeneous list of value-convertible expressions.
///
/// ```
/// use rtic_relation::{tuple, Tuple, Value};
/// let t = tuple![1, "flight", true];
/// assert_eq!(t.arity(), 3);
/// assert_eq!(t[0], Value::Int(1));
/// ```
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::new([$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tuple::new([Value::Int(1), Value::str("a")]);
        assert_eq!(t.arity(), 2);
        assert_eq!(t[0], Value::Int(1));
        assert_eq!(t.get(1), Some(&Value::str("a")));
        assert_eq!(t.get(2), None);
    }

    #[test]
    fn empty_tuple() {
        let t = Tuple::empty();
        assert_eq!(t.arity(), 0);
        assert_eq!(t.to_string(), "()");
    }

    #[test]
    fn projection_reorders_and_duplicates() {
        let t = tuple![10, 20, 30];
        assert_eq!(t.project(&[2, 0, 0]), tuple![30, 10, 10]);
    }

    #[test]
    fn concat() {
        assert_eq!(tuple![1].concat(&tuple!["x", 2]), tuple![1, "x", 2]);
    }

    #[test]
    fn equality_is_structural() {
        assert_eq!(tuple![1, "a"], tuple![1, "a"]);
        assert_ne!(tuple![1, "a"], tuple!["a", 1]);
    }

    #[test]
    fn display() {
        assert_eq!(tuple![1, "jfk", false].to_string(), "(1, jfk, false)");
    }

    #[test]
    fn ord_is_lexicographic_over_fields() {
        assert!(tuple![1, 2] < tuple![1, 3]);
        assert!(tuple![1] < tuple![1, 0], "shorter prefix sorts first");
    }

    #[test]
    fn small_tuples_are_stored_inline() {
        assert!(tuple![1, 2, 3, 4].0.is_inline());
        let wide = tuple![1, 2, 3, 4, 5];
        assert!(!wide.0.is_inline());
        assert_eq!(wide.arity(), 5);
        // Representation must not affect equality across the boundary.
        assert_eq!(wide.project(&[0, 1]), tuple![1, 2]);
    }
}
