//! Databases: catalogs of named relations, plus transactional updates.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

use crate::error::RelationError;
use crate::relation::Relation;
use crate::schema::Schema;
use crate::symbol::Symbol;
use crate::tuple::Tuple;
use crate::value::Value;

/// A database catalog: the fixed set of relation names and their schemas.
///
/// Catalogs are immutable once built and shared (`Arc`) by every state of a
/// history, so cloning a [`Database`] clones tuples but not schemas.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Catalog {
    schemas: BTreeMap<Symbol, Schema>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Declares a relation; rejects duplicates.
    pub fn declare(
        &mut self,
        name: impl Into<Symbol>,
        schema: Schema,
    ) -> Result<(), RelationError> {
        let name = name.into();
        if self.schemas.contains_key(&name) {
            return Err(RelationError::DuplicateRelation { name });
        }
        self.schemas.insert(name, schema);
        Ok(())
    }

    /// Builder-style [`Catalog::declare`].
    pub fn with(
        mut self,
        name: impl Into<Symbol>,
        schema: Schema,
    ) -> Result<Catalog, RelationError> {
        self.declare(name, schema)?;
        Ok(self)
    }

    /// Merges `other`'s declarations into `self`. A relation declared on
    /// both sides is fine when the schemas agree exactly; a redeclaration
    /// with a different schema is a [`RelationError::DuplicateRelation`].
    pub fn try_merge(&mut self, other: &Catalog) -> Result<(), RelationError> {
        for (name, schema) in &other.schemas {
            match self.schemas.get(name) {
                Some(existing) if existing == schema => {}
                Some(_) => return Err(RelationError::DuplicateRelation { name: *name }),
                None => {
                    self.schemas.insert(*name, schema.clone());
                }
            }
        }
        Ok(())
    }

    /// The schema of `name`, if declared.
    pub fn schema_of(&self, name: Symbol) -> Option<&Schema> {
        self.schemas.get(&name)
    }

    /// All declared relation names, in deterministic order.
    pub fn names(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.schemas.keys().copied()
    }

    /// Number of declared relations.
    pub fn len(&self) -> usize {
        self.schemas.len()
    }

    /// Whether no relations are declared.
    pub fn is_empty(&self) -> bool {
        self.schemas.is_empty()
    }
}

/// The net tuple-level change the most recent [`Database::apply`] made to
/// one relation: events in application order, `true` for an insertion that
/// actually added the tuple, `false` for a deletion that actually removed
/// it. No-op operations (deleting an absent tuple, inserting a present one)
/// produce no event, so replaying the events against the previous contents
/// reproduces the current contents exactly.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct RelDelta {
    /// The relation's [`Database::rel_gen`] after this change.
    pub generation: u64,
    /// Tuple events in application order: `(tuple, added)`.
    pub events: Vec<(Tuple, bool)>,
}

/// A database state: one instance per catalogued relation.
#[derive(Debug)]
pub struct Database {
    catalog: Arc<Catalog>,
    relations: BTreeMap<Symbol, Relation>,
    id: u64,
    generation: u64,
    /// Per-relation generation counters, bumped only when a relation's
    /// contents actually change (unlike the conservative global
    /// `generation`). Missing entries mean generation 0.
    rel_gens: BTreeMap<Symbol, u64>,
    /// The most recent actual delta per relation, for incremental cache
    /// refresh. Cleared for a relation whenever its contents change through
    /// a path that cannot describe the change (`relation_mut`).
    rel_deltas: BTreeMap<Symbol, RelDelta>,
}

fn fresh_db_id() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

impl Clone for Database {
    fn clone(&self) -> Database {
        // A clone can be mutated independently of the original, so it gets
        // its own identity: two databases never share a cache stamp unless
        // one literally is the other at an earlier, unmutated generation.
        Database {
            catalog: Arc::clone(&self.catalog),
            relations: self.relations.clone(),
            id: fresh_db_id(),
            generation: 0,
            rel_gens: BTreeMap::new(),
            rel_deltas: BTreeMap::new(),
        }
    }
}

impl PartialEq for Database {
    fn eq(&self, other: &Database) -> bool {
        self.catalog == other.catalog && self.relations == other.relations
    }
}

impl Eq for Database {}

impl Database {
    /// An empty database over `catalog`.
    pub fn new(catalog: Arc<Catalog>) -> Database {
        let relations = catalog
            .names()
            .map(|n| {
                let schema = catalog
                    .schema_of(n)
                    .expect("name comes from catalog")
                    .clone();
                (n, Relation::new(schema))
            })
            .collect();
        Database {
            catalog,
            relations,
            id: fresh_db_id(),
            generation: 0,
            rel_gens: BTreeMap::new(),
            rel_deltas: BTreeMap::new(),
        }
    }

    /// An identity for this exact contents: the instance id plus a
    /// generation counter bumped on every mutation. Equal stamps imply
    /// equal contents (each instance — including every clone — has a
    /// unique id, and its generation only moves forward), so evaluation
    /// caches can key on the stamp instead of hashing tuples.
    pub fn cache_stamp(&self) -> (u64, u64) {
        (self.id, self.generation)
    }

    /// The unique identity of this instance (the first component of
    /// [`Database::cache_stamp`]).
    pub fn instance_id(&self) -> u64 {
        self.id
    }

    /// Per-relation generation: bumped only when `name`'s contents actually
    /// change (no-op inserts/deletes leave it alone), unlike the global
    /// stamp which conservatively advances on every non-empty update.
    /// Unknown relations report generation 0. Together with
    /// [`Database::instance_id`] this gives finer-grained cache keys: a
    /// cached result that reads only relations whose generations are
    /// unchanged is still valid.
    pub fn rel_gen(&self, name: Symbol) -> u64 {
        self.rel_gens.get(&name).copied().unwrap_or(0)
    }

    /// The actual tuple delta of the most recent [`Database::apply`] that
    /// changed `name`, if still known. `delta.generation == rel_gen(name)`
    /// and replaying `delta.events` against the relation's contents at
    /// generation `rel_gen(name) - 1` reproduces its current contents.
    pub fn rel_delta(&self, name: Symbol) -> Option<&RelDelta> {
        self.rel_deltas.get(&name)
    }

    /// The shared catalog.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// The instance of `name`.
    pub fn relation(&self, name: Symbol) -> Result<&Relation, RelationError> {
        self.relations
            .get(&name)
            .ok_or(RelationError::UnknownRelation { name })
    }

    /// Mutable instance of `name`. Conservatively advances the cache stamp:
    /// handing out `&mut` counts as a mutation.
    pub fn relation_mut(&mut self, name: Symbol) -> Result<&mut Relation, RelationError> {
        self.generation += 1;
        // Whatever the caller does through `&mut` is invisible to us, so the
        // per-relation generation moves and any recorded delta is dropped.
        *self.rel_gens.entry(name).or_insert(0) += 1;
        self.rel_deltas.remove(&name);
        self.relations
            .get_mut(&name)
            .ok_or(RelationError::UnknownRelation { name })
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// The active domain: every value occurring in any tuple of any
    /// relation, in deterministic order.
    pub fn active_domain(&self) -> BTreeSet<Value> {
        let mut dom = BTreeSet::new();
        for rel in self.relations.values() {
            for t in rel.iter() {
                dom.extend(t.values().iter().copied());
            }
        }
        dom
    }

    /// Applies `update` transactionally: every referenced relation must
    /// exist and every inserted tuple must conform before anything changes.
    ///
    /// Deletions are applied before insertions, so a tuple both deleted and
    /// inserted in the same update ends up present. Deleting an absent tuple
    /// or inserting a present one is a no-op (set semantics).
    pub fn apply(&mut self, update: &Update) -> Result<(), RelationError> {
        // Validate first — no partial application on error.
        for (name, tuples) in &update.inserts {
            let rel = self.relation(*name)?;
            for t in tuples {
                rel.schema().check(t)?;
            }
        }
        for name in update.deletes.keys() {
            self.relation(*name)?;
        }
        if !update.is_empty() {
            self.generation += 1;
        }
        // Record, per relation, the tuple events that actually changed
        // contents (set semantics: no-op deletes/inserts record nothing).
        let mut events: BTreeMap<Symbol, Vec<(Tuple, bool)>> = BTreeMap::new();
        for (name, tuples) in &update.deletes {
            let rel = self.relations.get_mut(name).expect("validated above");
            for t in tuples {
                if rel.remove(t) {
                    events.entry(*name).or_default().push((t.clone(), false));
                }
            }
        }
        for (name, tuples) in &update.inserts {
            let rel = self.relations.get_mut(name).expect("validated above");
            for t in tuples {
                if rel.insert(t.clone()).expect("validated above") {
                    events.entry(*name).or_default().push((t.clone(), true));
                }
            }
        }
        for (name, events) in events {
            let generation = self.rel_gens.entry(name).or_insert(0);
            *generation += 1;
            self.rel_deltas.insert(
                name,
                RelDelta {
                    generation: *generation,
                    events,
                },
            );
        }
        Ok(())
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, rel) in &self.relations {
            writeln!(f, "{name}{} = {rel}", rel.schema())?;
        }
        Ok(())
    }
}

/// A transactional update: sets of tuples to delete and insert, per relation.
///
/// This is the unit in which a history advances: one update plus one
/// timestamp produces the next database state.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Update {
    inserts: BTreeMap<Symbol, BTreeSet<Tuple>>,
    deletes: BTreeMap<Symbol, BTreeSet<Tuple>>,
}

impl Update {
    /// An empty update (a pure clock tick).
    pub fn new() -> Update {
        Update::default()
    }

    /// Whether the update changes nothing.
    pub fn is_empty(&self) -> bool {
        self.inserts.values().all(BTreeSet::is_empty)
            && self.deletes.values().all(BTreeSet::is_empty)
    }

    /// Records an insertion.
    pub fn insert(&mut self, relation: impl Into<Symbol>, tuple: Tuple) -> &mut Update {
        self.inserts
            .entry(relation.into())
            .or_default()
            .insert(tuple);
        self
    }

    /// Records a deletion.
    pub fn delete(&mut self, relation: impl Into<Symbol>, tuple: Tuple) -> &mut Update {
        self.deletes
            .entry(relation.into())
            .or_default()
            .insert(tuple);
        self
    }

    /// Builder-style [`Update::insert`].
    pub fn with_insert(mut self, relation: impl Into<Symbol>, tuple: Tuple) -> Update {
        self.insert(relation, tuple);
        self
    }

    /// Builder-style [`Update::delete`].
    pub fn with_delete(mut self, relation: impl Into<Symbol>, tuple: Tuple) -> Update {
        self.delete(relation, tuple);
        self
    }

    /// Insertions, per relation, in deterministic order.
    pub fn inserts(&self) -> impl Iterator<Item = (Symbol, &BTreeSet<Tuple>)> {
        self.inserts.iter().map(|(n, s)| (*n, s))
    }

    /// Deletions, per relation, in deterministic order.
    pub fn deletes(&self) -> impl Iterator<Item = (Symbol, &BTreeSet<Tuple>)> {
        self.deletes.iter().map(|(n, s)| (*n, s))
    }

    /// Total number of tuple insertions and deletions recorded.
    pub fn len(&self) -> usize {
        self.inserts.values().map(BTreeSet::len).sum::<usize>()
            + self.deletes.values().map(BTreeSet::len).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;
    use crate::value::Sort;

    fn catalog() -> Arc<Catalog> {
        Arc::new(
            Catalog::new()
                .with("r", Schema::of(&[("x", Sort::Str)]))
                .unwrap()
                .with("s", Schema::of(&[("n", Sort::Int), ("x", Sort::Str)]))
                .unwrap(),
        )
    }

    #[test]
    fn catalog_rejects_duplicates() {
        let mut c = Catalog::new();
        c.declare("r", Schema::empty()).unwrap();
        assert!(matches!(
            c.declare("r", Schema::empty()),
            Err(RelationError::DuplicateRelation { .. })
        ));
    }

    #[test]
    fn new_database_has_all_empty_relations() {
        let db = Database::new(catalog());
        assert!(db.relation(Symbol::intern("r")).unwrap().is_empty());
        assert!(db.relation(Symbol::intern("s")).unwrap().is_empty());
        assert!(db.relation(Symbol::intern("zzz")).is_err());
    }

    #[test]
    fn apply_inserts_and_deletes() {
        let mut db = Database::new(catalog());
        db.apply(
            &Update::new()
                .with_insert("r", tuple!["a"])
                .with_insert("r", tuple!["b"]),
        )
        .unwrap();
        assert_eq!(db.relation(Symbol::intern("r")).unwrap().len(), 2);
        db.apply(&Update::new().with_delete("r", tuple!["a"]))
            .unwrap();
        assert_eq!(db.relation(Symbol::intern("r")).unwrap().len(), 1);
    }

    #[test]
    fn delete_then_insert_in_same_update_keeps_tuple() {
        let mut db = Database::new(catalog());
        db.apply(&Update::new().with_insert("r", tuple!["a"]))
            .unwrap();
        db.apply(
            &Update::new()
                .with_delete("r", tuple!["a"])
                .with_insert("r", tuple!["a"]),
        )
        .unwrap();
        assert!(db
            .relation(Symbol::intern("r"))
            .unwrap()
            .contains(&tuple!["a"]));
    }

    #[test]
    fn apply_is_atomic_on_error() {
        let mut db = Database::new(catalog());
        let bad = Update::new()
            .with_insert("r", tuple!["ok"])
            .with_insert("s", tuple!["wrong-sort"]);
        assert!(db.apply(&bad).is_err());
        assert!(
            db.relation(Symbol::intern("r")).unwrap().is_empty(),
            "nothing applied"
        );
    }

    #[test]
    fn apply_rejects_unknown_relation() {
        let mut db = Database::new(catalog());
        assert!(db
            .apply(&Update::new().with_insert("nope", tuple!["a"]))
            .is_err());
        assert!(db
            .apply(&Update::new().with_delete("nope", tuple!["a"]))
            .is_err());
    }

    #[test]
    fn active_domain_collects_all_values() {
        let mut db = Database::new(catalog());
        db.apply(
            &Update::new()
                .with_insert("r", tuple!["a"])
                .with_insert("s", tuple![3, "b"]),
        )
        .unwrap();
        let dom = db.active_domain();
        assert!(dom.contains(&Value::str("a")));
        assert!(dom.contains(&Value::str("b")));
        assert!(dom.contains(&Value::Int(3)));
        assert_eq!(dom.len(), 3);
    }

    #[test]
    fn update_len_and_is_empty() {
        let u = Update::new();
        assert!(u.is_empty());
        let u = u
            .with_insert("r", tuple!["a"])
            .with_delete("r", tuple!["b"]);
        assert!(!u.is_empty());
        assert_eq!(u.len(), 2);
    }

    #[test]
    fn rel_gen_moves_only_on_actual_change() {
        let mut db = Database::new(catalog());
        let r = Symbol::intern("r");
        let s = Symbol::intern("s");
        assert_eq!(db.rel_gen(r), 0);

        db.apply(&Update::new().with_insert("r", tuple!["a"]))
            .unwrap();
        assert_eq!(db.rel_gen(r), 1);
        assert_eq!(db.rel_gen(s), 0, "untouched relation keeps its stamp");

        // Re-inserting a present tuple is a set-semantics no-op: the global
        // stamp conservatively advances, the per-relation one does not.
        let before = db.cache_stamp();
        db.apply(&Update::new().with_insert("r", tuple!["a"]))
            .unwrap();
        assert_ne!(db.cache_stamp(), before);
        assert_eq!(db.rel_gen(r), 1);

        db.apply(&Update::new().with_delete("r", tuple!["missing"]))
            .unwrap();
        assert_eq!(db.rel_gen(r), 1, "deleting an absent tuple is a no-op");
    }

    #[test]
    fn rel_delta_replays_to_current_contents() {
        let mut db = Database::new(catalog());
        let r = Symbol::intern("r");
        db.apply(&Update::new().with_insert("r", tuple!["a"]))
            .unwrap();
        db.apply(
            &Update::new()
                .with_delete("r", tuple!["a"])
                .with_insert("r", tuple!["a"])
                .with_insert("r", tuple!["b"]),
        )
        .unwrap();
        let delta = db.rel_delta(r).unwrap();
        assert_eq!(delta.generation, db.rel_gen(r));
        // Replay events against the prior contents {a}.
        let mut replay: BTreeSet<Tuple> = [tuple!["a"]].into_iter().collect();
        for (t, added) in &delta.events {
            if *added {
                replay.insert(t.clone());
            } else {
                replay.remove(t);
            }
        }
        let now: BTreeSet<Tuple> = db.relation(r).unwrap().iter().cloned().collect();
        assert_eq!(replay, now);
    }

    #[test]
    fn relation_mut_bumps_rel_gen_and_drops_delta() {
        let mut db = Database::new(catalog());
        let r = Symbol::intern("r");
        db.apply(&Update::new().with_insert("r", tuple!["a"]))
            .unwrap();
        assert!(db.rel_delta(r).is_some());
        let g = db.rel_gen(r);
        db.relation_mut(r).unwrap();
        assert_eq!(db.rel_gen(r), g + 1);
        assert!(db.rel_delta(r).is_none(), "opaque mutation drops the delta");
    }

    #[test]
    fn clone_resets_per_relation_stamps() {
        let mut db = Database::new(catalog());
        db.apply(&Update::new().with_insert("r", tuple!["a"]))
            .unwrap();
        let db2 = db.clone();
        assert_ne!(db2.instance_id(), db.instance_id());
        assert_eq!(db2.rel_gen(Symbol::intern("r")), 0);
        assert!(db2.rel_delta(Symbol::intern("r")).is_none());
    }

    #[test]
    fn states_share_catalog() {
        let db = Database::new(catalog());
        let db2 = db.clone();
        assert!(Arc::ptr_eq(db.catalog(), db2.catalog()));
    }

    #[test]
    fn try_merge_unions_and_tolerates_identical_redeclarations() {
        let mut a = Catalog::new()
            .with("r", Schema::of(&[("x", Sort::Str)]))
            .unwrap();
        let b = Catalog::new()
            .with("r", Schema::of(&[("x", Sort::Str)]))
            .unwrap()
            .with("s", Schema::of(&[("n", Sort::Int)]))
            .unwrap();
        a.try_merge(&b).unwrap();
        assert_eq!(a.len(), 2);
        assert!(a.schema_of("s".into()).is_some());
    }

    #[test]
    fn try_merge_rejects_conflicting_schemas() {
        let mut a = Catalog::new()
            .with("r", Schema::of(&[("x", Sort::Str)]))
            .unwrap();
        let b = Catalog::new()
            .with("r", Schema::of(&[("x", Sort::Int)]))
            .unwrap();
        let err = a.try_merge(&b).unwrap_err();
        assert!(matches!(err, RelationError::DuplicateRelation { .. }));
    }
}
