//! Databases: catalogs of named relations, plus transactional updates.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

use crate::error::RelationError;
use crate::relation::Relation;
use crate::schema::Schema;
use crate::symbol::Symbol;
use crate::tuple::Tuple;
use crate::value::Value;

/// A database catalog: the fixed set of relation names and their schemas.
///
/// Catalogs are immutable once built and shared (`Arc`) by every state of a
/// history, so cloning a [`Database`] clones tuples but not schemas.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Catalog {
    schemas: BTreeMap<Symbol, Schema>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Declares a relation; rejects duplicates.
    pub fn declare(
        &mut self,
        name: impl Into<Symbol>,
        schema: Schema,
    ) -> Result<(), RelationError> {
        let name = name.into();
        if self.schemas.contains_key(&name) {
            return Err(RelationError::DuplicateRelation { name });
        }
        self.schemas.insert(name, schema);
        Ok(())
    }

    /// Builder-style [`Catalog::declare`].
    pub fn with(
        mut self,
        name: impl Into<Symbol>,
        schema: Schema,
    ) -> Result<Catalog, RelationError> {
        self.declare(name, schema)?;
        Ok(self)
    }

    /// Merges `other`'s declarations into `self`. A relation declared on
    /// both sides is fine when the schemas agree exactly; a redeclaration
    /// with a different schema is a [`RelationError::DuplicateRelation`].
    pub fn try_merge(&mut self, other: &Catalog) -> Result<(), RelationError> {
        for (name, schema) in &other.schemas {
            match self.schemas.get(name) {
                Some(existing) if existing == schema => {}
                Some(_) => return Err(RelationError::DuplicateRelation { name: *name }),
                None => {
                    self.schemas.insert(*name, schema.clone());
                }
            }
        }
        Ok(())
    }

    /// The schema of `name`, if declared.
    pub fn schema_of(&self, name: Symbol) -> Option<&Schema> {
        self.schemas.get(&name)
    }

    /// All declared relation names, in deterministic order.
    pub fn names(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.schemas.keys().copied()
    }

    /// Number of declared relations.
    pub fn len(&self) -> usize {
        self.schemas.len()
    }

    /// Whether no relations are declared.
    pub fn is_empty(&self) -> bool {
        self.schemas.is_empty()
    }
}

/// A database state: one instance per catalogued relation.
#[derive(Debug)]
pub struct Database {
    catalog: Arc<Catalog>,
    relations: BTreeMap<Symbol, Relation>,
    id: u64,
    generation: u64,
}

fn fresh_db_id() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

impl Clone for Database {
    fn clone(&self) -> Database {
        // A clone can be mutated independently of the original, so it gets
        // its own identity: two databases never share a cache stamp unless
        // one literally is the other at an earlier, unmutated generation.
        Database {
            catalog: Arc::clone(&self.catalog),
            relations: self.relations.clone(),
            id: fresh_db_id(),
            generation: 0,
        }
    }
}

impl PartialEq for Database {
    fn eq(&self, other: &Database) -> bool {
        self.catalog == other.catalog && self.relations == other.relations
    }
}

impl Eq for Database {}

impl Database {
    /// An empty database over `catalog`.
    pub fn new(catalog: Arc<Catalog>) -> Database {
        let relations = catalog
            .names()
            .map(|n| {
                let schema = catalog
                    .schema_of(n)
                    .expect("name comes from catalog")
                    .clone();
                (n, Relation::new(schema))
            })
            .collect();
        Database {
            catalog,
            relations,
            id: fresh_db_id(),
            generation: 0,
        }
    }

    /// An identity for this exact contents: the instance id plus a
    /// generation counter bumped on every mutation. Equal stamps imply
    /// equal contents (each instance — including every clone — has a
    /// unique id, and its generation only moves forward), so evaluation
    /// caches can key on the stamp instead of hashing tuples.
    pub fn cache_stamp(&self) -> (u64, u64) {
        (self.id, self.generation)
    }

    /// The shared catalog.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// The instance of `name`.
    pub fn relation(&self, name: Symbol) -> Result<&Relation, RelationError> {
        self.relations
            .get(&name)
            .ok_or(RelationError::UnknownRelation { name })
    }

    /// Mutable instance of `name`. Conservatively advances the cache stamp:
    /// handing out `&mut` counts as a mutation.
    pub fn relation_mut(&mut self, name: Symbol) -> Result<&mut Relation, RelationError> {
        self.generation += 1;
        self.relations
            .get_mut(&name)
            .ok_or(RelationError::UnknownRelation { name })
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// The active domain: every value occurring in any tuple of any
    /// relation, in deterministic order.
    pub fn active_domain(&self) -> BTreeSet<Value> {
        let mut dom = BTreeSet::new();
        for rel in self.relations.values() {
            for t in rel.iter() {
                dom.extend(t.values().iter().copied());
            }
        }
        dom
    }

    /// Applies `update` transactionally: every referenced relation must
    /// exist and every inserted tuple must conform before anything changes.
    ///
    /// Deletions are applied before insertions, so a tuple both deleted and
    /// inserted in the same update ends up present. Deleting an absent tuple
    /// or inserting a present one is a no-op (set semantics).
    pub fn apply(&mut self, update: &Update) -> Result<(), RelationError> {
        // Validate first — no partial application on error.
        for (name, tuples) in &update.inserts {
            let rel = self.relation(*name)?;
            for t in tuples {
                rel.schema().check(t)?;
            }
        }
        for name in update.deletes.keys() {
            self.relation(*name)?;
        }
        if !update.is_empty() {
            self.generation += 1;
        }
        for (name, tuples) in &update.deletes {
            let rel = self.relations.get_mut(name).expect("validated above");
            for t in tuples {
                rel.remove(t);
            }
        }
        for (name, tuples) in &update.inserts {
            let rel = self.relations.get_mut(name).expect("validated above");
            for t in tuples {
                rel.insert(t.clone()).expect("validated above");
            }
        }
        Ok(())
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, rel) in &self.relations {
            writeln!(f, "{name}{} = {rel}", rel.schema())?;
        }
        Ok(())
    }
}

/// A transactional update: sets of tuples to delete and insert, per relation.
///
/// This is the unit in which a history advances: one update plus one
/// timestamp produces the next database state.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Update {
    inserts: BTreeMap<Symbol, BTreeSet<Tuple>>,
    deletes: BTreeMap<Symbol, BTreeSet<Tuple>>,
}

impl Update {
    /// An empty update (a pure clock tick).
    pub fn new() -> Update {
        Update::default()
    }

    /// Whether the update changes nothing.
    pub fn is_empty(&self) -> bool {
        self.inserts.values().all(BTreeSet::is_empty)
            && self.deletes.values().all(BTreeSet::is_empty)
    }

    /// Records an insertion.
    pub fn insert(&mut self, relation: impl Into<Symbol>, tuple: Tuple) -> &mut Update {
        self.inserts
            .entry(relation.into())
            .or_default()
            .insert(tuple);
        self
    }

    /// Records a deletion.
    pub fn delete(&mut self, relation: impl Into<Symbol>, tuple: Tuple) -> &mut Update {
        self.deletes
            .entry(relation.into())
            .or_default()
            .insert(tuple);
        self
    }

    /// Builder-style [`Update::insert`].
    pub fn with_insert(mut self, relation: impl Into<Symbol>, tuple: Tuple) -> Update {
        self.insert(relation, tuple);
        self
    }

    /// Builder-style [`Update::delete`].
    pub fn with_delete(mut self, relation: impl Into<Symbol>, tuple: Tuple) -> Update {
        self.delete(relation, tuple);
        self
    }

    /// Insertions, per relation, in deterministic order.
    pub fn inserts(&self) -> impl Iterator<Item = (Symbol, &BTreeSet<Tuple>)> {
        self.inserts.iter().map(|(n, s)| (*n, s))
    }

    /// Deletions, per relation, in deterministic order.
    pub fn deletes(&self) -> impl Iterator<Item = (Symbol, &BTreeSet<Tuple>)> {
        self.deletes.iter().map(|(n, s)| (*n, s))
    }

    /// Total number of tuple insertions and deletions recorded.
    pub fn len(&self) -> usize {
        self.inserts.values().map(BTreeSet::len).sum::<usize>()
            + self.deletes.values().map(BTreeSet::len).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;
    use crate::value::Sort;

    fn catalog() -> Arc<Catalog> {
        Arc::new(
            Catalog::new()
                .with("r", Schema::of(&[("x", Sort::Str)]))
                .unwrap()
                .with("s", Schema::of(&[("n", Sort::Int), ("x", Sort::Str)]))
                .unwrap(),
        )
    }

    #[test]
    fn catalog_rejects_duplicates() {
        let mut c = Catalog::new();
        c.declare("r", Schema::empty()).unwrap();
        assert!(matches!(
            c.declare("r", Schema::empty()),
            Err(RelationError::DuplicateRelation { .. })
        ));
    }

    #[test]
    fn new_database_has_all_empty_relations() {
        let db = Database::new(catalog());
        assert!(db.relation(Symbol::intern("r")).unwrap().is_empty());
        assert!(db.relation(Symbol::intern("s")).unwrap().is_empty());
        assert!(db.relation(Symbol::intern("zzz")).is_err());
    }

    #[test]
    fn apply_inserts_and_deletes() {
        let mut db = Database::new(catalog());
        db.apply(
            &Update::new()
                .with_insert("r", tuple!["a"])
                .with_insert("r", tuple!["b"]),
        )
        .unwrap();
        assert_eq!(db.relation(Symbol::intern("r")).unwrap().len(), 2);
        db.apply(&Update::new().with_delete("r", tuple!["a"]))
            .unwrap();
        assert_eq!(db.relation(Symbol::intern("r")).unwrap().len(), 1);
    }

    #[test]
    fn delete_then_insert_in_same_update_keeps_tuple() {
        let mut db = Database::new(catalog());
        db.apply(&Update::new().with_insert("r", tuple!["a"]))
            .unwrap();
        db.apply(
            &Update::new()
                .with_delete("r", tuple!["a"])
                .with_insert("r", tuple!["a"]),
        )
        .unwrap();
        assert!(db
            .relation(Symbol::intern("r"))
            .unwrap()
            .contains(&tuple!["a"]));
    }

    #[test]
    fn apply_is_atomic_on_error() {
        let mut db = Database::new(catalog());
        let bad = Update::new()
            .with_insert("r", tuple!["ok"])
            .with_insert("s", tuple!["wrong-sort"]);
        assert!(db.apply(&bad).is_err());
        assert!(
            db.relation(Symbol::intern("r")).unwrap().is_empty(),
            "nothing applied"
        );
    }

    #[test]
    fn apply_rejects_unknown_relation() {
        let mut db = Database::new(catalog());
        assert!(db
            .apply(&Update::new().with_insert("nope", tuple!["a"]))
            .is_err());
        assert!(db
            .apply(&Update::new().with_delete("nope", tuple!["a"]))
            .is_err());
    }

    #[test]
    fn active_domain_collects_all_values() {
        let mut db = Database::new(catalog());
        db.apply(
            &Update::new()
                .with_insert("r", tuple!["a"])
                .with_insert("s", tuple![3, "b"]),
        )
        .unwrap();
        let dom = db.active_domain();
        assert!(dom.contains(&Value::str("a")));
        assert!(dom.contains(&Value::str("b")));
        assert!(dom.contains(&Value::Int(3)));
        assert_eq!(dom.len(), 3);
    }

    #[test]
    fn update_len_and_is_empty() {
        let u = Update::new();
        assert!(u.is_empty());
        let u = u
            .with_insert("r", tuple!["a"])
            .with_delete("r", tuple!["b"]);
        assert!(!u.is_empty());
        assert_eq!(u.len(), 2);
    }

    #[test]
    fn states_share_catalog() {
        let db = Database::new(catalog());
        let db2 = db.clone();
        assert!(Arc::ptr_eq(db.catalog(), db2.catalog()));
    }

    #[test]
    fn try_merge_unions_and_tolerates_identical_redeclarations() {
        let mut a = Catalog::new()
            .with("r", Schema::of(&[("x", Sort::Str)]))
            .unwrap();
        let b = Catalog::new()
            .with("r", Schema::of(&[("x", Sort::Str)]))
            .unwrap()
            .with("s", Schema::of(&[("n", Sort::Int)]))
            .unwrap();
        a.try_merge(&b).unwrap();
        assert_eq!(a.len(), 2);
        assert!(a.schema_of("s".into()).is_some());
    }

    #[test]
    fn try_merge_rejects_conflicting_schemas() {
        let mut a = Catalog::new()
            .with("r", Schema::of(&[("x", Sort::Str)]))
            .unwrap();
        let b = Catalog::new()
            .with("r", Schema::of(&[("x", Sort::Int)]))
            .unwrap();
        let err = a.try_merge(&b).unwrap_err();
        assert!(matches!(err, RelationError::DuplicateRelation { .. }));
    }
}
