//! Data values and their sorts.

use std::fmt;

use crate::symbol::Symbol;

/// The sort (type) of a database value.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Sort {
    /// 64-bit signed integers.
    Int,
    /// Interned strings.
    Str,
    /// Booleans.
    Bool,
}

impl fmt::Display for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sort::Int => f.write_str("int"),
            Sort::Str => f.write_str("str"),
            Sort::Bool => f.write_str("bool"),
        }
    }
}

/// A database value.
///
/// `Ord` is derived and therefore only meaningful *within* one sort (the
/// cross-sort order — `Int < Str < Bool` — is arbitrary but deterministic,
/// which is all that ordered relation storage needs). Strings order by
/// intern id, not lexicographically; see [`Symbol`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Value {
    /// An integer.
    Int(i64),
    /// An interned string.
    Str(Symbol),
    /// A boolean.
    Bool(bool),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: &str) -> Value {
        Value::Str(Symbol::intern(s))
    }

    /// The sort this value belongs to.
    pub fn sort(&self) -> Sort {
        match self {
            Value::Int(_) => Sort::Int,
            Value::Str(_) => Sort::Str,
            Value::Bool(_) => Sort::Bool,
        }
    }

    /// The integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The symbol payload, if this is a `Str`.
    pub fn as_symbol(&self) -> Option<Symbol> {
        match self {
            Value::Str(s) => Some(*s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Renders as a self-delimiting literal: integers bare, strings quoted
    /// with `\"`/`\\`/`\n` escapes, booleans `true`/`false`. The format is
    /// shared by the history log and checkpoint codecs; it round-trips
    /// through [`Value::parse_literals`].
    pub fn to_literal(&self) -> String {
        match self {
            Value::Int(i) => i.to_string(),
            Value::Str(s) => format!("{:?}", s.as_str()),
            Value::Bool(b) => b.to_string(),
        }
    }

    /// Parses a comma-separated list of literals (the inverse of joining
    /// [`Value::to_literal`] outputs with `", "`). Whitespace around
    /// literals is ignored; an empty/blank input yields an empty list.
    pub fn parse_literals(input: &str) -> Result<Vec<Value>, String> {
        let chars: Vec<char> = input.chars().collect();
        let mut out = Vec::new();
        let mut i = 0;
        let err =
            |msg: &str, at: usize| Err::<Vec<Value>, String>(format!("{msg} at column {}", at + 1));
        loop {
            while i < chars.len() && chars[i].is_whitespace() {
                i += 1;
            }
            if i >= chars.len() {
                // Clean end of input (a trailing comma is tolerated).
                return Ok(out);
            }
            match chars[i] {
                '"' => {
                    i += 1;
                    let mut s = String::new();
                    loop {
                        match chars.get(i) {
                            None => return err("unterminated string", i),
                            Some('"') => {
                                i += 1;
                                break;
                            }
                            Some('\\') => {
                                i += 1;
                                match chars.get(i) {
                                    Some('"') => s.push('"'),
                                    Some('\\') => s.push('\\'),
                                    Some('n') => s.push('\n'),
                                    _ => return err("unknown escape", i),
                                }
                                i += 1;
                            }
                            Some(&c) => {
                                s.push(c);
                                i += 1;
                            }
                        }
                    }
                    out.push(Value::str(&s));
                }
                c if c == '-' || c.is_ascii_digit() => {
                    let start = i;
                    if chars[i] == '-' {
                        i += 1;
                    }
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        i += 1;
                    }
                    let text: String = chars[start..i].iter().collect();
                    match text.parse() {
                        Ok(v) => out.push(Value::Int(v)),
                        Err(_) => return err("bad integer literal", start),
                    }
                }
                c if c.is_ascii_alphabetic() => {
                    let start = i;
                    while i < chars.len() && chars[i].is_ascii_alphanumeric() {
                        i += 1;
                    }
                    let word: String = chars[start..i].iter().collect();
                    match word.as_str() {
                        "true" => out.push(Value::Bool(true)),
                        "false" => out.push(Value::Bool(false)),
                        _ => return err("unknown bare word (strings must be quoted)", start),
                    }
                }
                _ => return err("expected a value literal", i),
            }
            while i < chars.len() && chars[i].is_whitespace() {
                i += 1;
            }
            if i >= chars.len() {
                return Ok(out);
            }
            if chars[i] != ',' {
                return err("expected `,` between literals", i);
            }
            i += 1;
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::str(s)
    }
}

impl From<Symbol> for Value {
    fn from(s: Symbol) -> Value {
        Value::Str(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_match_constructors() {
        assert_eq!(Value::Int(3).sort(), Sort::Int);
        assert_eq!(Value::str("x").sort(), Sort::Str);
        assert_eq!(Value::Bool(true).sort(), Sort::Bool);
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_bool(), None);
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::str("a").as_symbol(), Some(Symbol::intern("a")));
        assert_eq!(Value::str("a").as_int(), None);
    }

    #[test]
    fn string_values_compare_by_content() {
        assert_eq!(Value::str("same"), Value::str("same"));
        assert_ne!(Value::str("one"), Value::str("two"));
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(4), Value::Int(4));
        assert_eq!(Value::from("v"), Value::str("v"));
        assert_eq!(Value::from(false), Value::Bool(false));
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(-2).to_string(), "-2");
        assert_eq!(Value::str("abc").to_string(), "abc");
        assert_eq!(Value::Bool(true).to_string(), "true");
    }

    #[test]
    fn ints_order_numerically() {
        assert!(Value::Int(-5) < Value::Int(3));
    }

    #[test]
    fn literal_round_trip() {
        let vals = vec![
            Value::Int(-42),
            Value::str("plain"),
            Value::str("with \"quotes\" and \\slash\\ and\nnewline"),
            Value::Bool(true),
            Value::Bool(false),
            Value::str(""),
        ];
        let text = vals
            .iter()
            .map(Value::to_literal)
            .collect::<Vec<_>>()
            .join(", ");
        assert_eq!(Value::parse_literals(&text).unwrap(), vals);
    }

    #[test]
    fn parse_literals_empty_and_errors() {
        assert_eq!(Value::parse_literals("   ").unwrap(), vec![]);
        assert!(Value::parse_literals("bareword").is_err());
        assert!(Value::parse_literals("\"open").is_err());
        assert!(Value::parse_literals("1 2").is_err(), "missing comma");
        assert!(Value::parse_literals("1,,2").is_err());
    }

    #[test]
    fn parse_literals_mixed() {
        let vs = Value::parse_literals(r#" 1,"a, b" ,true "#).unwrap();
        assert_eq!(
            vs,
            vec![Value::Int(1), Value::str("a, b"), Value::Bool(true)]
        );
    }
}
