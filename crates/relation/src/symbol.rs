//! Interned strings.
//!
//! Relation names, attribute names and string data values are interned into
//! [`Symbol`]s: small copyable ids with O(1) equality and hashing. The
//! interner is a process-global table; interned strings live for the rest of
//! the process (they are leaked into `'static` storage). This is the usual
//! trade-off for a database engine whose vocabulary (schema names plus the
//! active string domain) is bounded; callers generating unbounded fresh
//! strings should be aware the table only grows.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned string.
///
/// Two `Symbol`s are equal iff they were interned from equal strings.
/// Ordering is by *intern id* (first-interned sorts first), which is
/// deterministic for a deterministic program but is not lexicographic; use
/// [`Symbol::as_str`] when lexicographic order matters.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

struct Interner {
    by_name: HashMap<&'static str, u32>,
    names: Vec<&'static str>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            by_name: HashMap::new(),
            names: Vec::new(),
        })
    })
}

impl Symbol {
    /// Interns `name`, returning its symbol. Idempotent.
    pub fn intern(name: &str) -> Symbol {
        let mut i = interner().lock().expect("symbol interner poisoned");
        if let Some(&id) = i.by_name.get(name) {
            return Symbol(id);
        }
        let id = u32::try_from(i.names.len()).expect("symbol table overflow");
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        i.names.push(leaked);
        i.by_name.insert(leaked, id);
        Symbol(id)
    }

    /// The interned string.
    pub fn as_str(self) -> &'static str {
        let i = interner().lock().expect("symbol interner poisoned");
        i.names[self.0 as usize]
    }

    /// The raw intern id. Stable within a process run only.
    pub fn id(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::intern(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let a = Symbol::intern("reserved");
        let b = Symbol::intern("reserved");
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
    }

    #[test]
    fn distinct_strings_distinct_symbols() {
        let a = Symbol::intern("alpha-sym-test");
        let b = Symbol::intern("beta-sym-test");
        assert_ne!(a, b);
    }

    #[test]
    fn as_str_round_trips() {
        let a = Symbol::intern("round_trip_me");
        assert_eq!(a.as_str(), "round_trip_me");
    }

    #[test]
    fn display_shows_name() {
        let a = Symbol::intern("shown");
        assert_eq!(a.to_string(), "shown");
        assert_eq!(format!("{a:?}"), "Symbol(\"shown\")");
    }

    #[test]
    fn from_impls() {
        let a: Symbol = "from-str".into();
        let b: Symbol = String::from("from-str").into();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_string_interns() {
        let a = Symbol::intern("");
        assert_eq!(a.as_str(), "");
        assert_eq!(a, Symbol::intern(""));
    }
}
