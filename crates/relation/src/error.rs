//! Error type for the relational layer.

use std::error::Error;
use std::fmt;

use crate::symbol::Symbol;
use crate::value::Sort;

/// Errors raised by schema checking, algebra, and database operations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RelationError {
    /// A schema was built with two attributes of the same name.
    DuplicateAttribute {
        /// The clashing name.
        name: Symbol,
    },
    /// A tuple's arity differs from its schema's.
    ArityMismatch {
        /// Arity required by the schema.
        expected: usize,
        /// Arity of the offending tuple.
        found: usize,
    },
    /// A tuple field's sort differs from the schema's.
    SortMismatch {
        /// The attribute at the offending position.
        attribute: Symbol,
        /// Sort required by the schema.
        expected: Sort,
        /// Sort of the offending value.
        found: Sort,
    },
    /// An attribute position is out of range for a schema.
    NoSuchPosition {
        /// The offending position.
        position: usize,
        /// The schema's arity.
        arity: usize,
    },
    /// Two relations passed to a set operation have incompatible schemas.
    NotUnionCompatible,
    /// A join predicate pairs columns of different sorts.
    JoinSortMismatch {
        /// Position in the left schema.
        left: usize,
        /// Position in the right schema.
        right: usize,
    },
    /// A named relation was not found in the database catalog.
    UnknownRelation {
        /// The missing name.
        name: Symbol,
    },
    /// A relation was declared twice in the same catalog.
    DuplicateRelation {
        /// The clashing name.
        name: Symbol,
    },
}

impl fmt::Display for RelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationError::DuplicateAttribute { name } => {
                write!(f, "duplicate attribute name `{name}` in schema")
            }
            RelationError::ArityMismatch { expected, found } => {
                write!(
                    f,
                    "arity mismatch: schema has {expected} attributes, tuple has {found}"
                )
            }
            RelationError::SortMismatch {
                attribute,
                expected,
                found,
            } => write!(
                f,
                "sort mismatch on attribute `{attribute}`: expected {expected}, found {found}"
            ),
            RelationError::NoSuchPosition { position, arity } => {
                write!(
                    f,
                    "attribute position {position} out of range for arity {arity}"
                )
            }
            RelationError::NotUnionCompatible => {
                f.write_str("relations are not union-compatible (arity or sorts differ)")
            }
            RelationError::JoinSortMismatch { left, right } => write!(
                f,
                "join pairs left column {left} with right column {right} of a different sort"
            ),
            RelationError::UnknownRelation { name } => {
                write!(f, "unknown relation `{name}`")
            }
            RelationError::DuplicateRelation { name } => {
                write!(f, "relation `{name}` already declared")
            }
        }
    }
}

impl Error for RelationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = RelationError::SortMismatch {
            attribute: Symbol::intern("flight"),
            expected: Sort::Int,
            found: Sort::Str,
        };
        let msg = e.to_string();
        assert!(msg.contains("flight") && msg.contains("int") && msg.contains("str"));
    }

    #[test]
    fn implements_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&RelationError::NotUnionCompatible);
    }
}
