//! Relations: schema-checked sets of tuples, with cached hash indexes.

use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::{Arc, Mutex};

use crate::error::RelationError;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;

/// A hash index on a column subset: key values → matching tuples.
pub type ColumnIndex = HashMap<Vec<Value>, Vec<Tuple>>;

/// A relation instance: a [`Schema`] plus a set of conforming tuples.
///
/// Storage is an ordered set, so iteration order is deterministic (by the
/// derived tuple order) — important for reproducible checker output and for
/// golden tests. All mutating entry points check tuples against the schema.
///
/// Relations lazily cache hash indexes per column subset
/// ([`Relation::index_on`]); any mutation invalidates the cache. Equality,
/// ordering and cloning see only the logical content.
#[derive(Debug)]
pub struct Relation {
    schema: Schema,
    tuples: BTreeSet<Tuple>,
    /// Lazily built indexes, keyed by the indexed column positions.
    /// `Mutex` (not `RefCell`) keeps `Relation: Sync`; contention is nil —
    /// the engine is single-writer.
    indexes: Mutex<HashMap<Vec<usize>, Arc<ColumnIndex>>>,
}

impl Clone for Relation {
    fn clone(&self) -> Relation {
        // Indexes are a cache: clones start cold.
        Relation {
            schema: self.schema.clone(),
            tuples: self.tuples.clone(),
            indexes: Mutex::new(HashMap::new()),
        }
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Relation) -> bool {
        self.schema == other.schema && self.tuples == other.tuples
    }
}

impl Eq for Relation {}

impl Relation {
    /// An empty relation over `schema`.
    pub fn new(schema: Schema) -> Relation {
        Relation {
            schema,
            tuples: BTreeSet::new(),
            indexes: Mutex::new(HashMap::new()),
        }
    }

    fn invalidate_indexes(&mut self) {
        self.indexes.get_mut().expect("index lock poisoned").clear();
    }

    /// The (cached) hash index keyed by the values at `cols`. Building is
    /// O(n); subsequent calls with the same columns are O(1) until the
    /// relation mutates.
    ///
    /// # Panics
    /// Panics on out-of-range columns (callers derive them from the
    /// schema).
    pub fn index_on(&self, cols: &[usize]) -> Arc<ColumnIndex> {
        let mut cache = self.indexes.lock().expect("index lock poisoned");
        if let Some(idx) = cache.get(cols) {
            return Arc::clone(idx);
        }
        let mut index: ColumnIndex = HashMap::new();
        for t in &self.tuples {
            let key: Vec<Value> = cols.iter().map(|&c| t[c]).collect();
            index.entry(key).or_default().push(t.clone());
        }
        let index = Arc::new(index);
        cache.insert(cols.to_vec(), Arc::clone(&index));
        index
    }

    /// A relation over `schema` populated from `tuples`.
    pub fn from_tuples(
        schema: Schema,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<Relation, RelationError> {
        let mut r = Relation::new(schema);
        for t in tuples {
            r.insert(t)?;
        }
        Ok(r)
    }

    /// This relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Membership test. The tuple need not conform to the schema; a
    /// non-conforming tuple is simply not a member.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.tuples.contains(tuple)
    }

    /// Inserts a tuple after schema-checking it. Returns `true` if the
    /// tuple was not already present.
    pub fn insert(&mut self, tuple: Tuple) -> Result<bool, RelationError> {
        self.schema.check(&tuple)?;
        self.invalidate_indexes();
        Ok(self.tuples.insert(tuple))
    }

    /// Removes a tuple; returns `true` if it was present.
    pub fn remove(&mut self, tuple: &Tuple) -> bool {
        self.invalidate_indexes();
        self.tuples.remove(tuple)
    }

    /// Removes all tuples.
    pub fn clear(&mut self) {
        self.invalidate_indexes();
        self.tuples.clear();
    }

    /// Iterates tuples in deterministic (ordered) fashion.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// Consumes the relation, yielding its tuples.
    pub fn into_tuples(self) -> impl Iterator<Item = Tuple> {
        self.tuples.into_iter()
    }

    /// Retains only tuples satisfying `pred`.
    pub fn retain(&mut self, mut pred: impl FnMut(&Tuple) -> bool) {
        self.invalidate_indexes();
        self.tuples.retain(|t| pred(t));
    }
}

impl fmt::Display for Relation {
    /// Renders as `{ (a, 1), (b, 2) }`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (i, t) in self.tuples.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, " {t}")?;
        }
        f.write_str(" }")
    }
}

impl<'a> IntoIterator for &'a Relation {
    type Item = &'a Tuple;
    type IntoIter = std::collections::btree_set::Iter<'a, Tuple>;
    fn into_iter(self) -> Self::IntoIter {
        self.tuples.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;
    use crate::value::Sort;

    fn schema() -> Schema {
        Schema::of(&[("name", Sort::Str), ("n", Sort::Int)])
    }

    #[test]
    fn insert_checks_schema() {
        let mut r = Relation::new(schema());
        assert!(r.insert(tuple!["a", 1]).unwrap());
        assert!(r.insert(tuple![1, "a"]).is_err());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn insert_is_set_semantics() {
        let mut r = Relation::new(schema());
        assert!(r.insert(tuple!["a", 1]).unwrap());
        assert!(!r.insert(tuple!["a", 1]).unwrap());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn remove_and_contains() {
        let mut r = Relation::new(schema());
        r.insert(tuple!["a", 1]).unwrap();
        assert!(r.contains(&tuple!["a", 1]));
        assert!(r.remove(&tuple!["a", 1]));
        assert!(!r.remove(&tuple!["a", 1]));
        assert!(r.is_empty());
    }

    #[test]
    fn from_tuples_collects() {
        let r = Relation::from_tuples(schema(), [tuple!["a", 1], tuple!["b", 2]]).unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn iteration_is_deterministic_and_ordered() {
        let r = Relation::from_tuples(schema(), [tuple!["b", 2], tuple!["a", 1]]).unwrap();
        let seen: Vec<Tuple> = r.iter().cloned().collect();
        assert_eq!(seen.len(), 2);
        assert!(seen[0] < seen[1]);
    }

    #[test]
    fn retain() {
        let mut r = Relation::from_tuples(schema(), [tuple!["a", 1], tuple!["b", 2]]).unwrap();
        r.retain(|t| t[1] == crate::Value::Int(2));
        assert_eq!(r.len(), 1);
        assert!(r.contains(&tuple!["b", 2]));
    }

    #[test]
    fn index_on_returns_matching_tuples_and_caches() {
        let mut r =
            Relation::from_tuples(schema(), [tuple!["a", 1], tuple!["b", 1], tuple!["a", 2]])
                .unwrap();
        let idx = r.index_on(&[1]);
        assert_eq!(idx[&vec![crate::Value::Int(1)]].len(), 2);
        assert_eq!(idx[&vec![crate::Value::Int(2)]].len(), 1);
        let again = r.index_on(&[1]);
        assert!(Arc::ptr_eq(&idx, &again), "second lookup hits the cache");
        // Mutation invalidates.
        r.insert(tuple!["c", 1]).unwrap();
        let rebuilt = r.index_on(&[1]);
        assert!(!Arc::ptr_eq(&idx, &rebuilt));
        assert_eq!(rebuilt[&vec![crate::Value::Int(1)]].len(), 3);
    }

    #[test]
    fn index_invalidation_across_insert_delete_and_retain() {
        let mut r =
            Relation::from_tuples(schema(), [tuple!["a", 1], tuple!["b", 1], tuple!["a", 2]])
                .unwrap();
        let idx = r.index_on(&[1]);

        // Delete-side invalidation: the cached index is rebuilt and the
        // removed tuple no longer appears under its key.
        assert!(r.remove(&tuple!["b", 1]));
        let after_delete = r.index_on(&[1]);
        assert!(!Arc::ptr_eq(&idx, &after_delete));
        assert_eq!(after_delete[&vec![crate::Value::Int(1)]].len(), 1);

        // Insert-side again after the delete rebuild.
        r.insert(tuple!["c", 1]).unwrap();
        let after_insert = r.index_on(&[1]);
        assert!(!Arc::ptr_eq(&after_delete, &after_insert));
        assert_eq!(after_insert[&vec![crate::Value::Int(1)]].len(), 2);

        // retain() is a bulk delete: also invalidates.
        r.retain(|t| t[1] == crate::Value::Int(2));
        let after_retain = r.index_on(&[1]);
        assert!(!Arc::ptr_eq(&after_insert, &after_retain));
        assert!(!after_retain.contains_key(&vec![crate::Value::Int(1)]));
        assert_eq!(after_retain[&vec![crate::Value::Int(2)]].len(), 1);

        // A no-op remove still conservatively invalidates (cheap and safe).
        let before = r.index_on(&[1]);
        assert!(!r.remove(&tuple!["zzz", 9]));
        assert!(!Arc::ptr_eq(&before, &r.index_on(&[1])));
    }

    #[test]
    fn index_on_empty_columns_groups_everything() {
        let r = Relation::from_tuples(schema(), [tuple!["a", 1], tuple!["b", 2]]).unwrap();
        let idx = r.index_on(&[]);
        assert_eq!(idx[&Vec::new()].len(), 2);
    }

    #[test]
    fn clones_compare_equal_but_have_cold_caches() {
        let r = Relation::from_tuples(schema(), [tuple!["a", 1]]).unwrap();
        let _ = r.index_on(&[0]);
        let c = r.clone();
        assert_eq!(r, c);
        assert!(c.indexes.lock().unwrap().is_empty());
    }

    #[test]
    fn empty_schema_relation_holds_at_most_unit() {
        let mut r = Relation::new(Schema::empty());
        assert!(r.insert(Tuple::empty()).unwrap());
        assert!(!r.insert(Tuple::empty()).unwrap());
        assert_eq!(r.len(), 1);
    }
}
