//! # rtic-relation — relational storage substrate
//!
//! The in-memory relational engine that [`rtic`](https://example.org/rtic)
//! database histories range over. It provides:
//!
//! * interned [`Symbol`]s for names and string data,
//! * sorted [`Value`]s and schema-checked [`Tuple`]s,
//! * [`Schema`]/[`Attribute`] metadata with projection/rename/compatibility,
//! * [`Relation`] instances with deterministic iteration order,
//! * the classic set-semantics [`algebra`] (σ, π, ρ, ∪, ∩, ∖, ×, ⋈, ⋉, ▷),
//! * [`Database`] states over a shared immutable [`Catalog`], advanced by
//!   transactional [`Update`]s.
//!
//! Everything is deterministic: relations iterate in tuple order, catalogs
//! and updates iterate in name order. Determinism is load-bearing — checker
//! traces, experiment tables and golden tests all rely on it.
//!
//! ```
//! use rtic_relation::{tuple, Catalog, Database, Schema, Sort, Symbol, Update};
//! use std::sync::Arc;
//!
//! let catalog = Arc::new(
//!     Catalog::new()
//!         .with("reserved", Schema::of(&[("passenger", Sort::Str), ("flight", Sort::Int)]))
//!         .unwrap(),
//! );
//! let mut db = Database::new(catalog);
//! db.apply(&Update::new().with_insert("reserved", tuple!["ann", 17])).unwrap();
//! assert!(db.relation(Symbol::intern("reserved")).unwrap().contains(&tuple!["ann", 17]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algebra;
mod block;
mod database;
mod error;
mod relation;
mod schema;
mod symbol;
mod tuple;
mod value;

pub use block::TupleBlock;
pub use database::{Catalog, Database, RelDelta, Update};
pub use error::RelationError;
pub use relation::Relation;
pub use schema::{Attribute, Schema};
pub use symbol::Symbol;
pub use tuple::Tuple;
pub use value::{Sort, Value};
