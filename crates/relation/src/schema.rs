//! Relation schemas: named, sorted attribute lists.

use std::fmt;

use crate::error::RelationError;
use crate::symbol::Symbol;
use crate::tuple::Tuple;
use crate::value::Sort;

/// A named, typed attribute of a relation schema.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Attribute {
    /// Attribute name (unique within a schema).
    pub name: Symbol,
    /// Attribute sort.
    pub sort: Sort,
}

impl Attribute {
    /// Builds an attribute.
    pub fn new(name: impl Into<Symbol>, sort: Sort) -> Attribute {
        Attribute {
            name: name.into(),
            sort,
        }
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.sort)
    }
}

/// The schema of a relation: an ordered list of distinctly-named attributes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Schema {
    attrs: Vec<Attribute>,
}

impl Schema {
    /// Builds a schema, rejecting duplicate attribute names.
    pub fn new(attrs: impl IntoIterator<Item = Attribute>) -> Result<Schema, RelationError> {
        let attrs: Vec<Attribute> = attrs.into_iter().collect();
        for (i, a) in attrs.iter().enumerate() {
            if attrs[..i].iter().any(|b| b.name == a.name) {
                return Err(RelationError::DuplicateAttribute { name: a.name });
            }
        }
        Ok(Schema { attrs })
    }

    /// Shorthand: a schema from `(name, sort)` pairs.
    pub fn of(pairs: &[(&str, Sort)]) -> Schema {
        Schema::new(pairs.iter().map(|&(n, s)| Attribute::new(n, s)))
            .expect("Schema::of called with duplicate attribute names")
    }

    /// The empty (arity-0) schema.
    pub fn empty() -> Schema {
        Schema { attrs: Vec::new() }
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// The attributes, in order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attrs
    }

    /// The position of the attribute named `name`, if present.
    pub fn position_of(&self, name: Symbol) -> Option<usize> {
        self.attrs.iter().position(|a| a.name == name)
    }

    /// The sort of the attribute at `pos`.
    pub fn sort_at(&self, pos: usize) -> Option<Sort> {
        self.attrs.get(pos).map(|a| a.sort)
    }

    /// Just the sorts, in order.
    pub fn sorts(&self) -> impl Iterator<Item = Sort> + '_ {
        self.attrs.iter().map(|a| a.sort)
    }

    /// Checks that `tuple` conforms to this schema (arity and sorts).
    pub fn check(&self, tuple: &Tuple) -> Result<(), RelationError> {
        if tuple.arity() != self.arity() {
            return Err(RelationError::ArityMismatch {
                expected: self.arity(),
                found: tuple.arity(),
            });
        }
        for (i, a) in self.attrs.iter().enumerate() {
            let found = tuple[i].sort();
            if found != a.sort {
                return Err(RelationError::SortMismatch {
                    attribute: a.name,
                    expected: a.sort,
                    found,
                });
            }
        }
        Ok(())
    }

    /// Whether two schemas are *union-compatible*: same arity and sorts
    /// (names may differ).
    pub fn union_compatible(&self, other: &Schema) -> bool {
        self.arity() == other.arity() && self.sorts().zip(other.sorts()).all(|(a, b)| a == b)
    }

    /// Schema of the projection onto `positions` (in that order).
    ///
    /// Duplicate positions produce a schema with duplicate names, which is
    /// rejected; projections that duplicate a column must rename. Returns an
    /// error on out-of-range positions.
    pub fn project(&self, positions: &[usize]) -> Result<Schema, RelationError> {
        let mut attrs = Vec::with_capacity(positions.len());
        for &p in positions {
            let a = *self.attrs.get(p).ok_or(RelationError::NoSuchPosition {
                position: p,
                arity: self.arity(),
            })?;
            attrs.push(a);
        }
        Schema::new(attrs)
    }

    /// Schema of the concatenation `self ++ other`, failing on name clashes.
    pub fn concat(&self, other: &Schema) -> Result<Schema, RelationError> {
        Schema::new(self.attrs.iter().chain(other.attrs.iter()).copied())
    }

    /// A copy of this schema with the attribute at `pos` renamed.
    pub fn rename(&self, pos: usize, name: Symbol) -> Result<Schema, RelationError> {
        if pos >= self.arity() {
            return Err(RelationError::NoSuchPosition {
                position: pos,
                arity: self.arity(),
            });
        }
        let mut attrs = self.attrs.clone();
        attrs[pos].name = name;
        Schema::new(attrs)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{a}")?;
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn rc() -> Schema {
        Schema::of(&[("passenger", Sort::Str), ("flight", Sort::Int)])
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Schema::new([
            Attribute::new("x", Sort::Int),
            Attribute::new("x", Sort::Str),
        ])
        .unwrap_err();
        assert!(matches!(err, RelationError::DuplicateAttribute { .. }));
    }

    #[test]
    fn position_lookup() {
        let s = rc();
        assert_eq!(s.position_of(Symbol::intern("flight")), Some(1));
        assert_eq!(s.position_of(Symbol::intern("absent")), None);
    }

    #[test]
    fn tuple_check_accepts_conforming() {
        rc().check(&tuple!["ann", 7]).unwrap();
    }

    #[test]
    fn tuple_check_rejects_arity() {
        let err = rc().check(&tuple!["ann"]).unwrap_err();
        assert!(matches!(
            err,
            RelationError::ArityMismatch {
                expected: 2,
                found: 1
            }
        ));
    }

    #[test]
    fn tuple_check_rejects_sort() {
        let err = rc().check(&tuple![3, 7]).unwrap_err();
        assert!(matches!(err, RelationError::SortMismatch { .. }));
    }

    #[test]
    fn union_compatibility_ignores_names() {
        let a = Schema::of(&[("x", Sort::Int)]);
        let b = Schema::of(&[("y", Sort::Int)]);
        let c = Schema::of(&[("y", Sort::Str)]);
        assert!(a.union_compatible(&b));
        assert!(!a.union_compatible(&c));
    }

    #[test]
    fn project_and_concat() {
        let s = rc();
        let p = s.project(&[1]).unwrap();
        assert_eq!(p.arity(), 1);
        assert_eq!(p.attributes()[0].name.as_str(), "flight");
        assert!(s.project(&[5]).is_err());
        assert!(s.concat(&rc()).is_err(), "name clash");
        let q = s.concat(&Schema::of(&[("z", Sort::Bool)])).unwrap();
        assert_eq!(q.arity(), 3);
    }

    #[test]
    fn rename() {
        let s = rc().rename(0, Symbol::intern("p2")).unwrap();
        assert_eq!(s.attributes()[0].name.as_str(), "p2");
        assert!(rc().rename(9, Symbol::intern("x")).is_err());
    }

    #[test]
    fn display() {
        assert_eq!(rc().to_string(), "(passenger: str, flight: int)");
    }
}
