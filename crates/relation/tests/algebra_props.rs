//! Property tests: classical relational-algebra identities hold for the
//! rtic-relation implementation on arbitrary small relations.

use proptest::prelude::*;
use rtic_relation::{algebra, Relation, Schema, Sort, Symbol, Tuple, Value};

/// Strategy: a relation over (str, int) with a small vocabulary so that
/// joins and intersections actually hit.
fn rel_ab(name_hint: &'static str) -> impl Strategy<Value = Relation> {
    let tuple = (0usize..4, -2i64..3)
        .prop_map(|(s, n)| Tuple::new([Value::str(["p", "q", "r", "s"][s]), Value::Int(n)]));
    proptest::collection::vec(tuple, 0..12).prop_map(move |ts| {
        Relation::from_tuples(
            Schema::of(&[
                (
                    // Distinct attribute names per side keep concat legal.
                    match name_hint {
                        "L" => "la",
                        _ => "ra",
                    },
                    Sort::Str,
                ),
                (
                    match name_hint {
                        "L" => "lb",
                        _ => "rb",
                    },
                    Sort::Int,
                ),
            ]),
            ts,
        )
        .expect("generated tuples conform")
    })
}

proptest! {
    #[test]
    fn union_is_commutative_up_to_tuples(a in rel_ab("L"), b in rel_ab("L")) {
        let ab = algebra::union(&a, &b).unwrap();
        let ba = algebra::union(&b, &a).unwrap();
        prop_assert_eq!(
            ab.iter().cloned().collect::<Vec<_>>(),
            ba.iter().cloned().collect::<Vec<_>>()
        );
    }

    #[test]
    fn union_is_idempotent(a in rel_ab("L")) {
        prop_assert_eq!(algebra::union(&a, &a).unwrap(), a);
    }

    #[test]
    fn difference_then_union_restores_superset(a in rel_ab("L"), b in rel_ab("L")) {
        // (a − b) ∪ (a ∩ b) == a
        let d = algebra::difference(&a, &b).unwrap();
        let i = algebra::intersection(&a, &b).unwrap();
        prop_assert_eq!(algebra::union(&d, &i).unwrap(), a);
    }

    #[test]
    fn intersection_via_double_difference(a in rel_ab("L"), b in rel_ab("L")) {
        // a ∩ b == a − (a − b)
        let i = algebra::intersection(&a, &b).unwrap();
        let dd = algebra::difference(&a, &algebra::difference(&a, &b).unwrap()).unwrap();
        prop_assert_eq!(i, dd);
    }

    #[test]
    fn semijoin_antijoin_partition(a in rel_ab("L"), b in rel_ab("R")) {
        let on = [(0usize, 0usize), (1usize, 1usize)];
        let s = algebra::semijoin(&a, &b, &on).unwrap();
        let n = algebra::antijoin(&a, &b, &on).unwrap();
        prop_assert_eq!(algebra::union(&s, &n).unwrap(), a.clone());
        prop_assert!(algebra::intersection(&s, &n).unwrap().is_empty());
    }

    #[test]
    fn join_subset_of_product(a in rel_ab("L"), b in rel_ab("R")) {
        let j = algebra::join(&a, &b, &[(1, 1)]).unwrap();
        let p = algebra::product(&a, &b).unwrap();
        for t in j.iter() {
            prop_assert!(p.contains(t));
            prop_assert_eq!(t[1], t[3], "join columns agree");
        }
        // And every product tuple with agreeing columns is in the join.
        let filtered = algebra::select(&p, |t| t[1] == t[3]);
        prop_assert_eq!(
            filtered.iter().cloned().collect::<Vec<_>>(),
            j.iter().cloned().collect::<Vec<_>>()
        );
    }

    #[test]
    fn projection_never_grows(a in rel_ab("L")) {
        let p = algebra::project(&a, &[1]).unwrap();
        prop_assert!(p.len() <= a.len());
    }

    #[test]
    fn select_true_is_identity_select_false_is_empty(a in rel_ab("L")) {
        prop_assert_eq!(algebra::select(&a, |_| true), a.clone());
        prop_assert!(algebra::select(&a, |_| false).is_empty());
    }

    #[test]
    fn rename_preserves_extension(a in rel_ab("L")) {
        let r = algebra::rename(&a, 0, Symbol::intern("fresh_name")).unwrap();
        prop_assert_eq!(r.len(), a.len());
        for t in a.iter() {
            prop_assert!(r.contains(t));
        }
    }

    #[test]
    fn semijoin_is_projectionless_filter(a in rel_ab("L"), b in rel_ab("R")) {
        // a ⋉ b on col1 == σ_{∃ match}(a), i.e. every kept tuple has a join partner.
        let s = algebra::semijoin(&a, &b, &[(1, 1)]).unwrap();
        for t in s.iter() {
            prop_assert!(b.iter().any(|u| u[1] == t[1]));
        }
        for t in a.iter() {
            if b.iter().any(|u| u[1] == t[1]) {
                prop_assert!(s.contains(t));
            }
        }
    }
}
