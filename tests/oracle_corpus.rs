//! Corpus replay: every checked-in repro file in `tests/corpus/` — golden
//! workload cases and any minimized counterexamples the oracle has
//! emitted — must replay cleanly (byte-identical reports) on every
//! backend. A divergence here means a previously-fixed bug regressed or a
//! golden scenario broke.

use std::path::PathBuf;

use rtic_oracle::{Mode, Repro};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn corpus_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "repro"))
        .collect();
    files.sort();
    files
}

#[test]
fn corpus_is_nonempty() {
    assert!(
        !corpus_files().is_empty(),
        "tests/corpus should hold the golden workload repros \
         (regenerate with `cargo run -p rtic-oracle -- --write-workload-corpus`)"
    );
}

#[test]
fn every_corpus_repro_replays_cleanly_on_all_backends() {
    for path in corpus_files() {
        let text = std::fs::read_to_string(&path).expect("corpus file readable");
        let repro = Repro::from_text(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        if let Some(d) = repro.replay(&Mode::ALL) {
            panic!("{} diverges on replay:\n{d}", path.display());
        }
    }
}

#[test]
fn golden_corpus_files_match_their_generators() {
    // The checked-in golden files must stay in sync with the workload
    // generators; if a generator changes, regenerate with
    // `cargo run -p rtic-oracle -- --write-workload-corpus`.
    for (stem, repro) in rtic_oracle::corpus::golden() {
        let path = corpus_dir().join(format!("{stem}.repro"));
        let on_disk = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{} missing: {e}", path.display()));
        assert_eq!(
            on_disk,
            repro.to_text(),
            "{} is stale — regenerate the golden corpus",
            path.display()
        );
    }
}
