//! Chaos tests: crash, corrupt, and panic the checker through injected
//! faults, then assert the recovery machinery restores byte-identical
//! behavior. These drive `rtic::cli::run` end to end, the same entry
//! point the binary uses.

use std::io::Write as _;
use std::path::PathBuf;

fn run(args: &[&str]) -> (Result<i32, String>, String) {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = String::new();
    let code = rtic::cli::run(&args, &mut out);
    (code, out)
}

fn temp_file(name: &str, content: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rtic-chaos-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(content.as_bytes()).unwrap();
    path
}

const CONSTRAINTS: &str = r#"
relation reserved(p: str, f: int)
relation confirmed(p: str, f: int)
deny unconfirmed: reserved(p, f) && once[2,*] reserved(p, f) && !once confirmed(p, f)
deny reconfirm: confirmed(p, f) && once[1,*] confirmed(p, f)
"#;

/// Twelve transitions with violations spread across both halves, so a
/// mid-stream kill leaves reports on each side of the cut.
const LOG: &str = r#"
@0 +reserved("ann", 17)
@1
@2
@3 +confirmed("ann", 17)
@4 +reserved("bob", 9)
@5
@6 +reserved("cat", 1)
@7
@8 +confirmed("bob", 9)
@9
@10
@11 +confirmed("cat", 1)
"#;

fn violations(out: &str) -> Vec<String> {
    out.lines()
        .filter(|l| l.contains("VIOLATION"))
        .map(str::to_string)
        .collect()
}

/// Kill the run mid-stream (injected abort right after a periodic
/// checkpoint), resume from the checkpoint, and require the stitched
/// report stream to be byte-identical to an uninterrupted run's.
fn kill_and_resume(tag: &str, extra: &[&str]) {
    let c = temp_file(&format!("{tag}.rtic"), CONSTRAINTS);
    let l = temp_file(&format!("{tag}.rticlog"), LOG);
    let ckpt = temp_file(&format!("{tag}.ckpt"), "");
    std::fs::remove_file(&ckpt).ok();

    let mut reference = vec!["check", c.to_str().unwrap(), l.to_str().unwrap()];
    reference.extend_from_slice(extra);
    let (code, uninterrupted) = run(&reference);
    assert_eq!(code.unwrap(), 1, "{uninterrupted}");

    // Checkpoint every 3 steps; the abort fires on the 7th transition,
    // so exactly steps 1..=6 ran and the newest checkpoint covers them.
    let mut first = vec![
        "check",
        c.to_str().unwrap(),
        l.to_str().unwrap(),
        "--checkpoint",
        ckpt.to_str().unwrap(),
        "--checkpoint-every",
        "3",
        "--failpoints",
        "run.abort=abort@7",
    ];
    first.extend_from_slice(extra);
    let (code, killed) = run(&first);
    assert!(
        code.unwrap_err().contains("injected crash"),
        "the drill crashes the run"
    );

    let mut second = vec![
        "check",
        c.to_str().unwrap(),
        l.to_str().unwrap(),
        "--resume",
        ckpt.to_str().unwrap(),
    ];
    second.extend_from_slice(extra);
    let (code, resumed) = run(&second);
    assert_eq!(code.unwrap(), 1, "{resumed}");
    assert!(resumed.contains("resumed from"), "{resumed}");
    assert!(
        resumed.contains("skipped 6 transition(s) already covered"),
        "{resumed}"
    );

    let mut stitched = violations(&killed);
    stitched.extend(violations(&resumed));
    assert_eq!(
        stitched,
        violations(&uninterrupted),
        "{tag}: stitched reports diverge from the uninterrupted run"
    );
}

#[test]
fn kill_and_resume_is_byte_identical_sequential() {
    kill_and_resume("seq", &[]);
}

#[test]
fn kill_and_resume_is_byte_identical_parallel_fleet() {
    kill_and_resume("fleet", &["--parallel", "auto"]);
}

#[test]
fn kill_and_resume_is_byte_identical_sharded() {
    kill_and_resume("shard", &["--shard", "auto"]);
}

#[test]
fn kill_and_resume_is_byte_identical_sharded_parallel() {
    kill_and_resume("shardpar", &["--shard", "auto", "--parallel", "2"]);
}

/// Kill the run *mid-batch*: with `--batch 4` and a checkpoint every 3
/// steps, the coalesced checkpoint lands at the first batch boundary
/// (after line 4), lines 5–6 sit in the unflushed buffer when the abort
/// fires on line 7, and the resume must replay exactly the uncovered
/// suffix — buffered-but-unflushed lines are re-read from the log, never
/// lost or double-applied. Vectorized kernels stay on throughout, so the
/// probe-partition caches also rebuild from the restored state.
#[test]
fn kill_and_resume_mid_batch_is_byte_identical() {
    let c = temp_file("batchvec.rtic", CONSTRAINTS);
    let l = temp_file("batchvec.rticlog", LOG);
    let ckpt = temp_file("batchvec.ckpt", "");
    std::fs::remove_file(&ckpt).ok();
    let extra = ["--batch", "4", "--vectorize"];

    let mut reference = vec!["check", c.to_str().unwrap(), l.to_str().unwrap()];
    reference.extend_from_slice(&extra);
    let (code, uninterrupted) = run(&reference);
    assert_eq!(code.unwrap(), 1, "{uninterrupted}");

    // The batched run must report exactly what a plain line-at-a-time
    // run does before we start crashing it.
    let (code, plain) = run(&["check", c.to_str().unwrap(), l.to_str().unwrap()]);
    assert_eq!(code.unwrap(), 1, "{plain}");
    assert_eq!(violations(&uninterrupted), violations(&plain));

    let mut first = vec![
        "check",
        c.to_str().unwrap(),
        l.to_str().unwrap(),
        "--checkpoint",
        ckpt.to_str().unwrap(),
        "--checkpoint-every",
        "3",
        "--failpoints",
        "run.abort=abort@7",
    ];
    first.extend_from_slice(&extra);
    let (code, killed) = run(&first);
    assert!(
        code.unwrap_err().contains("injected crash"),
        "the drill crashes the run"
    );

    let mut second = vec![
        "check",
        c.to_str().unwrap(),
        l.to_str().unwrap(),
        "--resume",
        ckpt.to_str().unwrap(),
    ];
    second.extend_from_slice(&extra);
    let (code, resumed) = run(&second);
    assert_eq!(code.unwrap(), 1, "{resumed}");
    assert!(resumed.contains("resumed from"), "{resumed}");
    // The checkpoint coalesced to the batch boundary: it covers the
    // first full batch (4 lines), not the raw --checkpoint-every tick.
    assert!(
        resumed.contains("skipped 4 transition(s) already covered"),
        "{resumed}"
    );

    let mut stitched = violations(&killed);
    stitched.extend(violations(&resumed));
    assert_eq!(
        stitched,
        violations(&uninterrupted),
        "mid-batch kill: stitched reports diverge from the uninterrupted run"
    );
}

/// A checkpoint records which data plane wrote it; resuming with the
/// other `--shard` setting is a mismatch with an actionable message,
/// in both directions.
#[test]
fn sharded_and_unsharded_checkpoints_do_not_mix_via_the_cli() {
    for (tag, write_shard, resume_shard, hint) in [
        ("mixa", "auto", "off", "--shard auto"),
        ("mixb", "off", "auto", "--shard off"),
    ] {
        let c = temp_file(&format!("{tag}.rtic"), CONSTRAINTS);
        let l = temp_file(&format!("{tag}.rticlog"), LOG);
        let ckpt = temp_file(&format!("{tag}.ckpt"), "");
        std::fs::remove_file(&ckpt).ok();
        let (code, out) = run(&[
            "check",
            c.to_str().unwrap(),
            l.to_str().unwrap(),
            "--shard",
            write_shard,
            "--checkpoint",
            ckpt.to_str().unwrap(),
        ]);
        assert_eq!(code.unwrap(), 1, "{out}");
        let (code, _) = run(&[
            "check",
            c.to_str().unwrap(),
            l.to_str().unwrap(),
            "--shard",
            resume_shard,
            "--resume",
            ckpt.to_str().unwrap(),
        ]);
        let err = code.unwrap_err();
        assert!(err.contains(hint), "{tag}: the fix is suggested: {err}");
    }
}

#[test]
fn recovery_falls_back_past_a_corrupted_newest_checkpoint() {
    let c = temp_file("fb.rtic", CONSTRAINTS);
    let l = temp_file("fb.rticlog", LOG);
    let ckpt = temp_file("fb.ckpt", "");
    std::fs::remove_file(&ckpt).ok();
    let base = [
        "check",
        c.to_str().unwrap(),
        l.to_str().unwrap(),
        "--checkpoint",
        ckpt.to_str().unwrap(),
    ];
    // Two runs: the second rotates the first checkpoint to `.1`.
    run(&base).0.unwrap();
    run(&base).0.unwrap();
    let rotated = PathBuf::from(format!("{}.1", ckpt.display()));
    assert!(rotated.exists(), "rotation keeps the previous generation");

    // Flip one payload bit in the newest checkpoint.
    let mut bytes = std::fs::read(&ckpt).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&ckpt, &bytes).unwrap();

    let (code, out) = run(&[
        "check",
        c.to_str().unwrap(),
        l.to_str().unwrap(),
        "--resume",
        ckpt.to_str().unwrap(),
    ]);
    assert_eq!(code.unwrap(), 0, "fallback succeeds: {out}");
    assert!(
        out.contains("checkpoint candidate") && out.contains("rejected"),
        "the corrupt candidate is diagnosed: {out}"
    );
    assert!(out.contains("checksum mismatch"), "{out}");
    assert!(
        out.contains(&format!("resumed from `{}`", rotated.display())),
        "{out}"
    );
}

#[test]
fn recovery_with_every_candidate_corrupt_is_a_typed_error() {
    let c = temp_file("ac.rtic", CONSTRAINTS);
    let l = temp_file("ac.rticlog", LOG);
    let ckpt = temp_file("ac.ckpt", "");
    std::fs::remove_file(&ckpt).ok();
    let base = [
        "check",
        c.to_str().unwrap(),
        l.to_str().unwrap(),
        "--checkpoint",
        ckpt.to_str().unwrap(),
    ];
    run(&base).0.unwrap();
    run(&base).0.unwrap();
    for path in [ckpt.clone(), PathBuf::from(format!("{}.1", ckpt.display()))] {
        let mut bytes = std::fs::read(&path).unwrap();
        let len = bytes.len();
        bytes.truncate(len / 2);
        std::fs::write(&path, &bytes).unwrap();
    }
    let (code, out) = run(&[
        "check",
        c.to_str().unwrap(),
        l.to_str().unwrap(),
        "--resume",
        ckpt.to_str().unwrap(),
    ]);
    let err = code.unwrap_err();
    assert!(err.contains("every candidate in the rotation set"), "{err}");
    assert!(out.contains("truncated"), "rejections are explained: {out}");
}

#[test]
fn resuming_nonexistent_checkpoint_is_a_clear_error() {
    let c = temp_file("nx.rtic", CONSTRAINTS);
    let l = temp_file("nx.rticlog", LOG);
    let (code, _) = run(&[
        "check",
        c.to_str().unwrap(),
        l.to_str().unwrap(),
        "--resume",
        "/nonexistent/never.ckpt",
    ]);
    assert!(code.unwrap_err().contains("no checkpoint found"));
}

#[test]
fn corrupted_checkpoint_write_is_caught_on_the_next_resume() {
    // The failpoint corrupts the checkpoint *in flight* (a model of a
    // torn write the filesystem reported as successful); recovery must
    // detect it via the checksum and fall back.
    let c = temp_file("tw.rtic", CONSTRAINTS);
    let l = temp_file("tw.rticlog", LOG);
    let ckpt = temp_file("tw.ckpt", "");
    std::fs::remove_file(&ckpt).ok();
    let base = [
        "check",
        c.to_str().unwrap(),
        l.to_str().unwrap(),
        "--checkpoint",
        ckpt.to_str().unwrap(),
    ];
    run(&base).0.unwrap(); // intact generation, becomes `.1`
    let (code, _) = run(&[
        "check",
        c.to_str().unwrap(),
        l.to_str().unwrap(),
        "--checkpoint",
        ckpt.to_str().unwrap(),
        "--failpoints",
        "checkpoint.write=bitflip:999",
    ]);
    code.unwrap();
    let (code, out) = run(&[
        "check",
        c.to_str().unwrap(),
        l.to_str().unwrap(),
        "--resume",
        ckpt.to_str().unwrap(),
    ]);
    assert_eq!(code.unwrap(), 0, "{out}");
    assert!(out.contains("rejected"), "{out}");
    assert!(out.contains("resumed from"), "{out}");
}

#[test]
fn panicking_engine_is_quarantined_and_the_fleet_keeps_reporting() {
    let c = temp_file("qp.rtic", CONSTRAINTS);
    let l = temp_file("qp.rticlog", LOG);
    let (code, healthy) = run(&[
        "check",
        c.to_str().unwrap(),
        l.to_str().unwrap(),
        "--parallel",
        "2",
    ]);
    assert_eq!(code.unwrap(), 1, "{healthy}");

    let (code, out) = run(&[
        "check",
        c.to_str().unwrap(),
        l.to_str().unwrap(),
        "--parallel",
        "2",
        "--stats",
        "--failpoints",
        "engine-panic:unconfirmed=panic@2",
    ]);
    assert_eq!(code.unwrap(), 1, "the run completes: {out}");
    assert!(
        out.contains("quarantined `unconfirmed`"),
        "the quarantine is reported, not silent: {out}"
    );
    assert!(
        out.contains("injected engine panic"),
        "the panic payload is surfaced: {out}"
    );
    assert!(
        out.contains("skipped by quarantine"),
        "--stats counts the skipped engine-steps: {out}"
    );
    // The healthy constraint's reports are unchanged.
    let healthy_reconfirm: Vec<String> = violations(&healthy)
        .into_iter()
        .filter(|l| l.contains("reconfirm"))
        .collect();
    let survived: Vec<String> = violations(&out)
        .into_iter()
        .filter(|l| l.contains("reconfirm"))
        .collect();
    assert_eq!(survived, healthy_reconfirm, "{out}");
    // And the quarantined constraint stopped reporting after its panic.
    assert!(violations(&out).len() < violations(&healthy).len(), "{out}");
}

#[test]
fn quarantine_requires_fleet_mode() {
    let c = temp_file("qf.rtic", CONSTRAINTS);
    let l = temp_file("qf.rticlog", LOG);
    let (code, _) = run(&[
        "check",
        c.to_str().unwrap(),
        l.to_str().unwrap(),
        "--failpoints",
        "engine-panic:unconfirmed=panic",
    ]);
    assert!(code.unwrap_err().contains("--parallel"));
}

const BAD_LOG: &str = r#"
@0 +reserved("ann", 17)
@1 oops this is not a transition
@2
@3 +confirmed(
@4
"#;

#[test]
fn bad_lines_abort_under_the_strict_default() {
    let c = temp_file("bs.rtic", CONSTRAINTS);
    let l = temp_file("bs.rticlog", BAD_LOG);
    let (code, _) = run(&["check", c.to_str().unwrap(), l.to_str().unwrap()]);
    let err = code.unwrap_err();
    assert!(err.contains("line 3"), "names the offending line: {err}");
}

#[test]
fn bad_lines_are_skipped_and_counted_under_skip_policy() {
    let c = temp_file("bk.rtic", CONSTRAINTS);
    let l = temp_file("bk.rticlog", BAD_LOG);
    let t = temp_file("bk.jsonl", "");
    let (code, out) = run(&[
        "check",
        c.to_str().unwrap(),
        l.to_str().unwrap(),
        "--on-bad-line",
        "skip",
        "--stats",
        "--trace",
        t.to_str().unwrap(),
    ]);
    assert_eq!(code.unwrap(), 1, "{out}");
    assert!(out.contains("checked 3 transitions"), "{out}");
    assert!(out.contains("skipped 2 malformed line(s)"), "{out}");
    assert!(out.contains("bad lines skipped: 2"), "{out}");
    let trace_text = std::fs::read_to_string(&t).unwrap();
    let bad_events = trace_text
        .lines()
        .filter(|l| l.contains("\"event\":\"bad_line\""))
        .count();
    assert_eq!(bad_events, 2, "{trace_text}");
}

#[test]
fn bad_line_budget_bounds_the_tolerance() {
    let c = temp_file("bb.rtic", CONSTRAINTS);
    let l = temp_file("bb.rticlog", BAD_LOG);
    let (code, _) = run(&[
        "check",
        c.to_str().unwrap(),
        l.to_str().unwrap(),
        "--on-bad-line",
        "skip",
        "--bad-line-budget",
        "1",
    ]);
    let err = code.unwrap_err();
    assert!(err.contains("budget exhausted"), "{err}");
    // The budget flag alone (without the skip policy) is rejected.
    let (code, _) = run(&[
        "check",
        c.to_str().unwrap(),
        l.to_str().unwrap(),
        "--bad-line-budget",
        "5",
    ]);
    assert!(code.unwrap_err().contains("--on-bad-line skip"));
}

/// Satellite drill for the replay cursor vs. the bad-line budget: the
/// malformed lines inside the checkpoint-covered prefix were already
/// charged by the run that wrote the checkpoint. A resumed run must not
/// charge them again — otherwise every restart shrinks the effective
/// budget until a once-survivable log kills the run.
#[test]
fn resume_does_not_double_charge_replayed_bad_lines() {
    // LOG with two malformed lines in the prefix the checkpoint will
    // cover (t <= 5) and one past it.
    let log = r#"
@0 +reserved("ann", 17)
this is not a transition
@1
@2
+confirmed( also not one
@3 +confirmed("ann", 17)
@4 +reserved("bob", 9)
@5
@6 +reserved("cat", 1)
@7
@neither is this
@8 +confirmed("bob", 9)
@9
@10
@11 +confirmed("cat", 1)
"#;
    let c = temp_file("budget.rtic", CONSTRAINTS);
    let l = temp_file("budget.rticlog", log);
    let ckpt = temp_file("budget.ckpt", "");
    std::fs::remove_file(&ckpt).ok();

    // First run: two bad lines fit the budget of 2; the abort fires on
    // the 7th parsed transition, so the newest checkpoint covers the
    // first 6 (t <= 5) — including both bad lines' positions.
    let (code, killed) = run(&[
        "check",
        c.to_str().unwrap(),
        l.to_str().unwrap(),
        "--on-bad-line",
        "skip",
        "--bad-line-budget",
        "2",
        "--checkpoint",
        ckpt.to_str().unwrap(),
        "--checkpoint-every",
        "3",
        "--failpoints",
        "run.abort=abort@7",
    ]);
    assert!(code.unwrap_err().contains("injected crash"), "{killed}");

    // Resume with a budget of 1: only the one *new* bad line may be
    // charged. Double-counting the two replayed ones would exhaust the
    // budget and abort a log the original run survived.
    let (code, resumed) = run(&[
        "check",
        c.to_str().unwrap(),
        l.to_str().unwrap(),
        "--on-bad-line",
        "skip",
        "--bad-line-budget",
        "1",
        "--resume",
        ckpt.to_str().unwrap(),
        "--stats",
    ]);
    assert_eq!(
        code.unwrap(),
        1,
        "replayed bad lines must not count against the budget: {resumed}"
    );
    assert!(
        resumed.contains("skipped 6 transition(s) already covered"),
        "{resumed}"
    );
    assert!(
        resumed.contains("skipped 2 malformed line(s) already covered"),
        "{resumed}"
    );
    assert!(
        resumed.contains("skipped 1 malformed line(s) (--on-bad-line skip, budget 1)"),
        "only the post-cursor bad line is charged: {resumed}"
    );

    // And the stitched report stream still matches an uninterrupted run.
    let (code, uninterrupted) = run(&[
        "check",
        c.to_str().unwrap(),
        l.to_str().unwrap(),
        "--on-bad-line",
        "skip",
        "--bad-line-budget",
        "3",
    ]);
    assert_eq!(code.unwrap(), 1, "{uninterrupted}");
    let mut stitched = violations(&killed);
    stitched.extend(violations(&resumed));
    assert_eq!(stitched, violations(&uninterrupted));
}

#[test]
fn resume_with_a_changed_constraint_body_names_the_constraint() {
    let changed: &str = r#"
relation reserved(p: str, f: int)
relation confirmed(p: str, f: int)
deny unconfirmed: reserved(p, f) && once[3,*] reserved(p, f) && !once confirmed(p, f)
deny reconfirm: confirmed(p, f) && once[1,*] confirmed(p, f)
"#;
    for (tag, extra) in [
        ("bodyseq", &[][..]),
        ("bodyfleet", &["--parallel", "2"][..]),
    ] {
        let c = temp_file(&format!("{tag}.rtic"), CONSTRAINTS);
        let l = temp_file(&format!("{tag}.rticlog"), LOG);
        let ckpt = temp_file(&format!("{tag}.ckpt"), "");
        std::fs::remove_file(&ckpt).ok();
        let mut args = vec![
            "check",
            c.to_str().unwrap(),
            l.to_str().unwrap(),
            "--checkpoint",
            ckpt.to_str().unwrap(),
        ];
        args.extend_from_slice(extra);
        run(&args).0.unwrap();

        let c2 = temp_file(&format!("{tag}-changed.rtic"), changed);
        let mut args = vec![
            "check",
            c2.to_str().unwrap(),
            l.to_str().unwrap(),
            "--resume",
            ckpt.to_str().unwrap(),
        ];
        args.extend_from_slice(extra);
        let err = run(&args).0.unwrap_err();
        assert!(err.contains("`unconfirmed`"), "{tag}: {err}");
        assert!(
            err.contains("changed since this checkpoint"),
            "{tag}: {err}"
        );
    }
}

/// Composition of the two recovery mechanisms: a fleet that quarantines a
/// panicking engine, checkpoints (which excludes the quarantined engine),
/// and is then restored with the survivors must finish the log with
/// exactly the uninterrupted healthy run's reports minus the quarantined
/// constraint's from its panic step onward.
#[test]
fn quarantine_then_resume_matches_uninterrupted_minus_quarantined() {
    use rtic::core::checkpoint::{restore_set, save_set};
    use rtic::core::ConstraintSet;
    use rtic::temporal::parser::parse_file;
    use std::sync::Arc;

    let file = parse_file(CONSTRAINTS).unwrap();
    let catalog = Arc::new(file.catalog);
    let transitions = rtic::history::log::parse_log(LOG).unwrap();

    // Uninterrupted healthy fleet, keeping (step index, constraint, line).
    let mut healthy = ConstraintSet::new(file.constraints.clone(), Arc::clone(&catalog))
        .unwrap_or_else(|(c, e)| panic!("`{}` fails to compile: {e}", c.name));
    let mut healthy_lines = Vec::new();
    for (k, t) in transitions.iter().enumerate() {
        for r in healthy.step(t.time, &t.update).unwrap() {
            healthy_lines.push((k, r.constraint, r.to_string()));
        }
    }

    // Faulted fleet: `unconfirmed` panics while processing the second
    // transition and is quarantined; the fleet runs degraded until a
    // mid-stream checkpoint, then a fresh process restores the survivors
    // and finishes the log.
    let panic_step = 2; // 1-based transition number of the injected panic
    let kill = 6; // transitions processed before the checkpoint
    let mut set = ConstraintSet::new(file.constraints.clone(), Arc::clone(&catalog))
        .unwrap_or_else(|(c, e)| panic!("`{}` fails to compile: {e}", c.name));
    assert!(set.arm_panic("unconfirmed", panic_step as u64));
    let mut stitched = Vec::new();
    for t in &transitions[..kill] {
        for r in set.step(t.time, &t.update).unwrap() {
            stitched.push(r.to_string());
        }
    }
    let quarantined = set.quarantined();
    assert_eq!(quarantined.len(), 1, "{quarantined:?}");
    assert_eq!(quarantined[0].0.as_str(), "unconfirmed");
    assert!(quarantined[0].1.contains("injected engine panic"));

    let sections: Vec<String> = save_set(&set).into_iter().map(|(_, s)| s).collect();
    assert_eq!(sections.len(), 1, "the quarantined engine is excluded");
    drop(set);

    let survivors: Vec<_> = file
        .constraints
        .iter()
        .filter(|c| c.name.as_str() != "unconfirmed")
        .cloned()
        .collect();
    let mut resumed = restore_set(survivors, Arc::clone(&catalog), &sections).unwrap();
    for t in &transitions[kill..] {
        for r in resumed.step(t.time, &t.update).unwrap() {
            stitched.push(r.to_string());
        }
    }

    let expected: Vec<String> = healthy_lines
        .into_iter()
        .filter(|(k, name, _)| name.as_str() != "unconfirmed" || *k + 1 < panic_step)
        .map(|(_, _, line)| line)
        .collect();
    assert_eq!(stitched, expected);
}

/// Runs a resident `rtic serve` daemon through a kill/resume drill and
/// returns the final report file's lines. The first incarnation is
/// crashed by `serve.step=abort@7` (a simulated kill -9: no reply, no
/// cleanup, no final checkpoint); the second resumes from the newest
/// intact periodic checkpoint, re-streams the full log, and drains.
fn serve_kill_resume_drill(tag: &str, extra: &[&str]) -> Vec<String> {
    let c = temp_file(&format!("{tag}.rtic"), CONSTRAINTS);
    let l = temp_file(&format!("{tag}.rticlog"), LOG);
    let dir = c.parent().unwrap().to_path_buf();
    let sock = dir.join(format!("{tag}.sock"));
    let ckpt = dir.join(format!("{tag}.ckpt"));
    let report = dir.join(format!("{tag}.report"));
    for path in [&ckpt, &report] {
        std::fs::remove_file(path).ok();
    }
    std::fs::remove_file(PathBuf::from(format!("{}.1", ckpt.display()))).ok();
    std::fs::remove_file(PathBuf::from(format!("{}.2", ckpt.display()))).ok();

    let spawn = |resume: bool, faults: Option<&str>, extra: &[&str]| {
        let mut args = vec![
            "serve".to_string(),
            c.to_str().unwrap().to_string(),
            "--listen".to_string(),
            format!("unix:{}", sock.display()),
            "--checkpoint".to_string(),
            ckpt.to_str().unwrap().to_string(),
            "--checkpoint-every".to_string(),
            "3".to_string(),
            "--report".to_string(),
            report.to_str().unwrap().to_string(),
        ];
        if resume {
            args.push("--resume".to_string());
        }
        if let Some(spec) = faults {
            args.push("--failpoints".to_string());
            args.push(spec.to_string());
        }
        args.extend(extra.iter().map(|s| s.to_string()));
        std::thread::spawn(move || {
            let mut out = String::new();
            let code = rtic::cli::run(&args, &mut out);
            (code, out)
        })
    };
    let connect = format!("unix:{}", sock.display());
    let stream = |drain: bool| {
        let mut args = vec![
            "send",
            l.to_str().unwrap(),
            "--connect",
            connect.as_str(),
            "--quiet",
        ];
        if drain {
            args.push("--drain");
        }
        run(&args)
    };

    // Incarnation 1: dies processing the 7th transition, right after
    // the periodic checkpoint that covers the first 6.
    let server = spawn(false, Some("serve.step=abort@7"), extra);
    let (code, _) = stream(false);
    assert!(code.is_err(), "{tag}: the stream is cut by the crash");
    let (code, out) = server.join().unwrap();
    assert!(code.unwrap_err().contains("injected crash"), "{tag}: {out}");
    assert!(
        !out.contains("drained:"),
        "{tag}: a kill -9 must not look like a graceful drain: {out}"
    );

    // Incarnation 2: resume, re-stream the whole log (the covered
    // prefix is acked as replayed, not re-checked), drain gracefully.
    let server = spawn(true, None, extra);
    let (code, send_out) = stream(true);
    code.unwrap();
    assert!(
        send_out.contains("6 update(s) acked as already covered"),
        "{tag}: {send_out}"
    );
    let (code, out) = server.join().unwrap();
    assert_eq!(code.unwrap(), 0, "{tag}: {out}");
    assert!(out.contains("resumed from"), "{tag}: {out}");
    assert!(
        out.contains("skipped 6 transition(s) already covered"),
        "{tag}: {out}"
    );

    std::fs::read_to_string(&report)
        .unwrap()
        .lines()
        .map(str::to_string)
        .collect()
}

/// The tentpole drill: a serve daemon kill -9'd mid-stream and
/// restarted with `--resume` must end with a final report
/// byte-identical to an uninterrupted daemon's and to batch
/// `rtic check` over the same log.
#[test]
fn serve_kill_and_resume_report_matches_batch_check() {
    let (code, batch) = {
        let c = temp_file("skr-batch.rtic", CONSTRAINTS);
        let l = temp_file("skr-batch.rticlog", LOG);
        run(&["check", c.to_str().unwrap(), l.to_str().unwrap()])
    };
    assert_eq!(code.unwrap(), 1, "{batch}");
    let expected = violations(&batch);

    let crashed = serve_kill_resume_drill("skr", &[]);
    assert_eq!(
        crashed, expected,
        "kill -9 + resume diverges from batch check"
    );

    // Control: an uninterrupted daemon produces the same bytes.
    let c = temp_file("skr-ctl.rtic", CONSTRAINTS);
    let l = temp_file("skr-ctl.rticlog", LOG);
    let dir = c.parent().unwrap().to_path_buf();
    let sock = dir.join("skr-ctl.sock");
    let report = dir.join("skr-ctl.report");
    let args: Vec<String> = [
        "serve",
        c.to_str().unwrap(),
        "--listen",
        &format!("unix:{}", sock.display()),
        "--report",
        report.to_str().unwrap(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let server = std::thread::spawn(move || {
        let mut out = String::new();
        let code = rtic::cli::run(&args, &mut out);
        (code, out)
    });
    let (code, _) = run(&[
        "send",
        l.to_str().unwrap(),
        "--connect",
        &format!("unix:{}", sock.display()),
        "--quiet",
        "--drain",
    ]);
    code.unwrap();
    server.join().unwrap().0.unwrap();
    let uninterrupted: Vec<String> = std::fs::read_to_string(&report)
        .unwrap()
        .lines()
        .map(str::to_string)
        .collect();
    assert_eq!(crashed, uninterrupted);
}

/// Satellite drill for the shard-eviction/resume interplay under serve:
/// with an aggressive idle-eviction horizon, entities go quiet, their
/// shards are evicted to phantoms, the daemon is killed and resumed —
/// and when a quiet entity comes back (`cat`'s late confirm, `ann`'s
/// reconfirms) the revived shard must re-materialize from its phantom
/// byte-identically. The report must match both batch `rtic check`
/// with the same eviction settings and an unsharded batch run.
#[test]
fn serve_shard_eviction_survives_kill_and_resume() {
    let extra = &["--shard", "auto", "--shard-evict", "2"];

    let c = temp_file("sev-batch.rtic", CONSTRAINTS);
    let l = temp_file("sev-batch.rticlog", LOG);
    let mut batch_args = vec!["check", c.to_str().unwrap(), l.to_str().unwrap()];
    batch_args.extend_from_slice(extra);
    let (code, batch) = run(&batch_args);
    assert_eq!(code.unwrap(), 1, "{batch}");

    let (code, unsharded) = run(&["check", c.to_str().unwrap(), l.to_str().unwrap()]);
    assert_eq!(code.unwrap(), 1, "{unsharded}");
    assert_eq!(
        violations(&batch),
        violations(&unsharded),
        "eviction itself must not change reports"
    );

    let crashed = serve_kill_resume_drill("sev", extra);
    assert_eq!(
        crashed,
        violations(&batch),
        "evicted shards revived after resume diverge"
    );
}

/// SMC-under-kill drill: an `rtic smc --backend soak-serve` campaign
/// whose per-sample serve daemon is kill -9'd mid-sample (injected
/// abort) must, after a `--resume` rerun over the same `--soak-dir`,
/// converge on estimates identical to the pure batch backend's — and
/// every resumed sample's report must still be byte-identical to batch
/// (the run itself cross-checks this and exits non-zero on a mismatch).
#[test]
fn smc_soak_kill_and_resume_matches_batch_estimates() {
    let dir = std::env::temp_dir().join(format!("rtic-chaos-smc-soak-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let batch_art = dir.join("batch.json");
    let soak_art = dir.join("soak.json");
    std::fs::create_dir_all(&dir).unwrap();
    let soak_dir = dir.join("scratch");
    let shape = [
        "--steps",
        "30",
        "--entities",
        "8",
        "--events",
        "3",
        "--violation-rate",
        "0.25",
        "--seed",
        "13",
        "--samples",
        "2",
        "--oracle-every",
        "0",
    ];

    // Reference: the same campaign through the batch engine.
    let mut batch = vec!["smc", "telemetry"];
    batch.extend_from_slice(&shape);
    batch.extend_from_slice(&["--out", batch_art.to_str().unwrap()]);
    let (code, out) = run(&batch);
    assert_eq!(code.unwrap(), 0, "{out}");

    // Incarnation 1: the first sample's daemon dies processing its 9th
    // transition — a simulated kill -9, no cleanup, no final report.
    let mut first = vec!["smc", "telemetry"];
    first.extend_from_slice(&shape);
    first.extend_from_slice(&[
        "--backend",
        "soak-serve",
        "--soak-dir",
        soak_dir.to_str().unwrap(),
        "--soak-keep",
        "--failpoints",
        "serve.step=abort@9",
    ]);
    let (code, _) = run(&first);
    let err = code.unwrap_err();
    assert!(err.contains("injected crash"), "{err}");
    assert!(
        soak_dir.join("s0.ckpt").exists(),
        "the killed sample leaves its per-sample checkpoint behind"
    );

    // Incarnation 2: resume over the same scratch dir. Sample s0's
    // daemon boots from its checkpoint; the campaign finishes and its
    // built-in cross-check proves every report byte-identical to batch.
    let mut second = vec!["smc", "telemetry"];
    second.extend_from_slice(&shape);
    second.extend_from_slice(&[
        "--backend",
        "soak-serve",
        "--soak-dir",
        soak_dir.to_str().unwrap(),
        "--soak-keep",
        "--resume",
        "--out",
        soak_art.to_str().unwrap(),
    ]);
    let (code, out) = run(&second);
    assert_eq!(code.unwrap(), 0, "{out}");
    assert!(
        out.contains("soak: 2/2 reports byte-identical to batch"),
        "{out}"
    );

    // The resumed campaign's estimates equal the batch campaign's.
    let soak_text = std::fs::read_to_string(&soak_art).unwrap();
    let batch_text = std::fs::read_to_string(&batch_art).unwrap();
    let constraints = |text: &str| {
        let start = text.find("\"constraints\"").expect("constraints key");
        let end = text[start..].find("\n  ],").expect("block end") + start;
        text[start..end].to_string()
    };
    assert_eq!(
        constraints(&soak_text),
        constraints(&batch_text),
        "kill + resume must not skew the estimates"
    );
    assert!(soak_text.contains("\"soak_mismatches\": 0"), "{soak_text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn periodic_checkpoints_rotate_generations() {
    let c = temp_file("rot.rtic", CONSTRAINTS);
    let l = temp_file("rot.rticlog", LOG);
    let ckpt = temp_file("rot.ckpt", "");
    std::fs::remove_file(&ckpt).ok();
    let (code, out) = run(&[
        "check",
        c.to_str().unwrap(),
        l.to_str().unwrap(),
        "--checkpoint",
        ckpt.to_str().unwrap(),
        "--checkpoint-every",
        "4",
        "--checkpoint-keep",
        "2",
    ]);
    assert_eq!(code.unwrap(), 1, "{out}");
    // 12 steps: periodic writes after 4, 8, 12 plus the final one; with
    // keep=2 only the two newest survive.
    assert!(ckpt.exists());
    assert!(PathBuf::from(format!("{}.1", ckpt.display())).exists());
    assert!(!PathBuf::from(format!("{}.2", ckpt.display())).exists());
    for path in [ckpt.clone(), PathBuf::from(format!("{}.1", ckpt.display()))] {
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.starts_with(b"rtic-checkpoint-set v2"), "{path:?}");
    }
}
