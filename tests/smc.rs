//! End-to-end tests for `rtic smc`: the statistical model-checking
//! command over the production scenario library. These drive
//! `rtic::cli::run`, the same entry point the binary uses, and pin the
//! acceptance guarantees: seeded runs reproduce byte-identically,
//! adaptive stopping stays within the declared bound, and the soak
//! backend's estimates match the batch engine's.

use std::path::PathBuf;

fn run(args: &[&str]) -> (Result<i32, String>, String) {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = String::new();
    let code = rtic::cli::run(&args, &mut out);
    (code, out)
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rtic-smc-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(tag)
}

/// A small, fast scenario shape shared by the tests; explicit flags so
/// the tests are independent of `RTIC_SMC_SMOKE` in the environment.
const SHAPE: &[&str] = &[
    "--steps",
    "30",
    "--entities",
    "10",
    "--events",
    "3",
    "--violation-rate",
    "0.2",
    "--seed",
    "7",
];

/// The `"constraints": [...]` block of an artifact — the estimates
/// themselves, independent of which backend produced them.
fn constraints_block(artifact: &str) -> &str {
    let start = artifact.find("\"constraints\"").expect("constraints key");
    let end = artifact[start..].find("\n  ],").expect("block end") + start;
    &artifact[start..end]
}

#[test]
fn same_seed_reproduces_the_artifact_byte_for_byte() {
    let a = scratch("repro-a.json");
    let b = scratch("repro-b.json");
    let mut args = vec!["smc", "ratelimit"];
    args.extend_from_slice(SHAPE);
    args.extend_from_slice(&["--samples", "5", "--oracle-every", "2"]);

    let mut first = args.clone();
    first.extend_from_slice(&["--out", a.to_str().unwrap()]);
    let (code, out_first) = run(&first);
    assert_eq!(code.unwrap(), 0, "{out_first}");

    let mut second = args.clone();
    second.extend_from_slice(&["--out", b.to_str().unwrap()]);
    let (code, out_second) = run(&second);
    assert_eq!(code.unwrap(), 0, "{out_second}");

    let bytes_a = std::fs::read(&a).unwrap();
    let bytes_b = std::fs::read(&b).unwrap();
    assert_eq!(bytes_a, bytes_b, "same seed must mean identical artifacts");

    let artifact = String::from_utf8(bytes_a).unwrap();
    assert!(artifact.contains("\"samples_used\": 5"), "{artifact}");
    assert!(artifact.contains("\"oracle_checked\": 3"), "{artifact}");
    assert!(artifact.contains("\"oracle_mismatches\": 0"), "{artifact}");

    // The human summaries match too (both runs drew the same histories).
    let strip = |s: &str| {
        s.replace(a.to_str().unwrap(), "")
            .replace(b.to_str().unwrap(), "")
    };
    assert_eq!(strip(&out_first), strip(&out_second));
}

#[test]
fn a_different_seed_changes_the_sampled_histories() {
    let a = scratch("seed-a.json");
    let b = scratch("seed-b.json");
    let base = [
        "smc",
        "fraud",
        "--steps",
        "30",
        "--entities",
        "10",
        "--events",
        "3",
        "--violation-rate",
        "0.2",
        "--samples",
        "4",
        "--oracle-every",
        "0",
    ];
    let mut first: Vec<&str> = base.to_vec();
    first.extend_from_slice(&["--seed", "7", "--out", a.to_str().unwrap()]);
    run(&first).0.unwrap();
    let mut second: Vec<&str> = base.to_vec();
    second.extend_from_slice(&["--seed", "8", "--out", b.to_str().unwrap()]);
    run(&second).0.unwrap();
    // The artifacts record their seeds, so at minimum the params differ.
    let text_a = std::fs::read_to_string(&a).unwrap();
    let text_b = std::fs::read_to_string(&b).unwrap();
    assert!(text_a.contains("\"seed\": 7"), "{text_a}");
    assert!(text_b.contains("\"seed\": 8"), "{text_b}");
    assert_ne!(text_a, text_b);
}

#[test]
fn adaptive_stopping_stays_within_the_declared_bound() {
    let out_path = scratch("adaptive.json");
    let mut args = vec!["smc", "fraud"];
    args.extend_from_slice(SHAPE);
    args.extend_from_slice(&[
        "--samples",
        "auto",
        "--confidence",
        "0.9",
        "--epsilon",
        "0.2",
        "--min-samples",
        "5",
        "--oracle-every",
        "0",
        "--out",
        out_path.to_str().unwrap(),
    ]);
    let (code, out) = run(&args);
    assert_eq!(code.unwrap(), 0, "{out}");
    // Okamoto(0.9, 0.2) = ⌈ln(20)/0.08⌉ = 38; the injected violations
    // push p̂ to the edge so the Massart bound stops the run well short.
    assert!(out.contains("(bound 38, stopped adaptively)"), "{out}");
    let artifact = std::fs::read_to_string(&out_path).unwrap();
    assert!(artifact.contains("\"bound\": 38"), "{artifact}");
    assert!(
        artifact.contains("\"stopped_adaptively\": true"),
        "{artifact}"
    );
}

#[test]
fn every_production_scenario_produces_estimates_with_intervals() {
    for scenario in ["fraud", "telemetry", "ratelimit", "access"] {
        let mut args = vec!["smc", scenario];
        args.extend_from_slice(SHAPE);
        args.extend_from_slice(&["--samples", "3", "--oracle-every", "0"]);
        let (code, out) = run(&args);
        assert_eq!(code.unwrap(), 0, "{scenario}: {out}");
        assert!(
            out.contains(&format!("smc {scenario}: 3 samples")),
            "{scenario}: {out}"
        );
        // Every constraint line carries a point estimate and an interval.
        let estimates = out.lines().filter(|l| l.contains("p̂=")).count();
        assert!(
            estimates >= 2,
            "{scenario} has at least 2 constraints: {out}"
        );
    }
}

#[test]
fn soak_backend_estimates_match_batch_through_the_cli() {
    let soak_art = scratch("soak.json");
    let batch_art = scratch("soak-batch.json");
    let soak_dir = scratch("soak-scratch");
    let mut base = vec!["smc", "telemetry"];
    base.extend_from_slice(SHAPE);
    base.extend_from_slice(&["--samples", "2", "--oracle-every", "0"]);

    let mut soak = base.clone();
    soak.extend_from_slice(&[
        "--backend",
        "soak-serve",
        "--soak-dir",
        soak_dir.to_str().unwrap(),
        "--out",
        soak_art.to_str().unwrap(),
    ]);
    let (code, out) = run(&soak);
    assert_eq!(code.unwrap(), 0, "{out}");
    assert!(
        out.contains("soak: 2/2 reports byte-identical to batch"),
        "{out}"
    );

    let mut batch = base.clone();
    batch.extend_from_slice(&["--out", batch_art.to_str().unwrap()]);
    let (code, out) = run(&batch);
    assert_eq!(code.unwrap(), 0, "{out}");

    let soak_text = std::fs::read_to_string(&soak_art).unwrap();
    let batch_text = std::fs::read_to_string(&batch_art).unwrap();
    assert!(
        soak_text.contains("\"backend\": \"soak-serve\""),
        "{soak_text}"
    );
    assert!(soak_text.contains("\"soak_checked\": 2"), "{soak_text}");
    assert!(soak_text.contains("\"soak_mismatches\": 0"), "{soak_text}");
    assert_eq!(
        constraints_block(&soak_text),
        constraints_block(&batch_text),
        "a live serve daemon and the batch engine must agree per constraint"
    );
    std::fs::remove_dir_all(&soak_dir).ok();
}

#[test]
fn smc_progress_reaches_the_metrics_plane() {
    let json_path = scratch("metrics.json");
    let prom_path = scratch("metrics.prom");
    let mut args = vec!["smc", "access"];
    args.extend_from_slice(SHAPE);
    args.extend_from_slice(&[
        "--samples",
        "3",
        "--oracle-every",
        "0",
        "--metrics",
        json_path.to_str().unwrap(),
    ]);
    let (code, out) = run(&args);
    assert_eq!(code.unwrap(), 0, "{out}");
    let json = std::fs::read_to_string(&json_path).unwrap();
    assert!(json.contains("\"smc\""), "{json}");
    assert!(json.contains("\"samples\": 3"), "{json}");

    let mut args = vec!["smc", "access"];
    args.extend_from_slice(SHAPE);
    args.extend_from_slice(&[
        "--samples",
        "3",
        "--oracle-every",
        "0",
        "--metrics",
        prom_path.to_str().unwrap(),
    ]);
    run(&args).0.unwrap();
    let prom = std::fs::read_to_string(&prom_path).unwrap();
    assert!(prom.contains("rtic_smc_samples_total 3"), "{prom}");
    assert!(prom.contains("rtic_smc_sample_bound 3"), "{prom}");
}

#[test]
fn usage_errors_are_actionable() {
    // Unknown scenarios get the full roster.
    let (code, _) = run(&["smc", "nope"]);
    let err = code.unwrap_err();
    assert!(err.contains("unknown scenario `nope`"), "{err}");
    assert!(err.contains("fraud"), "{err}");

    // Soak-only flags without the soak backend are rejected up front.
    let (code, _) = run(&["smc", "fraud", "--samples", "2", "--soak-keep"]);
    assert!(
        code.unwrap_err().contains("--backend soak-serve"),
        "soak flags demand the soak backend"
    );

    // Zero samples cannot estimate anything.
    let (code, _) = run(&["smc", "fraud", "--samples", "0"]);
    assert!(code.unwrap_err().contains("at least 1"));

    // Degenerate precision targets are rejected before sampling.
    let (code, _) = run(&["smc", "fraud", "--confidence", "1.5"]);
    assert!(code.unwrap_err().contains("confidence"));
}
