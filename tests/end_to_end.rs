//! End-to-end pipeline tests: constraint file text → parser → compiler →
//! checkers, with histories supplied through the text log format. This is
//! the full path a deployment would use.

use std::sync::Arc;

use rtic::active::ActiveChecker;
use rtic::core::{Checker, IncrementalChecker, NaiveChecker, WindowedChecker};
use rtic::history::log::parse_log;
use rtic::temporal::parser::parse_file;

const CONSTRAINT_FILE: &str = r#"
# Airline reservations, straight from the paper's motivation.
relation reserved(passenger: str, flight: int)
relation confirmed(passenger: str, flight: int)
relation cancelled(passenger: str, flight: int)

# A reservation more than 2 days old must be confirmed (unless cancelled).
deny unconfirmed:
    reserved(p, f) && once[2,*] reserved(p, f)
    && !once confirmed(p, f) && !once cancelled(p, f)

# Cancelling and confirming the same reservation is an error.
deny conflicting:
    once confirmed(p, f) && once cancelled(p, f)
"#;

const LOG: &str = r#"
@0 +reserved("ann", 17) +reserved("bob", 99)
@1 +confirmed("bob", 99)
@2 +reserved("cal", 5)
@3 +cancelled("ann", 17)
@4 +confirmed("cal", 5)
@5 +cancelled("cal", 5)
"#;

fn checkers_for(file: &rtic::temporal::parser::ConstraintFile) -> Vec<Box<dyn Checker>> {
    let catalog = Arc::new(file.catalog.clone());
    let mut out: Vec<Box<dyn Checker>> = Vec::new();
    for c in &file.constraints {
        out.push(Box::new(
            IncrementalChecker::new(c.clone(), Arc::clone(&catalog)).unwrap(),
        ));
        out.push(Box::new(
            NaiveChecker::new(c.clone(), Arc::clone(&catalog)).unwrap(),
        ));
        out.push(Box::new(
            WindowedChecker::new(c.clone(), Arc::clone(&catalog)).unwrap(),
        ));
        out.push(Box::new(
            ActiveChecker::new(c.clone(), Arc::clone(&catalog)).unwrap(),
        ));
    }
    out
}

#[test]
fn file_and_log_drive_identical_checkers() {
    let file = parse_file(CONSTRAINT_FILE).unwrap();
    assert_eq!(file.catalog.len(), 3);
    assert_eq!(file.constraints.len(), 2);
    let transitions = parse_log(LOG).unwrap();
    let mut checkers = checkers_for(&file);
    // Reports agree across all four implementations, per constraint.
    for tr in &transitions {
        let reports: Vec<_> = checkers
            .iter_mut()
            .map(|c| c.step(tr.time, &tr.update).unwrap())
            .collect();
        for group in reports.chunks(4) {
            for r in &group[1..] {
                assert_eq!(&group[0], r, "checker disagreement at {}", tr.time);
            }
        }
    }
}

#[test]
fn the_story_plays_out_correctly() {
    let file = parse_file(CONSTRAINT_FILE).unwrap();
    let catalog = Arc::new(file.catalog.clone());
    let transitions = parse_log(LOG).unwrap();
    let mut unconfirmed =
        IncrementalChecker::new(file.constraints[0].clone(), Arc::clone(&catalog)).unwrap();
    let mut conflicting =
        IncrementalChecker::new(file.constraints[1].clone(), Arc::clone(&catalog)).unwrap();
    let mut trace = Vec::new();
    for tr in &transitions {
        let a = unconfirmed.step(tr.time, &tr.update).unwrap();
        let b = conflicting.step(tr.time, &tr.update).unwrap();
        trace.push((tr.time.0, a.violation_count(), b.violation_count()));
    }
    assert_eq!(
        trace,
        vec![
            (0, 0, 0), // both reservations fresh
            (1, 0, 0), // bob confirms on day 1
            (2, 1, 0), // ann's reservation turns 2 unconfirmed
            (3, 0, 0), // ann cancels: excused
            (4, 0, 0), // cal confirms within the deadline
            (5, 0, 1), // cal cancels a confirmed reservation: conflict
        ]
    );
}

#[test]
fn log_errors_are_caught_before_checking() {
    assert!(parse_log("@1 +reserved(unquoted, 17)").is_err());
    // Unknown relation: accepted by the log parser (it is schema-less) but
    // rejected when the update is applied.
    let transitions = parse_log("@1 +nosuchrel(\"x\")").unwrap();
    let file = parse_file(CONSTRAINT_FILE).unwrap();
    let catalog = Arc::new(file.catalog.clone());
    let mut c = IncrementalChecker::new(file.constraints[0].clone(), Arc::clone(&catalog)).unwrap();
    assert!(c.step(transitions[0].time, &transitions[0].update).is_err());
}

#[test]
fn count_aggregate_constraint_end_to_end() {
    // No passenger may hold two or more concurrent reservations.
    let src = r#"
        relation reserved(passenger: str, flight: int)
        deny overbooked: reserved(p, f) && count g . (reserved(p, g)) >= 2
    "#;
    let log = r#"
        @1 +reserved("ann", 10)
        @2 +reserved("bob", 11)
        @3 +reserved("ann", 12)
        @4 -reserved("ann", 10)
        @5
    "#;
    let file = parse_file(src).unwrap();
    let catalog = Arc::new(file.catalog.clone());
    let mut checkers = checkers_for(&file);
    let mut per_time = Vec::new();
    for tr in parse_log(log).unwrap() {
        let reports: Vec<_> = checkers
            .iter_mut()
            .map(|c| c.step(tr.time, &tr.update).unwrap())
            .collect();
        for r in &reports[1..] {
            assert_eq!(&reports[0], r, "checker disagreement at {}", tr.time);
        }
        per_time.push((tr.time.0, reports[0].violation_count()));
    }
    // Ann is double-booked at t=3 (both her flights are witnesses) and back
    // to one reservation from t=4.
    assert_eq!(per_time, vec![(1, 0), (2, 0), (3, 2), (4, 0), (5, 0)]);
    let _ = catalog;
}

#[test]
fn compile_rejects_bad_constraint_files() {
    // Unknown relation in a constraint.
    let bad = "relation r(x: int)\ndeny d: s(x) && r(x)";
    let file = parse_file(bad).unwrap();
    let catalog = Arc::new(file.catalog.clone());
    assert!(IncrementalChecker::new(file.constraints[0].clone(), catalog).is_err());

    // Unsafe constraint (unguarded negation).
    let unsafe_file = "relation r(x: int)\ndeny d: !r(x)";
    let file = parse_file(unsafe_file).unwrap();
    let catalog = Arc::new(file.catalog.clone());
    assert!(IncrementalChecker::new(file.constraints[0].clone(), catalog).is_err());
}
