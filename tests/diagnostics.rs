//! Diagnostics quality: every class of user mistake gets a precise,
//! located, actionable error — parser, sort checker, safety analysis, log
//! parser, history replay.

use std::sync::Arc;

use rtic::core::{CompileError, IncrementalChecker};
use rtic::relation::{Catalog, Schema, Sort};
use rtic::temporal::parser::{parse_constraint, parse_file, parse_formula};
use rtic::temporal::safety::SafetyError;
use rtic::temporal::typecheck::TypeError;

fn catalog() -> Arc<Catalog> {
    Arc::new(
        Catalog::new()
            .with(
                "emp",
                Schema::of(&[("name", Sort::Str), ("dept", Sort::Str)]),
            )
            .unwrap()
            .with(
                "sal",
                Schema::of(&[("name", Sort::Str), ("amt", Sort::Int)]),
            )
            .unwrap(),
    )
}

fn compile_err(src: &str) -> CompileError {
    IncrementalChecker::new(parse_constraint(src).unwrap(), catalog()).unwrap_err()
}

// ---- parser ---------------------------------------------------------------

#[test]
fn parser_errors_carry_positions() {
    let e = parse_formula("emp(n,\n  d && q()").unwrap_err();
    assert_eq!(e.line, 2, "error on the second line: {e}");
    let shown = e.to_string();
    assert!(
        shown.starts_with("2:"),
        "position leads the message: {shown}"
    );
}

#[test]
fn parser_reports_what_it_expected() {
    for (src, expect) in [
        ("deny x emp(n, d)", "`:`"),
        ("deny x: emp(n, d", "`,`"),
        ("deny x: once[3] emp(n, d)", "`,`"),
        ("deny x: once[3,1] emp(n, d)", "empty metric interval"),
        ("deny x: emp(n, d) &&", "formula"),
        ("deny x: n", "comparison"),
    ] {
        let e = parse_constraint(src).unwrap_err();
        assert!(
            e.message.contains(expect),
            "`{src}` should mention {expect}, got: {e}"
        );
    }
}

#[test]
fn file_level_errors_name_the_duplicate() {
    let e = parse_file("relation r(x: int)\nrelation r(y: str)").unwrap_err();
    assert!(e.message.contains("already declared"), "{e}");
    let e = parse_file("relation r(x: int, x: str)").unwrap_err();
    assert!(e.message.contains("duplicate attribute"), "{e}");
}

// ---- sort checking ---------------------------------------------------------

#[test]
fn type_errors_are_specific() {
    match compile_err("deny d: nosuchrel(x) && emp(x, y)") {
        CompileError::Type(TypeError::UnknownRelation { relation }) => {
            assert_eq!(relation.as_str(), "nosuchrel")
        }
        other => panic!("expected UnknownRelation, got {other}"),
    }
    match compile_err("deny d: emp(n)") {
        CompileError::Type(TypeError::ArityMismatch {
            expected, found, ..
        }) => {
            assert_eq!((expected, found), (2, 1))
        }
        other => panic!("expected ArityMismatch, got {other}"),
    }
    match compile_err("deny d: emp(v, d) && sal(n, v)") {
        CompileError::Type(TypeError::SortConflict { .. }) => {}
        other => panic!("expected SortConflict, got {other}"),
    }
    match compile_err("deny d: emp(n, d) && n < d") {
        CompileError::Type(TypeError::OrderOnNonInt { .. }) => {}
        other => panic!("expected OrderOnNonInt, got {other}"),
    }
    match compile_err("deny d: emp(n, 3)") {
        CompileError::Type(TypeError::ConstSortMismatch { .. }) => {}
        other => panic!("expected ConstSortMismatch, got {other}"),
    }
}

// ---- safety ----------------------------------------------------------------

#[test]
fn safety_errors_name_the_problem_variables() {
    match compile_err("deny d: !emp(n, d)") {
        CompileError::Safety(SafetyError::UnguardedNegation { vars }) => {
            assert_eq!(vars.len(), 2)
        }
        other => panic!("expected UnguardedNegation, got {other}"),
    }
    match compile_err("deny d: emp(n, d) || sal(n, a)") {
        CompileError::Safety(SafetyError::UnbalancedOr { asymmetric }) => {
            let names: Vec<&str> = asymmetric.iter().map(|v| v.name().as_str()).collect();
            assert!(names.contains(&"d") && names.contains(&"a"), "{names:?}");
        }
        other => panic!("expected UnbalancedOr, got {other}"),
    }
    match compile_err("deny d: hist[0,3] emp(n, d)") {
        CompileError::Safety(SafetyError::UnguardedHist { .. }) => {}
        other => panic!("expected UnguardedHist, got {other}"),
    }
    match compile_err("deny d: sal(n, a) since emp(n, d)") {
        CompileError::Safety(SafetyError::SinceLeftNotCovered { vars }) => {
            assert_eq!(vars[0].name().as_str(), "a")
        }
        other => panic!("expected SinceLeftNotCovered, got {other}"),
    }
    match compile_err("deny d: exists z . emp(n, d)") {
        CompileError::Safety(SafetyError::UnboundQuantifiedVar { var }) => {
            // Quantified vars are renamed apart; the original name prefixes.
            assert!(var.name().as_str().starts_with('z'), "{var}");
        }
        other => panic!("expected UnboundQuantifiedVar, got {other}"),
    }
}

#[test]
fn safety_error_messages_read_well() {
    let msg = compile_err("deny d: !emp(n, d)").to_string();
    assert!(
        msg.contains("negation") && msg.contains("d, n"),
        "lexicographic variable order in diagnostics: {msg}"
    );
    // Sorts are checked before safety, so the undetermined comparison is a
    // type error; a sort-determined one falls through to safety.
    let msg = compile_err("deny d: emp(a, b) && x < y").to_string();
    assert!(msg.contains("not determined"), "{msg}");
    let msg = compile_err("deny d: sal(n, a) && x < 3").to_string();
    assert!(
        msg.contains("never be evaluated") && msg.contains("x < 3"),
        "{msg}"
    );
}

// ---- runtime ----------------------------------------------------------------

#[test]
fn runtime_errors_locate_the_offending_state() {
    use rtic::core::Checker;
    use rtic::relation::{tuple, Update};
    use rtic::temporal::TimePoint;
    let mut c = IncrementalChecker::new(
        parse_constraint("deny d: emp(n, d) && sal(n, a)").unwrap(),
        catalog(),
    )
    .unwrap();
    c.step(TimePoint(5), &Update::new()).unwrap();
    let e = c.step(TimePoint(3), &Update::new()).unwrap_err();
    assert!(e.to_string().contains("@3"), "{e}");
    let e = c
        .step(
            TimePoint(9),
            &Update::new().with_insert("emp", tuple![1, 2]),
        )
        .unwrap_err();
    assert!(e.to_string().contains("sort mismatch"), "{e}");
}
