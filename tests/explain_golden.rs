//! Golden test for the explain plan: the output is deterministic, and this
//! pins its exact shape so accidental changes to compilation (conjunct
//! ordering, aux strategy selection, horizon analysis) are caught.

use std::sync::Arc;

use rtic::core::{explain::explain, CompiledConstraint};
use rtic::relation::{Catalog, Schema, Sort};
use rtic::temporal::parser::parse_constraint;

fn catalog() -> Arc<Catalog> {
    Arc::new(
        Catalog::new()
            .with(
                "reserved",
                Schema::of(&[("p", Sort::Str), ("f", Sort::Int)]),
            )
            .unwrap()
            .with(
                "confirmed",
                Schema::of(&[("p", Sort::Str), ("f", Sort::Int)]),
            )
            .unwrap(),
    )
}

#[test]
fn motivating_constraint_plan_is_stable() {
    let compiled = CompiledConstraint::compile(
        parse_constraint(
            "deny unconfirmed: reserved(p, f) && once[2,9] reserved(p, f) \
             && !once[0,9] confirmed(p, f)",
        )
        .unwrap(),
        catalog(),
    )
    .unwrap();
    let expected = "\
constraint : deny unconfirmed: reserved(p, f) && once[2,9] reserved(p, f) && !(once[0,9] confirmed(p, f))
denial body: reserved(p, f) && once[2,9] reserved(p, f) && !(once[0,9] confirmed(p, f))
witnesses  : (f: int, p: str)
horizon    : 9 ticks (windowed checking is exact)
aux state  : 2 temporal node(s)
  [0] once[2,9] reserved(p, f)
      keys(f, p); pruned witness-timestamp deque per key (≤ 10 stamps/key)
  [1] once[0,9] confirmed(p, f)
      keys(f, p); latest witness timestamp per key (a = 0 specialization)
per-key stamp bound: 10
evaluation plan:
  1. reserved(p, f)  — generates f, p
  2. once[2,9] reserved(p, f)  — filter
  3. !(once[0,9] confirmed(p, f))  — filter
";
    let got = explain(&compiled);
    assert_eq!(
        got, expected,
        "explain output changed; if intentional, update this golden:\n{got}"
    );
}

#[test]
fn since_and_hist_strategies_are_named() {
    let compiled = CompiledConstraint::compile(
        parse_constraint(
            "deny d: reserved(p, f) && (reserved(p, f) since[3,*] confirmed(p, f)) \
             && hist[1,*] reserved(p, f)",
        )
        .unwrap(),
        catalog(),
    )
    .unwrap();
    let text = explain(&compiled);
    assert!(
        text.contains("earliest anchor timestamp per key (b = ∞ specialization)"),
        "{text}"
    );
    assert!(
        text.contains("unbroken-prefix end per key (filter)"),
        "{text}"
    );
    assert!(
        text.contains("unbounded (aux space bounded by the active domain)"),
        "{text}"
    );
}
