//! Every checker realization agrees on every generated domain workload,
//! and every injected violation is detected at its first-definite state —
//! the strong form of experiment T4 run as a test.
//!
//! Cross-backend agreement goes through the `rtic-oracle` differential
//! harness, so these workloads exercise the full mode list (naive,
//! incremental, windowed, active, fleet sequential/parallel, and the
//! checkpoint/resume stitch), not just the four standalone checkers.

use std::sync::Arc;

use rtic::core::{Checker, IncrementalChecker, StepReport};
use rtic::temporal::Constraint;
use rtic::workload::{Audit, Generated, Library, Monitor, RandomWorkload, Reservations};
use rtic_oracle::{check_case, Case, Mode};

/// Runs one constraint of a workload through every oracle mode, asserting
/// byte-identical reports, and returns the reports for detection checks.
fn run_all(generated: &Generated, constraint: &Constraint) -> Vec<StepReport> {
    let case = Case {
        index: 0,
        seed: 7, // fixes the stitch kill step; any value works
        catalog: Arc::clone(&generated.catalog),
        constraint: constraint.clone(),
        transitions: generated.transitions.clone(),
    };
    if let Some(d) = check_case(&case, &Mode::ALL) {
        panic!(
            "backends diverged on constraint `{}`:\n{d}",
            constraint.name
        );
    }
    let mut inc = IncrementalChecker::new(constraint.clone(), Arc::clone(&generated.catalog))
        .expect("workload constraint compiles");
    generated
        .transitions
        .iter()
        .map(|tr| inc.step(tr.time, &tr.update).expect("step succeeds"))
        .collect()
}

fn assert_expectations(generated: &Generated, reports: &[StepReport]) {
    for exp in &generated.expected {
        assert!(
            reports.iter().any(|r| exp.found_in(r)),
            "expected violation at {} not reported",
            exp.time
        );
    }
}

#[test]
fn reservations_workload_agrees_and_detects() {
    let generated = Reservations {
        steps: 80,
        new_per_step: 2,
        deadline: 4,
        violation_rate: 0.15,
        seed: 21,
    }
    .generate();
    assert!(!generated.expected.is_empty());
    let reports = run_all(&generated, &generated.constraints[0]);
    assert_expectations(&generated, &reports);
}

#[test]
fn library_workload_agrees_and_detects() {
    let generated = Library {
        steps: 70,
        checkouts_per_step: 2,
        period: 6,
        violation_rate: 0.2,
        late_by: 2,
        seed: 22,
    }
    .generate();
    assert!(!generated.expected.is_empty());
    let reports = run_all(&generated, &generated.constraints[0]);
    assert_expectations(&generated, &reports);
}

#[test]
fn monitor_workload_agrees_and_detects() {
    let generated = Monitor {
        steps: 70,
        sensors: 6,
        raise_rate: 0.15,
        ack_window: 3,
        violation_rate: 0.3,
        spike_rate: 0.05,
        seed: 23,
    }
    .generate();
    assert!(!generated.expected.is_empty());
    let mut all_reports = Vec::new();
    for constraint in &generated.constraints {
        all_reports.extend(run_all(&generated, constraint));
    }
    assert_expectations(&generated, &all_reports);
}

#[test]
fn audit_workload_agrees_and_detects() {
    let generated = Audit {
        steps: 80,
        unapproved_rate: 0.15,
        flag_rate: 0.08,
        ..Default::default()
    }
    .generate();
    assert!(!generated.expected.is_empty());
    let mut all_reports = Vec::new();
    for constraint in &generated.constraints {
        all_reports.extend(run_all(&generated, constraint));
    }
    assert_expectations(&generated, &all_reports);
}

#[test]
fn random_workload_agrees() {
    for seed in [1u64, 2, 3] {
        let generated = RandomWorkload {
            steps: 50,
            domain: 12,
            updates_per_step: 6,
            bound: 4,
            seed,
            max_gap: 3, // exercise clock gaps across all four checkers
        }
        .generate();
        run_all(&generated, &generated.constraints[0]);
    }
}

#[test]
fn detections_happen_at_the_earliest_definite_state_not_before() {
    // For the reservations workload: the first report of each witness is
    // exactly at its recorded expected time.
    let generated = Reservations {
        steps: 60,
        new_per_step: 1,
        deadline: 5,
        violation_rate: 0.5,
        seed: 99,
    }
    .generate();
    let catalog = &generated.catalog;
    let mut inc =
        IncrementalChecker::new(generated.constraints[0].clone(), Arc::clone(catalog)).unwrap();
    let mut first_seen: std::collections::BTreeMap<Vec<rtic::relation::Value>, u64> =
        Default::default();
    for tr in &generated.transitions {
        let r = inc.step(tr.time, &tr.update).unwrap();
        for row in r.violations.rows() {
            first_seen.entry(row.values().to_vec()).or_insert(tr.time.0);
        }
    }
    assert_eq!(first_seen.len(), generated.expected.len());
    let expected_times: std::collections::BTreeSet<u64> =
        generated.expected.iter().map(|e| e.time.0).collect();
    for (_, t) in first_seen {
        assert!(
            expected_times.contains(&t),
            "first detection at unexpected time {t}"
        );
    }
}
