//! Integration tests for `rtic serve`: the resident monitoring daemon's
//! line protocol, bounded-queue backpressure, graceful drain, and
//! degraded-mode reporting. Servers run in-process on unix sockets via
//! `rtic::cli::run`, the same entry point the binary uses; clients are
//! either the bundled [`rtic::server::Client`] or a raw stream when a
//! test needs to observe the protocol without retry magic.

use std::io::{BufRead as _, BufReader, Write as _};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use rtic::server::Client;

const CONSTRAINTS: &str = r#"
relation reserved(p: str, f: int)
relation confirmed(p: str, f: int)
deny unconfirmed: reserved(p, f) && once[2,*] reserved(p, f) && !once confirmed(p, f)
deny reconfirm: confirmed(p, f) && once[1,*] confirmed(p, f)
"#;

const LOG: &str = r#"
@0 +reserved("ann", 17)
@1
@2
@3 +confirmed("ann", 17)
@4 +reserved("bob", 9)
@5
@6 +reserved("cat", 1)
@7
@8 +confirmed("bob", 9)
@9
@10
@11 +confirmed("cat", 1)
"#;

fn run(args: &[&str]) -> (Result<i32, String>, String) {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = String::new();
    let code = rtic::cli::run(&args, &mut out);
    (code, out)
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rtic-serve-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn temp_file(name: &str, content: &str) -> PathBuf {
    let path = temp_path(name);
    std::fs::write(&path, content).unwrap();
    path
}

/// Spawns `rtic::cli::run(args)` on its own thread (the daemon).
fn spawn_server(args: &[&str]) -> std::thread::JoinHandle<(Result<i32, String>, String)> {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    std::thread::spawn(move || {
        let mut out = String::new();
        let code = rtic::cli::run(&args, &mut out);
        (code, out)
    })
}

fn connect(sock: &Path) -> Client {
    Client::connect_unix_retry(sock, Duration::from_secs(10)).unwrap()
}

/// A protocol-level connection with no BUSY retry: tests that count
/// raw replies use this instead of the bundled client.
struct Raw {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Raw {
    fn connect(sock: &Path) -> Raw {
        let deadline = Instant::now() + Duration::from_secs(10);
        let stream = loop {
            match UnixStream::connect(sock) {
                Ok(s) => break s,
                Err(e) if Instant::now() >= deadline => panic!("connect {sock:?}: {e}"),
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        };
        let reader = BufReader::new(stream.try_clone().unwrap());
        Raw {
            reader,
            writer: stream,
        }
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        self.writer.flush().unwrap();
    }

    fn read_line(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).unwrap();
        assert!(n > 0, "server closed the connection unexpectedly");
        line.trim_end().to_string()
    }

    /// Sends (via the closure) then reads one reply line.
    fn read_line_after(&mut self, send: &mut dyn FnMut(&mut Raw)) -> String {
        send(self);
        self.read_line()
    }
}

fn log_lines() -> Vec<&'static str> {
    LOG.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect()
}

fn violations(out: &str) -> Vec<String> {
    out.lines()
        .filter(|l| l.contains("VIOLATION"))
        .map(str::to_string)
        .collect()
}

#[test]
fn ping_status_and_protocol_errors_over_a_raw_stream() {
    let c = temp_file("proto.rtic", CONSTRAINTS);
    let sock = temp_path("proto.sock");
    let server = spawn_server(&[
        "serve",
        c.to_str().unwrap(),
        "--listen",
        &format!("unix:{}", sock.display()),
    ]);

    let mut raw = Raw::connect(&sock);
    raw.send("PING");
    assert_eq!(raw.read_line(), "OK pong");

    // Blank lines and comments draw no reply; the next command still
    // pairs with the next reply.
    raw.send("");
    raw.send("# a comment");
    raw.send("QUERY status");
    let status = raw.read_line();
    assert!(status.starts_with("OK state=running"), "{status}");
    assert!(status.contains("steps=0"), "{status}");

    // Unknown commands and malformed updates are ERR, not disconnects.
    raw.send("FROB");
    assert!(raw.read_line().starts_with("ERR "));
    raw.send("UPDATE @not-a-time +wat(");
    assert!(raw.read_line().starts_with("ERR "));
    raw.send("PING");
    assert_eq!(raw.read_line(), "OK pong");

    raw.send("DRAIN");
    assert!(raw.read_line().starts_with("OK drained"));
    let (code, out) = server.join().unwrap();
    assert_eq!(code.unwrap(), 0, "{out}");
}

/// The backpressure flood drill: with the engine paused, a burst far
/// over the queue bound must (a) never grow the queue past its
/// capacity and (b) answer every rejected update with `BUSY` — the
/// daemon sheds load instead of buffering without bound.
#[test]
fn flood_never_exceeds_the_queue_bound_and_rejects_with_busy() {
    let c = temp_file("flood.rtic", CONSTRAINTS);
    let sock = temp_path("flood.sock");
    let server = spawn_server(&[
        "serve",
        c.to_str().unwrap(),
        "--listen",
        &format!("unix:{}", sock.display()),
        "--queue",
        "4",
        "--retry-ms",
        "7",
    ]);

    let mut raw = Raw::connect(&sock);
    raw.send("PAUSE");
    assert_eq!(raw.read_line(), "OK paused");

    // 20 updates into a held queue of 4: exactly 16 must be shed.
    for t in 1..=20 {
        raw.send(&format!("@{t}"));
    }
    for i in 0..16 {
        let reply = raw.read_line();
        assert_eq!(reply, "BUSY 7", "rejected update {i} got: {reply}");
    }

    let status = raw.read_line_after(&mut |raw| raw.send("QUERY status"));
    assert!(status.contains("queue=4/4"), "{status}");
    assert!(status.contains("peak=4"), "the bound held: {status}");
    assert!(status.contains("shed=16"), "{status}");

    // Resume: the four held updates are processed and acked in order.
    raw.send("RESUME");
    assert_eq!(raw.read_line(), "OK resumed");
    for _ in 0..4 {
        let reply = raw.read_line();
        assert!(reply.starts_with("OK "), "{reply}");
    }

    raw.send("DRAIN");
    assert!(raw.read_line().starts_with("OK drained steps=4"));
    let (code, out) = server.join().unwrap();
    assert_eq!(code.unwrap(), 0, "{out}");
    assert!(out.contains("drained: 4 transition(s)"), "{out}");
}

/// The bundled client's capped-backoff retry absorbs `BUSY` until the
/// queue frees up, then the update lands.
#[test]
fn bundled_client_retries_busy_until_capacity_frees() {
    let c = temp_file("retry.rtic", CONSTRAINTS);
    let sock = temp_path("retry.sock");
    let server = spawn_server(&[
        "serve",
        c.to_str().unwrap(),
        "--listen",
        &format!("unix:{}", sock.display()),
        "--queue",
        "2",
    ]);

    // Hold the engine and fill the queue from a raw control stream.
    let mut control = Raw::connect(&sock);
    control.send("PAUSE");
    assert_eq!(control.read_line(), "OK paused");
    control.send("@1");
    control.send("@2");

    // Resume 150ms from now, while the bundled client is retrying.
    let resumer = std::thread::spawn({
        let sock = sock.clone();
        move || {
            std::thread::sleep(Duration::from_millis(150));
            let mut raw = Raw::connect(&sock);
            raw.send("RESUME");
            assert_eq!(raw.read_line(), "OK resumed");
        }
    });

    let mut client = connect(&sock);
    let reply = client.send_update("@3").unwrap();
    assert_eq!(reply.ok, "0", "the update landed after retries");
    assert!(
        client.busy_retries() >= 1,
        "the full queue pushed back at least once"
    );
    resumer.join().unwrap();

    assert!(client.drain().unwrap().starts_with("drained steps=3"));
    let (code, out) = server.join().unwrap();
    assert_eq!(code.unwrap(), 0, "{out}");
}

/// Streaming the log through the daemon reports exactly what batch
/// `rtic check` reports, and a graceful drain leaves a valid final
/// checkpoint behind.
#[test]
fn streamed_replies_match_batch_check_and_drain_checkpoints() {
    let c = temp_file("stream.rtic", CONSTRAINTS);
    let l = temp_file("stream.rticlog", LOG);
    let sock = temp_path("stream.sock");
    let ckpt = temp_path("stream.ckpt");
    std::fs::remove_file(&ckpt).ok();
    let server = spawn_server(&[
        "serve",
        c.to_str().unwrap(),
        "--listen",
        &format!("unix:{}", sock.display()),
        "--checkpoint",
        ckpt.to_str().unwrap(),
    ]);

    let (code, batch) = run(&["check", c.to_str().unwrap(), l.to_str().unwrap()]);
    assert_eq!(code.unwrap(), 1, "{batch}");

    let mut client = connect(&sock);
    let mut streamed = Vec::new();
    for line in log_lines() {
        let reply = client.send_update(line).unwrap();
        streamed.extend(reply.violations);
    }
    assert_eq!(
        streamed,
        violations(&batch),
        "per-update replies diverge from rtic check"
    );

    let drained = client.drain().unwrap();
    assert!(drained.contains("steps=12"), "{drained}");
    assert!(drained.contains("witnesses=17"), "{drained}");
    let (code, out) = server.join().unwrap();
    assert_eq!(code.unwrap(), 0, "{out}");
    assert!(out.contains("checkpoint written to"), "{out}");

    let bytes = std::fs::read(&ckpt).unwrap();
    assert!(
        bytes.starts_with(b"rtic-checkpoint-set v2"),
        "drain leaves a sealed container"
    );
}

/// `rtic send` end to end: stream a log file at a daemon, print the
/// violations, drain, and exit 1 because witnesses were found.
#[test]
fn send_command_streams_a_log_file_and_drains() {
    let c = temp_file("sendcmd.rtic", CONSTRAINTS);
    let l = temp_file("sendcmd.rticlog", LOG);
    let sock = temp_path("sendcmd.sock");
    let report = temp_path("sendcmd.report");
    let server = spawn_server(&[
        "serve",
        c.to_str().unwrap(),
        "--listen",
        &format!("unix:{}", sock.display()),
        "--report",
        report.to_str().unwrap(),
    ]);

    let (code, out) = run(&[
        "send",
        l.to_str().unwrap(),
        "--connect",
        &format!("unix:{}", sock.display()),
        "--drain",
    ]);
    assert_eq!(code.unwrap(), 1, "witnesses found: {out}");
    assert!(
        out.contains("sent 12 update(s): 17 violation witness(es)"),
        "{out}"
    );
    assert!(out.contains("server drained"), "{out}");

    let (code, _) = server.join().unwrap();
    assert_eq!(code.unwrap(), 0);

    let (code, batch) = run(&["check", c.to_str().unwrap(), l.to_str().unwrap()]);
    assert_eq!(code.unwrap(), 1, "{batch}");
    let report_text = std::fs::read_to_string(&report).unwrap();
    assert_eq!(
        report_text.lines().collect::<Vec<_>>(),
        violations(&batch)
            .iter()
            .map(String::as_str)
            .collect::<Vec<_>>(),
        "the final report file matches batch check"
    );
}

/// A quarantined engine degrades the fleet but never kills the daemon:
/// status flips to DEGRADED, the drain still completes, and the
/// operator sees which constraint is out.
#[test]
fn engine_panic_degrades_status_but_the_daemon_keeps_serving() {
    let c = temp_file("degraded.rtic", CONSTRAINTS);
    let sock = temp_path("degraded.sock");
    let server = spawn_server(&[
        "serve",
        c.to_str().unwrap(),
        "--listen",
        &format!("unix:{}", sock.display()),
        "--parallel",
        "2",
        "--failpoints",
        "engine-panic:unconfirmed=panic@2",
    ]);

    let mut client = connect(&sock);
    for line in log_lines() {
        client.send_update(line).unwrap();
    }
    let status = client.status().unwrap();
    assert!(status.starts_with("DEGRADED"), "{status}");
    assert!(status.contains("quarantined=1"), "{status}");

    client.drain().unwrap();
    let (code, out) = server.join().unwrap();
    assert_eq!(code.unwrap(), 0, "a degraded drain still exits 0: {out}");
    assert!(
        out.contains("quarantined `unconfirmed`"),
        "the quarantine is reported, not silent: {out}"
    );
    assert!(out.contains("injected engine panic"), "{out}");
}

/// A client whose socket writes fail (the failpoint models a stalled
/// reader with a full kernel buffer) is disconnected instead of
/// wedging the daemon; other clients keep working and see the count.
#[test]
fn stalled_client_is_disconnected_and_counted() {
    let c = temp_file("stall.rtic", CONSTRAINTS);
    let sock = temp_path("stall.sock");
    let server = spawn_server(&[
        "serve",
        c.to_str().unwrap(),
        "--listen",
        &format!("unix:{}", sock.display()),
        "--failpoints",
        "serve.write=io-error@1",
    ]);

    // The first reply write hits the injected timeout: this client is
    // cut loose mid-request.
    let mut stalled = connect(&sock);
    let err = stalled.request("PING").unwrap_err();
    assert!(err.contains("closed") || err.contains("lost"), "{err}");

    // The daemon is still healthy for everyone else.
    let mut healthy = connect(&sock);
    assert_eq!(healthy.request("PING").unwrap().ok, "pong");
    let status = healthy.status().unwrap();
    assert!(status.contains("disconnected=1"), "{status}");

    healthy.drain().unwrap();
    let (code, out) = server.join().unwrap();
    assert_eq!(code.unwrap(), 0, "{out}");
    assert!(out.contains("disconnected 1 slow client(s)"), "{out}");
}

/// TICK advances wall-clock time with no tuples: a violation whose
/// window closes in silence is still caught, exactly as batch `check`
/// catches it from an empty log line.
#[test]
fn tick_advances_time_and_flushes_window_violations() {
    let c = temp_file("tick.rtic", CONSTRAINTS);
    let sock = temp_path("tick.sock");
    let server = spawn_server(&[
        "serve",
        c.to_str().unwrap(),
        "--listen",
        &format!("unix:{}", sock.display()),
    ]);

    let mut client = connect(&sock);
    let reply = client.send_update("@0 +reserved(\"ann\", 17)").unwrap();
    assert_eq!(reply.ok, "0");
    // `unconfirmed` needs the reservation to be 2+ old with no confirm:
    // two silent ticks make it fire.
    assert_eq!(client.request("TICK 1").unwrap().ok, "0");
    let reply = client.request("TICK 2").unwrap();
    assert_eq!(reply.ok, "1", "the aged reservation violates");
    assert_eq!(reply.violations.len(), 1);
    assert!(reply.violations[0].contains("unconfirmed"), "{reply:?}");

    client.drain().unwrap();
    server.join().unwrap().0.unwrap();
}

/// The API-level shutdown flag (what SIGTERM sets) drains gracefully:
/// queue flushed, final checkpoint, exit 0. In-process tests use a
/// local flag so parallel tests don't trip each other's servers; the
/// real signal path is drilled by the CI serve job with `kill -TERM`.
#[test]
fn shutdown_flag_drains_like_sigterm() {
    use rtic::server::{serve, Listen, ServeConfig};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let file = rtic::temporal::parser::parse_file(CONSTRAINTS).unwrap();
    let catalog = Arc::new(file.catalog.clone());
    let sock = temp_path("sigterm.sock");
    let ckpt = temp_path("sigterm.ckpt");
    std::fs::remove_file(&ckpt).ok();

    let flag = Arc::new(AtomicBool::new(false));
    let mut config = ServeConfig::new(Listen::Unix(sock.clone()));
    config.checkpoint = Some(ckpt.to_str().unwrap().to_string());
    config.shutdown = Some(Arc::clone(&flag));
    let server = std::thread::spawn(move || {
        let mut out = String::new();
        let code = serve(file.constraints, catalog, config, &mut out);
        (code, out)
    });

    let mut client = connect(&sock);
    for line in log_lines().into_iter().take(6) {
        client.send_update(line).unwrap();
    }
    flag.store(true, Ordering::SeqCst);

    let (code, out) = server.join().unwrap();
    assert_eq!(code.unwrap(), 0, "{out}");
    assert!(out.contains("drained: 6 transition(s)"), "{out}");
    assert!(out.contains("checkpoint written to"), "{out}");
    assert!(std::fs::read(&ckpt)
        .unwrap()
        .starts_with(b"rtic-checkpoint-set v2"));
}

/// Micro-batched serving: with the engine paused, the whole log piles
/// up in the queue; on resume a `--batch 4` engine drains it four jobs
/// per wakeup. Every per-update reply must still match batch `rtic
/// check` exactly, the drained totals must be unchanged, and the
/// metrics snapshot must show the batch counters (three batches of
/// four). `--vectorize` rides along so the columnar path serves too.
#[test]
fn batched_serve_replies_match_batch_check_and_record_batch_metrics() {
    let c = temp_file("batched.rtic", CONSTRAINTS);
    let l = temp_file("batched.rticlog", LOG);
    let sock = temp_path("batched.sock");
    let ckpt = temp_path("batched.ckpt");
    let metrics = temp_path("batched.metrics.json");
    std::fs::remove_file(&ckpt).ok();
    let server = spawn_server(&[
        "serve",
        c.to_str().unwrap(),
        "--listen",
        &format!("unix:{}", sock.display()),
        "--batch",
        "4",
        "--vectorize",
        "--checkpoint",
        ckpt.to_str().unwrap(),
        "--checkpoint-every",
        "3",
        "--metrics",
        metrics.to_str().unwrap(),
    ]);

    let (code, batch) = run(&["check", c.to_str().unwrap(), l.to_str().unwrap()]);
    assert_eq!(code.unwrap(), 1, "{batch}");

    // Hold the engine so all 12 updates queue up, then release: the
    // engine sees a full backlog and drains it in micro-batches.
    let mut raw = Raw::connect(&sock);
    raw.send("PAUSE");
    assert_eq!(raw.read_line(), "OK paused");
    for line in log_lines() {
        raw.send(line);
    }
    raw.send("RESUME");
    assert_eq!(raw.read_line(), "OK resumed");

    // Per-update replies arrive in order: zero or more VIOL lines, then
    // `OK <witnesses>` — batching must not reorder or merge them.
    let mut streamed = Vec::new();
    for i in 0..log_lines().len() {
        loop {
            let reply = raw.read_line();
            if let Some(v) = reply.strip_prefix("VIOL ") {
                streamed.push(v.to_string());
            } else {
                assert!(reply.starts_with("OK "), "update {i}: {reply}");
                break;
            }
        }
    }
    assert_eq!(
        streamed,
        violations(&batch),
        "batched replies diverge from rtic check"
    );

    raw.send("DRAIN");
    let drained = raw.read_line();
    assert!(drained.contains("steps=12"), "{drained}");
    assert!(drained.contains("witnesses=17"), "{drained}");
    let (code, out) = server.join().unwrap();
    assert_eq!(code.unwrap(), 0, "{out}");
    assert!(out.contains("checkpoint written to"), "{out}");

    let doc = rtic::obs::json::parse(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
    assert_eq!(doc.get("batches").and_then(|v| v.as_u64()), Some(3));
    assert_eq!(doc.get("batch_lines").and_then(|v| v.as_u64()), Some(12));
    assert_eq!(doc.get("last_batch_size").and_then(|v| v.as_u64()), Some(4));
}

/// `--batch 0` is rejected up front.
#[test]
fn serve_batch_flag_validation() {
    let c = temp_file("batchval.rtic", CONSTRAINTS);
    let (code, _) = run(&[
        "serve",
        c.to_str().unwrap(),
        "--listen",
        "unix:/tmp/never-bound-batch.sock",
        "--batch",
        "0",
    ]);
    assert!(code.unwrap_err().contains("--batch"));
}

/// `--resume` without `--checkpoint` is rejected up front; `--resume`
/// with an empty rotation set (first boot) starts fresh instead of
/// erroring, so operators can pass `--resume` unconditionally.
#[test]
fn serve_resume_flag_validation_and_first_boot() {
    let c = temp_file("val.rtic", CONSTRAINTS);
    let (code, _) = run(&[
        "serve",
        c.to_str().unwrap(),
        "--listen",
        "unix:/tmp/never-bound.sock",
        "--resume",
    ]);
    assert!(code.unwrap_err().contains("--resume requires --checkpoint"));

    let missing = temp_path("val-missing.ckpt");
    std::fs::remove_file(&missing).ok();
    let sock = temp_path("val.sock");
    let server = spawn_server(&[
        "serve",
        c.to_str().unwrap(),
        "--listen",
        &format!("unix:{}", sock.display()),
        "--checkpoint",
        missing.to_str().unwrap(),
        "--resume",
    ]);
    let mut client = connect(&sock);
    let status = client.status().unwrap();
    assert!(status.contains("steps=0"), "fresh start: {status}");
    client.drain().unwrap();
    let (code, out) = server.join().unwrap();
    assert_eq!(code.unwrap(), 0, "{out}");
    assert!(!out.contains("resumed from"), "{out}");
}
