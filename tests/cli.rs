//! CLI integration tests, driving `rtic::cli::run` with captured output.

use std::io::Write as _;

fn run(args: &[&str]) -> (Result<i32, String>, String) {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = String::new();
    let code = rtic::cli::run(&args, &mut out);
    (code, out)
}

fn temp_file(name: &str, content: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rtic-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(content.as_bytes()).unwrap();
    path
}

const CONSTRAINTS: &str = r#"
relation reserved(p: str, f: int)
relation confirmed(p: str, f: int)
deny unconfirmed: reserved(p, f) && once[2,*] reserved(p, f) && !once confirmed(p, f)
"#;

const LOG: &str = r#"
@0 +reserved("ann", 17)
@1
@2
@3 +confirmed("ann", 17)
@4
"#;

#[test]
fn help_prints_usage() {
    let (code, out) = run(&["--help"]);
    assert_eq!(code.unwrap(), 0);
    assert!(out.contains("USAGE"));
    let (code, out) = run(&[]);
    assert_eq!(code.unwrap(), 0);
    assert!(out.contains("USAGE"));
}

#[test]
fn unknown_subcommand_errors() {
    let (code, _) = run(&["frobnicate"]);
    assert!(code.unwrap_err().contains("frobnicate"));
}

#[test]
fn check_reports_violations_and_exit_code() {
    let c = temp_file("c.rtic", CONSTRAINTS);
    let l = temp_file("l.rticlog", LOG);
    let (code, out) = run(&["check", c.to_str().unwrap(), l.to_str().unwrap()]);
    assert_eq!(code.unwrap(), 1, "violations → exit 1");
    assert!(out.contains("VIOLATION"), "{out}");
    assert!(out.contains("@2"), "flagged at the deadline: {out}");
    // Ann confirms at 3 — 2 violating states (t=2 only... t=3 confirmed).
    assert!(out.contains("over 1 state(s)"), "{out}");
}

#[test]
fn check_clean_log_exits_zero() {
    let c = temp_file("c2.rtic", CONSTRAINTS);
    let l = temp_file(
        "l2.rticlog",
        "@0 +reserved(\"bob\", 9)\n@1 +confirmed(\"bob\", 9)\n@5\n",
    );
    let (code, out) = run(&["check", c.to_str().unwrap(), l.to_str().unwrap(), "--stats"]);
    assert_eq!(code.unwrap(), 0);
    assert!(out.contains("0 violation witness(es)"), "{out}");
    assert!(out.contains("space[unconfirmed]"), "{out}");
    assert!(out.contains("plan[incremental]"), "{out}");
}

#[test]
fn all_checker_backends_agree_via_cli() {
    let c = temp_file("c3.rtic", CONSTRAINTS);
    let l = temp_file("l3.rticlog", LOG);
    let mut summaries = Vec::new();
    for backend in ["incremental", "naive", "windowed", "active"] {
        let (code, out) = run(&[
            "check",
            c.to_str().unwrap(),
            l.to_str().unwrap(),
            "--checker",
            backend,
            "--quiet",
        ]);
        assert_eq!(code.unwrap(), 1, "{backend}");
        let summary = out
            .lines()
            .find(|l| l.contains("violation witness"))
            .unwrap()
            .replace(backend, "X");
        summaries.push(summary);
    }
    assert!(summaries.windows(2).all(|w| w[0] == w[1]), "{summaries:?}");
}

#[test]
fn check_rejects_bad_inputs() {
    let c = temp_file("c4.rtic", CONSTRAINTS);
    let l = temp_file("l4.rticlog", LOG);
    let (code, _) = run(&["check", "/nonexistent.rtic", l.to_str().unwrap()]);
    assert!(code.unwrap_err().contains("cannot read"));
    let (code, _) = run(&["check", c.to_str().unwrap(), "/nonexistent.log"]);
    assert!(code.unwrap_err().contains("cannot read"));
    let bad = temp_file("bad.rtic", "relation r(x: int)\ndeny d: !r(x)");
    let (code, _) = run(&["check", bad.to_str().unwrap(), l.to_str().unwrap()]);
    assert!(code.unwrap_err().contains("constraint `d`"));
    let (code, _) = run(&[
        "check",
        c.to_str().unwrap(),
        l.to_str().unwrap(),
        "--checker",
        "quantum",
    ]);
    assert!(code.unwrap_err().contains("quantum"));
}

#[test]
fn parallel_check_matches_sequential_output() {
    let c = temp_file("par.rtic", CONSTRAINTS);
    let l = temp_file("par.rticlog", LOG);
    let (code, seq) = run(&["check", c.to_str().unwrap(), l.to_str().unwrap()]);
    assert_eq!(code.unwrap(), 1);
    for workers in ["1", "3", "auto"] {
        let (code, par) = run(&[
            "check",
            c.to_str().unwrap(),
            l.to_str().unwrap(),
            "--parallel",
            workers,
        ]);
        assert_eq!(code.unwrap(), 1, "--parallel {workers}");
        assert_eq!(par, seq, "--parallel {workers} changed the output");
    }
}

#[test]
fn parallel_check_keeps_trace_and_metrics_working() {
    let c = temp_file("parm.rtic", CONSTRAINTS);
    let l = temp_file("parm.rticlog", LOG);
    let m = temp_file("parm.json", "");
    let t = temp_file("parm.jsonl", "");
    let (code, _) = run(&[
        "check",
        c.to_str().unwrap(),
        l.to_str().unwrap(),
        "--parallel",
        "2",
        "--quiet",
        "--metrics",
        m.to_str().unwrap(),
        "--trace",
        t.to_str().unwrap(),
        "--sample-space",
        "2",
    ]);
    assert_eq!(code.unwrap(), 1);
    let doc = rtic::obs::json::parse(&std::fs::read_to_string(&m).unwrap()).unwrap();
    assert_eq!(doc.get("steps").and_then(|v| v.as_u64()), Some(5));
    assert_eq!(doc.get("violations").and_then(|v| v.as_u64()), Some(1));
    let trace_text = std::fs::read_to_string(&t).unwrap();
    let steps = trace_text
        .lines()
        .filter(|l| l.contains("\"event\":\"step\""))
        .count();
    assert_eq!(steps, 5, "one step event per transition: {trace_text}");
}

const EXTRA_CONSTRAINTS: &str = r#"
relation reserved(p: str, f: int)
relation vip(p: str)
deny vip_unreserved: vip(p) && !(exists f . once reserved(p, f))
"#;

#[test]
fn repeatable_constraints_flag_merges_files() {
    let c1 = temp_file("merge1.rtic", CONSTRAINTS);
    let c2 = temp_file("merge2.rtic", EXTRA_CONSTRAINTS);
    let l = temp_file(
        "merge.rticlog",
        "@0 +reserved(\"ann\", 17)\n@1 +vip(\"zoe\")\n@2\n@3 +confirmed(\"ann\", 17)\n@4\n",
    );
    for parallel in [&[][..], &["--parallel", "2"][..]] {
        let mut args = vec![
            "check",
            c1.to_str().unwrap(),
            l.to_str().unwrap(),
            "--constraints",
            c2.to_str().unwrap(),
        ];
        args.extend_from_slice(parallel);
        let (code, out) = run(&args);
        assert_eq!(code.unwrap(), 1, "{out}");
        assert!(out.contains("2 constraint(s)"), "{out}");
        assert!(out.contains("unconfirmed"), "violation from file 1: {out}");
        assert!(
            out.contains("vip_unreserved"),
            "violation from file 2: {out}"
        );
    }
}

#[test]
fn constraints_flag_rejects_conflicts() {
    let c1 = temp_file("conf1.rtic", CONSTRAINTS);
    let clash_schema = temp_file(
        "conf2.rtic",
        "relation reserved(p: int)\ndeny other: reserved(p) && !reserved(p)",
    );
    let l = temp_file("conf.rticlog", LOG);
    let (code, _) = run(&[
        "check",
        c1.to_str().unwrap(),
        l.to_str().unwrap(),
        "--constraints",
        clash_schema.to_str().unwrap(),
    ]);
    assert!(code.unwrap_err().contains("already declared"));
    let clash_name = temp_file(
        "conf3.rtic",
        "relation reserved(p: str, f: int)\ndeny unconfirmed: reserved(p, f) && reserved(p, f)",
    );
    let (code, _) = run(&[
        "check",
        c1.to_str().unwrap(),
        l.to_str().unwrap(),
        "--constraints",
        clash_name.to_str().unwrap(),
    ]);
    assert!(code.unwrap_err().contains("already defined"));
}

#[test]
fn parallel_flag_validation() {
    let c = temp_file("pv.rtic", CONSTRAINTS);
    let l = temp_file("pv.rticlog", LOG);
    let base = [c.to_str().unwrap(), l.to_str().unwrap()];
    let (code, _) = run(&["check", base[0], base[1], "--parallel", "0"]);
    assert!(code.unwrap_err().contains("--parallel"));
    let (code, _) = run(&["check", base[0], base[1], "--parallel", "two"]);
    assert!(code.unwrap_err().contains("bad --parallel"));
    let (code, _) = run(&[
        "check",
        base[0],
        base[1],
        "--parallel",
        "2",
        "--checker",
        "naive",
    ]);
    assert!(code.unwrap_err().contains("incremental"));
    // Checkpointing composes with --parallel: the fleet is saved as one
    // multi-section container.
    let ckpt = temp_file("pv.ckpt", "");
    std::fs::remove_file(&ckpt).ok();
    let (code, out) = run(&[
        "check",
        base[0],
        base[1],
        "--parallel",
        "2",
        "--checkpoint",
        ckpt.to_str().unwrap(),
    ]);
    assert_eq!(code.unwrap(), 1, "{out}");
    assert!(out.contains("checkpoint written to"), "{out}");
    let bytes = std::fs::read(&ckpt).unwrap();
    assert!(
        bytes.starts_with(b"rtic-checkpoint-set v2"),
        "v2 container on disk"
    );
}

#[test]
fn check_rejects_regressing_timestamps_with_location() {
    let c = temp_file("mono.rtic", CONSTRAINTS);
    // Line 4 of the log regresses from @5 back to @3.
    let l = temp_file(
        "mono.rticlog",
        "@0 +reserved(\"ann\", 17)\n@5\n# still fine\n@3\n@7\n",
    );
    for backend in ["incremental", "naive", "windowed", "active"] {
        let (code, _) = run(&[
            "check",
            c.to_str().unwrap(),
            l.to_str().unwrap(),
            "--checker",
            backend,
        ]);
        let err = code.expect_err(backend);
        assert!(err.contains("does not increase past"), "{backend}: {err}");
        assert!(
            err.contains("line 4"),
            "{backend} names the log line: {err}"
        );
        assert!(
            err.contains("mono.rticlog"),
            "{backend} names the file: {err}"
        );
    }
}

#[test]
fn check_rejects_repeated_timestamps() {
    let c = temp_file("dup.rtic", CONSTRAINTS);
    let l = temp_file("dup.rticlog", "@2\n@2\n");
    let (code, _) = run(&["check", c.to_str().unwrap(), l.to_str().unwrap()]);
    let err = code.unwrap_err();
    assert!(err.contains("does not increase past"), "{err}");
    assert!(err.contains("line 2"), "{err}");
}

#[test]
fn explain_describes_the_plan() {
    let c = temp_file("c5.rtic", CONSTRAINTS);
    let (code, out) = run(&["explain", c.to_str().unwrap()]);
    assert_eq!(code.unwrap(), 0);
    assert!(out.contains("denial body"), "{out}");
    assert!(out.contains("evaluation plan"), "{out}");
}

#[test]
fn generate_emits_replayable_log() {
    let (code, out) = run(&["generate", "library", "--steps", "25", "--seed", "9"]);
    assert_eq!(code.unwrap(), 0);
    // The generated text parses back as a log (comments skipped).
    let transitions = rtic::history::log::parse_log(&out).unwrap();
    assert_eq!(transitions.len(), 25);
    assert!(out.contains("deny overdue"), "constraint header: {out}");
}

#[test]
fn checkpoint_and_resume_match_single_pass() {
    let c = temp_file("ck.rtic", CONSTRAINTS);
    // A log split into two segments.
    let full = "@0 +reserved(\"ann\", 17)\n@1 +reserved(\"bob\", 9)\n@2\n@3\n@4 +confirmed(\"bob\", 9)\n@5\n";
    let l_full = temp_file("ck-full.rticlog", full);
    let l1 = temp_file(
        "ck-1.rticlog",
        "@0 +reserved(\"ann\", 17)\n@1 +reserved(\"bob\", 9)\n@2\n",
    );
    let l2 = temp_file("ck-2.rticlog", "@3\n@4 +confirmed(\"bob\", 9)\n@5\n");
    let ckpt = temp_file("state.ckpt", "");
    // Single pass.
    let (_, single) = run(&["check", c.to_str().unwrap(), l_full.to_str().unwrap()]);
    let single_violations: Vec<&str> = single.lines().filter(|l| l.contains("VIOLATION")).collect();
    // Segmented pass.
    let (code1, seg1) = run(&[
        "check",
        c.to_str().unwrap(),
        l1.to_str().unwrap(),
        "--checkpoint",
        ckpt.to_str().unwrap(),
    ]);
    assert_eq!(code1.unwrap(), 1, "{seg1}");
    let (code2, seg2) = run(&[
        "check",
        c.to_str().unwrap(),
        l2.to_str().unwrap(),
        "--resume",
        ckpt.to_str().unwrap(),
    ]);
    assert_eq!(code2.unwrap(), 1, "{seg2}");
    let seg_violations: Vec<String> = seg1
        .lines()
        .chain(seg2.lines())
        .filter(|l| l.contains("VIOLATION"))
        .map(str::to_string)
        .collect();
    assert_eq!(seg_violations, single_violations, "segmented run diverged");
}

#[test]
fn checkpoint_requires_incremental_backend() {
    let c = temp_file("ck2.rtic", CONSTRAINTS);
    let l = temp_file("ck2.rticlog", LOG);
    let (code, _) = run(&[
        "check",
        c.to_str().unwrap(),
        l.to_str().unwrap(),
        "--checker",
        "naive",
        "--checkpoint",
        "/tmp/nope.ckpt",
    ]);
    assert!(code.unwrap_err().contains("incremental"));
}

#[test]
fn check_writes_metrics_snapshot() {
    let c = temp_file("m.rtic", CONSTRAINTS);
    let l = temp_file("m.rticlog", LOG);
    let m = temp_file("m.json", "");
    let (code, out) = run(&[
        "check",
        c.to_str().unwrap(),
        l.to_str().unwrap(),
        "--quiet",
        "--metrics",
        m.to_str().unwrap(),
    ]);
    assert_eq!(code.unwrap(), 1);
    assert!(out.contains("metrics written to"), "{out}");
    let doc = rtic::obs::json::parse(&std::fs::read_to_string(&m).unwrap()).unwrap();
    // Counters line up with the log: 5 transitions, 2 tuple inserts.
    assert_eq!(doc.get("steps").and_then(|v| v.as_u64()), Some(5));
    assert_eq!(doc.get("tuples_ingested").and_then(|v| v.as_u64()), Some(2));
    assert_eq!(doc.get("violations").and_then(|v| v.as_u64()), Some(1));
    let latency = doc.get("step_latency_us").unwrap();
    assert_eq!(latency.get("count").and_then(|v| v.as_u64()), Some(5));
}

#[test]
fn check_writes_prometheus_when_extension_is_prom() {
    let c = temp_file("p.rtic", CONSTRAINTS);
    let l = temp_file("p.rticlog", LOG);
    let m = temp_file("m.prom", "");
    let (code, _) = run(&[
        "check",
        c.to_str().unwrap(),
        l.to_str().unwrap(),
        "--quiet",
        "--metrics",
        m.to_str().unwrap(),
    ]);
    assert_eq!(code.unwrap(), 1);
    let text = std::fs::read_to_string(&m).unwrap();
    assert!(text.contains("rtic_steps_total 5"), "{text}");
    assert!(
        text.contains("# TYPE rtic_step_latency_seconds histogram"),
        "{text}"
    );
    assert!(text.contains("rtic_violations_total 1"), "{text}");
}

#[test]
fn check_trace_emits_one_step_event_per_transition() {
    let c = temp_file("t.rtic", CONSTRAINTS);
    let l = temp_file("t.rticlog", LOG);
    let t = temp_file("t.jsonl", "");
    let (code, out) = run(&[
        "check",
        c.to_str().unwrap(),
        l.to_str().unwrap(),
        "--quiet",
        "--trace",
        t.to_str().unwrap(),
    ]);
    assert_eq!(code.unwrap(), 1);
    assert!(out.contains("trace written to"), "{out}");
    let text = std::fs::read_to_string(&t).unwrap();
    let mut steps = 0;
    let mut violations = 0;
    for line in text.lines() {
        let event = rtic::obs::json::parse(line)
            .unwrap_or_else(|e| panic!("trace line is not JSON: {line}: {e}"));
        match event.get("event").and_then(|v| v.as_str()).unwrap() {
            "step" => steps += 1,
            "violation" => violations += 1,
            _ => {}
        }
    }
    assert_eq!(steps, 5, "one `step` event per transition: {text}");
    assert_eq!(violations, 1, "{text}");
}

#[test]
fn check_sample_space_records_bounded_trajectory() {
    let c = temp_file("s.rtic", CONSTRAINTS);
    let l = temp_file("s.rticlog", LOG);
    let m = temp_file("s.json", "");
    let t = temp_file("s.jsonl", "");
    let (code, _) = run(&[
        "check",
        c.to_str().unwrap(),
        l.to_str().unwrap(),
        "--quiet",
        "--metrics",
        m.to_str().unwrap(),
        "--trace",
        t.to_str().unwrap(),
        "--sample-space",
        "2",
    ]);
    assert_eq!(code.unwrap(), 1);
    let doc = rtic::obs::json::parse(&std::fs::read_to_string(&m).unwrap()).unwrap();
    let samples = doc.get("space_samples").and_then(|v| v.as_arr()).unwrap();
    assert!(
        samples.len() >= 2,
        "expected periodic samples, got {}",
        samples.len()
    );
    for s in samples {
        let units = s.get("retained_units").and_then(|v| v.as_u64()).unwrap();
        assert!(
            units <= 16,
            "tiny log retains a tiny footprint, got {units}"
        );
    }
    // The trace and the registry saw the same sample events.
    let trace_samples = std::fs::read_to_string(&t)
        .unwrap()
        .lines()
        .filter(|l| l.contains("\"event\":\"space_sample\""))
        .count();
    assert_eq!(trace_samples, samples.len());
}

#[test]
fn report_renders_summary_table() {
    let c = temp_file("r.rtic", CONSTRAINTS);
    let l = temp_file("r.rticlog", LOG);
    let m = temp_file("r.json", "");
    let (_, _) = run(&[
        "check",
        c.to_str().unwrap(),
        l.to_str().unwrap(),
        "--quiet",
        "--metrics",
        m.to_str().unwrap(),
        "--sample-space",
        "2",
    ]);
    let (code, out) = run(&["report", m.to_str().unwrap()]);
    assert_eq!(code.unwrap(), 0, "{out}");
    assert!(out.contains("steps"), "{out}");
    assert!(out.contains("violations by constraint"), "{out}");
    assert!(out.contains("unconfirmed"), "{out}");
    assert!(out.contains("space trajectory"), "{out}");
}

#[test]
fn report_golden_fixture() {
    let fixture = r#"{
  "steps": 3,
  "tuples_ingested": 4,
  "violations": 1,
  "violating_steps": 1,
  "checkpoint_saves": 0,
  "checkpoint_restores": 0,
  "violations_by_constraint": {"overdue": 1},
  "step_latency_us": {"count": 3, "mean_us": 2.0, "p50_us": 2.0, "p95_us": 3.0, "p99_us": 3.0, "max_us": 3.0}
}"#;
    let m = temp_file("golden.json", fixture);
    let (code, out) = run(&["report", m.to_str().unwrap()]);
    assert_eq!(code.unwrap(), 0, "{out}");
    assert!(out.contains("overdue"), "{out}");
    assert!(out.contains('3'), "{out}");
}

#[test]
fn report_rejects_bad_inputs() {
    let (code, _) = run(&["report"]);
    assert!(code.unwrap_err().contains("metrics-file"));
    let (code, _) = run(&["report", "/nonexistent-metrics.json"]);
    assert!(code.unwrap_err().contains("cannot read"));
    let bad = temp_file("notjson.json", "{nope");
    let (code, _) = run(&["report", bad.to_str().unwrap()]);
    assert!(code.is_err());
    let partial = temp_file("partial.json", "{\"steps\": 1}");
    let (code, _) = run(&["report", partial.to_str().unwrap()]);
    assert!(
        code.unwrap_err().contains("tuples_ingested"),
        "missing fields are named"
    );
}

#[test]
fn generate_then_check_round_trip() {
    let (_, log_text) = run(&["generate", "monitor", "--steps", "40", "--seed", "3"]);
    // Extract the constraint file from the commented header.
    let constraint_lines: String = log_text
        .lines()
        .filter_map(|l| l.strip_prefix("#   "))
        .map(|l| format!("{l}\n"))
        .collect();
    let c = temp_file("gen.rtic", &constraint_lines);
    let l = temp_file("gen.rticlog", &log_text);
    let (code, out) = run(&["check", c.to_str().unwrap(), l.to_str().unwrap(), "--quiet"]);
    assert!(code.is_ok(), "{out}");
    assert!(out.contains("40 transitions"), "{out}");
    assert!(out.contains("2 constraint(s)"), "{out}");
}

#[test]
fn check_profile_prints_plan_annotations() {
    let c = temp_file("prof.rtic", CONSTRAINTS);
    let l = temp_file("prof.rticlog", LOG);
    let m = temp_file("prof-metrics.json", "");
    let (code, out) = run(&[
        "check",
        c.to_str().unwrap(),
        l.to_str().unwrap(),
        "--quiet",
        "--profile",
        "--metrics",
        m.to_str().unwrap(),
    ]);
    assert_eq!(code.unwrap(), 1);
    assert!(out.contains("profile[unconfirmed]"), "{out}");
    assert!(out.contains("plan profile"), "{out}");
    assert!(out.contains("atom(reserved)"), "{out}");
    assert!(out.contains("cache h/m"), "{out}");
    assert!(out.contains("[body"), "node paths rendered: {out}");
    // The profile also lands in the metrics snapshot.
    let doc = rtic_obs::json::parse(&std::fs::read_to_string(&m).unwrap()).unwrap();
    assert!(doc.get("plan_profiles").is_some(), "metrics carry profiles");
    let hot = doc.get("plan_hot_nodes").and_then(|j| j.as_arr()).unwrap();
    assert!(!hot.is_empty(), "hot-node gauges populated");
}

#[test]
fn check_profile_matches_unprofiled_reports() {
    let c = temp_file("prof-eq.rtic", CONSTRAINTS);
    let l = temp_file("prof-eq.rticlog", LOG);
    let (plain_code, plain_out) = run(&["check", c.to_str().unwrap(), l.to_str().unwrap()]);
    let (prof_code, prof_out) = run(&[
        "check",
        c.to_str().unwrap(),
        l.to_str().unwrap(),
        "--profile",
    ]);
    assert_eq!(plain_code.unwrap(), prof_code.unwrap());
    // Everything before the profile table is byte-identical.
    let head = prof_out.split("profile[").next().unwrap();
    assert_eq!(plain_out, head, "profiling changed the report stream");
}

#[test]
fn check_profile_flag_validation() {
    let c = temp_file("prof-v.rtic", CONSTRAINTS);
    let l = temp_file("prof-v.rticlog", LOG);
    let (code, _) = run(&[
        "check",
        c.to_str().unwrap(),
        l.to_str().unwrap(),
        "--profile",
        "--checker",
        "naive",
    ]);
    assert!(code.unwrap_err().contains("--profile"), "naive rejected");
}

#[test]
fn parallel_check_profiles_the_fleet() {
    let c = temp_file("prof-par.rtic", CONSTRAINTS);
    let l = temp_file("prof-par.rticlog", LOG);
    let (code, out) = run(&[
        "check",
        c.to_str().unwrap(),
        l.to_str().unwrap(),
        "--quiet",
        "--profile",
        "--parallel",
        "2",
    ]);
    assert_eq!(code.unwrap(), 1);
    assert!(out.contains("profile[unconfirmed]"), "{out}");
    assert!(out.contains("plan profile"), "{out}");
}

#[test]
fn check_trace_format_chrome_writes_perfetto_array() {
    let c = temp_file("chrome.rtic", CONSTRAINTS);
    let l = temp_file("chrome.rticlog", LOG);
    let t = temp_file("chrome-trace.json", "");
    let (code, out) = run(&[
        "check",
        c.to_str().unwrap(),
        l.to_str().unwrap(),
        "--quiet",
        "--profile",
        "--trace",
        t.to_str().unwrap(),
        "--trace-format",
        "chrome",
    ]);
    assert_eq!(code.unwrap(), 1, "{out}");
    assert!(out.contains("trace written to"), "{out}");
    let doc = rtic_obs::json::parse(&std::fs::read_to_string(&t).unwrap()).unwrap();
    let events = doc.as_arr().expect("chrome trace is one JSON array");
    assert!(!events.is_empty());
    // Step spans plus the plan-profile track with named plan-node spans.
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(|n| n.as_str()))
        .collect();
    assert!(names.iter().any(|n| n.starts_with("step t=")), "{names:?}");
    assert!(names.contains(&"eval unconfirmed"), "{names:?}");
    assert!(names.iter().any(|n| n.starts_with("atom(")), "{names:?}");
}

#[test]
fn trace_format_flag_validation() {
    let c = temp_file("tf.rtic", CONSTRAINTS);
    let l = temp_file("tf.rticlog", LOG);
    let (code, _) = run(&[
        "check",
        c.to_str().unwrap(),
        l.to_str().unwrap(),
        "--trace-format",
        "chrome",
    ]);
    assert!(code.unwrap_err().contains("--trace"), "needs --trace");
    let t = temp_file("tf-trace.json", "");
    let (code, _) = run(&[
        "check",
        c.to_str().unwrap(),
        l.to_str().unwrap(),
        "--trace",
        t.to_str().unwrap(),
        "--trace-format",
        "xml",
    ]);
    assert!(code.unwrap_err().contains("xml"), "bad format rejected");
}

#[test]
fn explain_profile_annotates_with_measurements() {
    let c = temp_file("exp-prof.rtic", CONSTRAINTS);
    let l = temp_file("exp-prof.rticlog", LOG);
    let (code, out) = run(&[
        "explain",
        c.to_str().unwrap(),
        "--profile",
        l.to_str().unwrap(),
    ]);
    assert_eq!(code.unwrap(), 0);
    // The compile-time report plus the measured per-node table.
    assert!(out.contains("evaluation plan"), "{out}");
    assert!(out.contains("plan profile"), "{out}");
    assert!(out.contains('%'), "{out}");
    assert!(out.contains("times include children"), "{out}");
    // Without --profile, no table.
    let (_, plain) = run(&["explain", c.to_str().unwrap()]);
    assert!(!plain.contains("plan profile"), "{plain}");
}

#[test]
fn report_renders_p90_quantile() {
    let c = temp_file("p90.rtic", CONSTRAINTS);
    let l = temp_file("p90.rticlog", LOG);
    let m = temp_file("p90-metrics.json", "");
    run(&[
        "check",
        c.to_str().unwrap(),
        l.to_str().unwrap(),
        "--quiet",
        "--metrics",
        m.to_str().unwrap(),
    ])
    .0
    .unwrap();
    let (code, out) = run(&["report", m.to_str().unwrap()]);
    assert_eq!(code.unwrap(), 0);
    assert!(out.contains("p90"), "{out}");
    assert!(out.contains("p99"), "{out}");
}

#[test]
fn shard_auto_matches_unsharded_output_and_reports_counts() {
    let c = temp_file("sh.rtic", CONSTRAINTS);
    let l = temp_file("sh.rticlog", LOG);
    let (code, plain) = run(&["check", c.to_str().unwrap(), l.to_str().unwrap()]);
    assert_eq!(code.unwrap(), 1, "{plain}");
    let (code, sharded) = run(&[
        "check",
        c.to_str().unwrap(),
        l.to_str().unwrap(),
        "--shard",
        "auto",
        "--stats",
    ]);
    assert_eq!(code.unwrap(), 1, "{sharded}");
    let violations = |out: &str| -> Vec<String> {
        out.lines()
            .filter(|ln| ln.contains("VIOLATION"))
            .map(str::to_string)
            .collect()
    };
    assert_eq!(violations(&plain), violations(&sharded));
    assert!(
        sharded.contains("shards[unconfirmed]:"),
        "--stats reports shard counts: {sharded}"
    );
    assert!(sharded.contains("live"), "{sharded}");
}

#[test]
fn shard_flag_validation() {
    let c = temp_file("shv.rtic", CONSTRAINTS);
    let l = temp_file("shv.rticlog", LOG);
    let (code, _) = run(&[
        "check",
        c.to_str().unwrap(),
        l.to_str().unwrap(),
        "--shard",
        "sideways",
    ]);
    assert!(code.unwrap_err().contains("auto|off"));
    let (code, _) = run(&[
        "check",
        c.to_str().unwrap(),
        l.to_str().unwrap(),
        "--checker",
        "naive",
        "--shard",
        "auto",
    ]);
    assert!(code.unwrap_err().contains("incremental"));
    let (code, _) = run(&[
        "check",
        c.to_str().unwrap(),
        l.to_str().unwrap(),
        "--shard-evict",
        "4",
    ]);
    assert!(code.unwrap_err().contains("--shard auto"));
    let (code, _) = run(&[
        "check",
        c.to_str().unwrap(),
        l.to_str().unwrap(),
        "--shard",
        "auto",
        "--shard-evict",
        "0",
    ]);
    assert!(code.unwrap_err().contains("at least one"));
}

#[test]
fn shard_eviction_shows_up_in_metrics() {
    let c = temp_file("she.rtic", CONSTRAINTS);
    // ann churns in and out; with a 1-step horizon the shard is evicted
    // once its tuples and windows drain.
    let l = temp_file(
        "she.rticlog",
        "@0 +reserved(\"ann\", 17)\n@1 +confirmed(\"ann\", 17)\n@2 -reserved(\"ann\", 17) -confirmed(\"ann\", 17)\n@9\n@10\n@11\n@12\n@13\n@14\n@15\n",
    );
    let m = temp_file("she-metrics.json", "");
    let (code, out) = run(&[
        "check",
        c.to_str().unwrap(),
        l.to_str().unwrap(),
        "--shard",
        "auto",
        "--shard-evict",
        "1",
        "--metrics",
        m.to_str().unwrap(),
        "--sample-space",
        "1",
        "--stats",
    ]);
    assert_eq!(code.unwrap(), 0, "{out}");
    assert!(out.contains("shards[unconfirmed]:"), "{out}");
    let metrics = std::fs::read_to_string(&m).unwrap();
    assert!(metrics.contains("\"shards\""), "{metrics}");
    assert!(metrics.contains("\"evicted\""), "{metrics}");
}

#[test]
fn batch_check_matches_line_at_a_time_output() {
    let c = temp_file("b.rtic", CONSTRAINTS);
    let l = temp_file("b.rticlog", LOG);
    let (code, seq) = run(&["check", c.to_str().unwrap(), l.to_str().unwrap()]);
    assert_eq!(code.unwrap(), 1);
    // Batch sizes that divide the log, exceed it, and leave a remainder.
    for batch in ["2", "3", "5", "64"] {
        let (code, batched) = run(&[
            "check",
            c.to_str().unwrap(),
            l.to_str().unwrap(),
            "--batch",
            batch,
        ]);
        assert_eq!(code.unwrap(), 1, "--batch {batch}");
        assert_eq!(batched, seq, "--batch {batch} changed the output");
    }
}

#[test]
fn batch_check_with_interleaved_bad_lines_matches_line_at_a_time() {
    // Malformed lines interleave with good ones and with pure ticks;
    // under `--on-bad-line skip` they are skipped *before* the batch
    // buffer, so every batch size sees the same good-line stream and
    // prints byte-identical output (including the skip summary).
    let c = temp_file("bb.rtic", CONSTRAINTS);
    let l = temp_file(
        "bb.rticlog",
        r#"
@0 +reserved("ann", 17)
this is not a transition
@1
@2 garbage +++
@2
@3 +confirmed("ann", 17)
also bad
@4
"#,
    );
    let base = [
        "check",
        c.to_str().unwrap(),
        l.to_str().unwrap(),
        "--on-bad-line",
        "skip",
    ];
    let (code, seq) = run(&base);
    assert_eq!(code.unwrap(), 1, "{seq}");
    assert!(seq.contains("skipped 3 malformed line(s)"), "{seq}");
    for batch in ["2", "3", "64"] {
        let mut args = base.to_vec();
        args.extend_from_slice(&["--batch", batch, "--vectorize"]);
        let (code, batched) = run(&args);
        assert_eq!(code.unwrap(), 1, "--batch {batch}");
        assert_eq!(batched, seq, "--batch {batch} changed the output");
    }
}

#[test]
fn vectorize_matches_scalar_output() {
    let c = temp_file("v.rtic", CONSTRAINTS);
    let l = temp_file("v.rticlog", LOG);
    let (code, scalar) = run(&["check", c.to_str().unwrap(), l.to_str().unwrap()]);
    assert_eq!(code.unwrap(), 1);
    let (code, vec_out) = run(&[
        "check",
        c.to_str().unwrap(),
        l.to_str().unwrap(),
        "--vectorize",
    ]);
    assert_eq!(code.unwrap(), 1);
    assert_eq!(vec_out, scalar, "--vectorize changed the output");
    // Vectorize composes with batching and the fleet.
    let (code, both) = run(&[
        "check",
        c.to_str().unwrap(),
        l.to_str().unwrap(),
        "--vectorize",
        "--batch",
        "2",
        "--parallel",
        "2",
    ]);
    assert_eq!(code.unwrap(), 1);
    assert_eq!(both, scalar, "--vectorize --batch --parallel diverged");
}

#[test]
fn batch_and_vectorize_flag_validation() {
    let c = temp_file("bv.rtic", CONSTRAINTS);
    let l = temp_file("bv.rticlog", LOG);
    let base = [
        c.to_str().unwrap().to_string(),
        l.to_str().unwrap().to_string(),
    ];
    let (code, _) = run(&["check", &base[0], &base[1], "--batch", "0"]);
    assert!(code.unwrap_err().contains("--batch"));
    let (code, _) = run(&["check", &base[0], &base[1], "--batch", "two"]);
    assert!(code.unwrap_err().contains("bad --batch"));
    let (code, _) = run(&[
        "check",
        &base[0],
        &base[1],
        "--checker",
        "naive",
        "--batch",
        "4",
    ]);
    assert!(code.unwrap_err().contains("incremental"));
    let (code, _) = run(&[
        "check",
        &base[0],
        &base[1],
        "--checker",
        "windowed",
        "--vectorize",
    ]);
    assert!(code.unwrap_err().contains("incremental"));
}

#[test]
fn batch_check_records_batch_ingest_metrics() {
    let c = temp_file("bm.rtic", CONSTRAINTS);
    let l = temp_file("bm.rticlog", LOG);
    let m = temp_file("bm.json", "");
    let t = temp_file("bm.jsonl", "");
    let (code, _) = run(&[
        "check",
        c.to_str().unwrap(),
        l.to_str().unwrap(),
        "--quiet",
        "--batch",
        "2",
        "--metrics",
        m.to_str().unwrap(),
        "--trace",
        t.to_str().unwrap(),
    ]);
    assert_eq!(code.unwrap(), 1);
    let doc = rtic::obs::json::parse(&std::fs::read_to_string(&m).unwrap()).unwrap();
    // 5 transitions in batches of 2 → 2 full batches + 1 remainder.
    assert_eq!(doc.get("steps").and_then(|v| v.as_u64()), Some(5));
    assert_eq!(doc.get("batches").and_then(|v| v.as_u64()), Some(3));
    assert_eq!(doc.get("batch_lines").and_then(|v| v.as_u64()), Some(5));
    assert_eq!(doc.get("last_batch_size").and_then(|v| v.as_u64()), Some(1));
    let trace = std::fs::read_to_string(&t).unwrap();
    let batch_events = trace
        .lines()
        .filter(|ln| ln.contains("\"event\":\"batch_ingest\""))
        .count();
    assert_eq!(batch_events, 3, "{trace}");
}

#[test]
fn batch_checkpoint_and_resume_match_single_pass() {
    let c = temp_file("bck.rtic", CONSTRAINTS);
    let full = "@0 +reserved(\"ann\", 17)\n@1 +reserved(\"bob\", 9)\n@2\n@3\n@4 +confirmed(\"bob\", 9)\n@5\n";
    let l_full = temp_file("bck-full.rticlog", full);
    let l1 = temp_file(
        "bck-1.rticlog",
        "@0 +reserved(\"ann\", 17)\n@1 +reserved(\"bob\", 9)\n@2\n",
    );
    let l2 = temp_file("bck-2.rticlog", "@3\n@4 +confirmed(\"bob\", 9)\n@5\n");
    let ckpt = temp_file("bck.ckpt", "");
    let (_, single) = run(&["check", c.to_str().unwrap(), l_full.to_str().unwrap()]);
    let single_violations: Vec<&str> = single.lines().filter(|l| l.contains("VIOLATION")).collect();
    // Both segments run batched (with a mid-segment checkpoint tick);
    // the resume cursor must skip the covered prefix exactly.
    let (code1, seg1) = run(&[
        "check",
        c.to_str().unwrap(),
        l1.to_str().unwrap(),
        "--batch",
        "2",
        "--checkpoint",
        ckpt.to_str().unwrap(),
        "--checkpoint-every",
        "2",
    ]);
    assert_eq!(code1.unwrap(), 1, "{seg1}");
    let (code2, seg2) = run(&[
        "check",
        c.to_str().unwrap(),
        l2.to_str().unwrap(),
        "--batch",
        "2",
        "--resume",
        ckpt.to_str().unwrap(),
    ]);
    assert_eq!(code2.unwrap(), 1, "{seg2}");
    let seg_violations: Vec<String> = seg1
        .lines()
        .chain(seg2.lines())
        .filter(|l| l.contains("VIOLATION"))
        .map(str::to_string)
        .collect();
    assert_eq!(
        seg_violations, single_violations,
        "batched segmented run diverged"
    );
}
